#!/usr/bin/env python
"""The travel-agent use case (paper Figures 3 & 8, experiment §4.3).

Deploys airline/hotel/credit-card services on three emulated server
nodes, books the same vacation with and without SPI packing, and prints
the timing comparison the paper reports (408 ms -> 301 ms, ~26%).

Run:  python examples/travel_agent.py
"""

import statistics
import time

from repro.apps.travel import TravelAgent, deploy_travel_system
from repro.bench.workloads import build_transport

REPEATS = 10  # the paper repeats the test 10 times


def timed_bookings(agent: TravelAgent) -> float:
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        agent.book_vacation("PEK", "SHA")
        samples.append(time.perf_counter() - start)
    return statistics.median(samples) * 1e3


def main() -> None:
    with deploy_travel_system(
        transport_factory=lambda: build_transport("lan")
    ) as (system, transport):
        plain = TravelAgent(
            transport,
            system.airline_address,
            system.hotel_address,
            system.credit_address,
        )
        packed = TravelAgent(
            transport,
            system.airline_address,
            system.hotel_address,
            system.credit_address,
            use_packing=True,
        )

        itinerary = packed.book_vacation("PEK", "SHA")
        print("booked itinerary:")
        print(f"  flight : {itinerary.flight['flightId']} at {itinerary.flight['price']}")
        print(f"  room   : {itinerary.room['roomId']} at {itinerary.room['ratePerNight']}/night")
        print(f"  auth   : {itinerary.authorization}")
        print(f"  total  : {itinerary.total_price}")
        print()

        without = timed_bookings(plain)
        with_opt = timed_bookings(packed)
        improvement = (without - with_opt) / without * 100
        print(f"eleven invocations, median of {REPEATS} runs (emulated 100 Mbit LAN):")
        print(f"  without optimization : {without:8.1f} ms   (11 SOAP messages)")
        print(f"  with optimization    : {with_opt:8.1f} ms   (7 SOAP messages)")
        print(f"  improvement          : {improvement:8.1f} %   (paper: ~26%)")

        plain.close()
        packed.close()


if __name__ == "__main__":
    main()
