#!/usr/bin/env python
"""SPI remote execution: ship a pipeline of dependent calls server-side.

Packing batches independent calls; remote execution collapses a chain
of DEPENDENT calls (each step consuming an earlier step's result) into
a single round trip.

Run:  python examples/remote_execution.py
"""

from repro.apps.travel import CREDIT_NS, airline_ns, make_airline_service, make_credit_card_service
from repro.core.remote_exec import (
    REMOTE_EXEC_NS,
    REMOTE_EXEC_SERVICE,
    ExecutionPlan,
    RemoteExecutor,
    make_plan_runner_service,
)
from repro.client.proxy import ServiceProxy
from repro.transport import TcpTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


def main() -> None:
    transport = TcpTransport()
    server = build_server(ServerConfig(services=[make_airline_service("AirChina", 480), make_credit_card_service()], architecture="staged", transport=transport, address=("127.0.0.1", 0)))
    server.container.deploy(make_plan_runner_service(server.container))

    with server.running() as address:
        executor = RemoteExecutor(
            build_proxy(ClientConfig(
                transport, address,
                namespace=REMOTE_EXEC_NS, service_name=REMOTE_EXEC_SERVICE,
            ))
        )

        # reserve a flight and pay for it: two dependent calls, ONE round trip
        plan = ExecutionPlan()
        reserve = plan.step(
            airline_ns("AirChina"),
            "reserveFlight",
            {"flightId": "AirChina-PEK-SHA-0"},
        )
        authorize = plan.step(
            CREDIT_NS, "authorizePayment", {"account": "ACCT-7", "amount": 480}
        )
        plan.step(
            airline_ns("AirChina"),
            "confirmReservation",
            bindings={"reservationId": reserve, "authorizationId": authorize},
        )

        results = executor.execute(plan)
        print("three dependent invocations in one SOAP round trip:")
        print(f"  reservation id : {results[0]}")
        print(f"  authorization  : {results[1]}")
        print(f"  confirmation   : {results[2]}")
        print(f"server SOAP messages: {server.endpoint.stats.soap_messages}")


if __name__ == "__main__":
    main()
