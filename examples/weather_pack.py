#!/usr/bin/env python
"""Regenerate the paper's Figure 4: two weather queries in one message.

"Suppose the client wishes to query the weather of Beijing and
Shanghai.  In the traditional model, the client should issue two
service requests in two SOAP messages.  In our approach, two service
requests are packed into one SOAP message."

Run:  python examples/weather_pack.py
"""

from repro.apps.weather import WEATHER_NS, figure4_document, make_weather_service
from repro.core import spi, spi_server_handlers
from repro.server import HandlerChain, ServerConfig, build_server
from repro.transport import TcpTransport


def main() -> None:
    print("=" * 72)
    print("Figure 4 — the packed SOAP request message:")
    print("=" * 72)
    print(figure4_document())
    print()

    transport = TcpTransport()
    server = build_server(ServerConfig(services=[make_weather_service()], architecture="staged", transport=transport, address=("127.0.0.1", 0), chain=HandlerChain(spi_server_handlers())))
    with server.running() as address:
        client = spi.connect(
            transport, address, namespace=WEATHER_NS, service_name="GlobalWeather"
        )
        with client.pack() as batch:
            beijing = batch.call("GetWeather", city="Beijing", country="China")
            shanghai = batch.call("GetWeather", city="Shanghai", country="China")

        print("executed against the local weather service (ONE SOAP message):")
        print(" ", beijing.result())
        print(" ", shanghai.result())
        print(
            "server message count:",
            server.endpoint.stats.soap_messages,
            "| operations executed:",
            server.container.stats.entries_executed,
        )
        client.close()


if __name__ == "__main__":
    main()
