#!/usr/bin/env python
"""Quickstart: deploy a service, call it, then pack calls with SPI.

Run:  python examples/quickstart.py
"""

from repro.core import spi, spi_server_handlers
from repro.server import HandlerChain, ServerConfig, build_server, operation, service_from_object
from repro.transport import TcpTransport


class Greeter:
    """A plain Python class; @operation methods become SOAP operations."""

    @operation
    def greet(self, name: str) -> str:
        """Say hello."""
        return f"Hello, {name}!"

    @operation
    def add(self, a: int, b: int) -> int:
        """Add two integers."""
        return a + b


def main() -> None:
    # 1. deploy — the staged (Fig. 2) architecture with SPI pack support
    service = service_from_object(Greeter(), namespace="urn:example:greeter")
    transport = TcpTransport()
    server = build_server(ServerConfig(services=[service], architecture="staged", transport=transport, address=("127.0.0.1", 0), chain=HandlerChain(spi_server_handlers())))

    with server.running() as address:
        print(f"server listening on {address}")

        client = spi.connect(
            transport, address, namespace="urn:example:greeter",
            service_name="Greeter",
        )

        # 2. classic RPC: one SOAP message per call
        print(client.call("greet", name="world"))
        print("2 + 3 =", client.call("add", a=2, b=3))

        # 3. the SPI pack interface: M calls -> ONE SOAP message
        with client.pack() as batch:
            futures = [batch.call("greet", name=f"user-{i}") for i in range(5)]
            sum_future = batch.call("add", a=40, b=2)
        for future in futures:
            print(future.result())
        print("packed add:", sum_future.result())

        stats = server.stats()
        print(
            f"server saw {stats['endpoint']['soap_messages']} SOAP messages "
            f"for {stats['container']['entries_executed']} operations"
        )
        client.close()


if __name__ == "__main__":
    main()
