#!/usr/bin/env python
"""Grid job monitoring — the paper's motivating domain, end to end.

Submits a batch of jobs to a JobManager container and monitors them to
completion twice: with classic one-message-per-poll calls, then with
SPI packing.  The message counters show why a grid portal polling many
jobs is the ideal pack-interface workload.

Run:  python examples/grid_monitor.py
"""

import time

from repro.apps.grid import GRID_NS, GRID_SERVICE, GridMonitor, make_grid_service
from repro.client.proxy import ServiceProxy
from repro.core import spi_server_handlers
from repro.server import HandlerChain, ServerConfig, build_server
from repro.transport import TcpTransport
from repro.client.config import ClientConfig, build_proxy

JOBS = 12


def monitor_run(transport, address, server, use_packing: bool) -> None:
    label = "packed (SPI)" if use_packing else "serial      "
    proxy = build_proxy(ClientConfig(
        transport, address, namespace=GRID_NS, service_name=GRID_SERVICE,
        reuse_connections=True,
    ))
    monitor = GridMonitor(proxy, use_packing=use_packing)

    before_msgs = server.endpoint.stats.soap_messages
    start = time.perf_counter()
    job_ids = monitor.submit_batch([f"render frame {i}" for i in range(JOBS)])
    statuses, poll_messages = monitor.wait_all_done(job_ids, timeout=30)
    results = monitor.fetch_results(job_ids)
    elapsed = (time.perf_counter() - start) * 1e3
    messages = server.endpoint.stats.soap_messages - before_msgs

    done = sum(1 for s in statuses if s["state"] == "DONE")
    print(
        f"  {label}: {JOBS} jobs submitted+monitored+fetched in {elapsed:7.1f} ms "
        f"using {messages:3d} SOAP messages ({done} done, {len(results)} results)"
    )
    proxy.close()


def main() -> None:
    transport = TcpTransport()
    service = make_grid_service(workers=8, work_units=30)
    server = build_server(ServerConfig(services=[service], architecture="staged", transport=transport, address=("127.0.0.1", 0), chain=HandlerChain(spi_server_handlers())))
    with server.running() as address:
        print(f"JobManager on {address[0]}:{address[1]} — monitoring {JOBS} jobs\n")
        monitor_run(transport, address, server, use_packing=False)
        monitor_run(transport, address, server, use_packing=True)
        print("\nsame work, same results — a fraction of the messages when packed.")
    service.job_store.shutdown()


if __name__ == "__main__":
    main()
