#!/usr/bin/env python
"""WS-Security header overhead and why it favours packing (§4.2, §5).

Prints the byte cost of a signed UsernameToken header, then compares
the serial and packed strategies with the header attached to every
message: the packed message pays for ONE header where the serial
client pays for M.

Run:  python examples/wssecurity_overhead.py
"""

import statistics
import time

from repro.bench.workloads import (
    BENCH_CREDENTIALS,
    BENCH_POLICY,
    echo_calls,
    echo_testbed,
    make_invoker,
    secured_proxy,
)
from repro.soap.wssecurity import security_header_overhead

M = 32
PAYLOAD = 100


def timed(fn, repeats=3):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples) * 1e3


def main() -> None:
    overhead = security_header_overhead(BENCH_CREDENTIALS, include_certificate=True)
    print(f"one signed wsse:Security header = {overhead} bytes on the wire")
    print(f"serial client with M={M}: {M} headers = {M * overhead} bytes")
    print(f"packed client with M={M}: 1 header  = {overhead} bytes")
    print()

    with echo_testbed(profile="lan", architecture="staged", spi=True) as bed:
        rows = []
        for wss in (False, True):
            times = {}
            for approach in ("no-optimization", "our-approach"):
                def run():
                    proxy = secured_proxy(bed) if wss else bed.make_proxy()
                    try:
                        make_invoker(approach, proxy).invoke_all(
                            echo_calls(M, PAYLOAD), BENCH_POLICY
                        )
                    finally:
                        proxy.close()

                times[approach] = timed(run)
            rows.append((wss, times))

        print(f"M={M} echo requests of {PAYLOAD} B (median ms, emulated LAN):")
        print(f"{'':>18} {'serial':>10} {'packed':>10} {'speedup':>9}")
        for wss, times in rows:
            label = "with WS-Security" if wss else "plain SOAP"
            speedup = times["no-optimization"] / times["our-approach"]
            print(
                f"{label:>18} {times['no-optimization']:10.1f} "
                f"{times['our-approach']:10.1f} {speedup:8.1f}x"
            )
        print()
        print("packing amortizes the security header: the speedup should be")
        print("at least as large on the WS-Security row (paper §4.2).")


if __name__ == "__main__":
    main()
