#!/usr/bin/env python
"""Automatic packing: the paper's future-work feature, working.

Eight application threads make plain blocking calls with no knowledge
of SPI; the AutoPacker transparently coalesces calls that land inside a
time window into single Parallel_Method messages.

Run:  python examples/autopack_demo.py
"""

import threading

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.core import spi_server_handlers
from repro.core.autopack import AutoPacker
from repro.client.proxy import ServiceProxy
from repro.server import HandlerChain, ServerConfig, build_server
from repro.transport import TcpTransport
from repro.client.config import ClientConfig, build_proxy


def main() -> None:
    transport = TcpTransport()
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address=("127.0.0.1", 0), chain=HandlerChain(spi_server_handlers())))
    with server.running() as address:
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
            reuse_connections=True,
        ))

        with AutoPacker(proxy, max_batch=32, max_delay=0.02) as packer:
            results = {}
            lock = threading.Lock()
            barrier = threading.Barrier(8)

            def app_thread(i: int) -> None:
                barrier.wait()
                # ordinary blocking call — no batching code at the call site
                value = packer.call("echo", payload=f"thread-{i}")
                with lock:
                    results[i] = value

            threads = [threading.Thread(target=app_thread, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            print("every caller got its own answer back:")
            for i in sorted(results):
                print(f"  thread {i}: {results[i]}")
            print()
            print(f"client calls          : {packer.stats.calls}")
            print(f"SOAP messages flushed : {packer.stats.flushes}")
            print(f"mean batch size       : {packer.stats.mean_batch_size:.1f}")
            print(f"server message count  : {server.endpoint.stats.soap_messages}")

        proxy.close()


if __name__ == "__main__":
    main()
