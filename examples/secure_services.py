#!/usr/bin/env python
"""End-to-end WS-Security: signed clients against a verifying server.

Shows the §4.2 amortization concretely: the serial client signs (and
ships) one ~3.4 KB security header per request, the packed client signs
one header for the whole batch — and the server authenticates every
packed operation from that single token.

Run:  python examples/secure_services.py
"""

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core import spi_server_handlers
from repro.core.batch import PackBatch
from repro.errors import SoapFaultError
from repro.server import HandlerChain, SecurityVerifyHandler, ServerConfig, build_server
from repro.soap.wssecurity import Credentials, security_header_overhead
from repro.transport import TcpTransport
from repro.client.config import ClientConfig, build_proxy

SECRETS = {"alice": b"alice-shared-secret"}


def main() -> None:
    transport = TcpTransport()
    verifier = SecurityVerifyHandler(SECRETS.get, required=True)
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address=("127.0.0.1", 0), chain=HandlerChain([verifier, *spi_server_handlers()])))

    alice = Credentials("alice", SECRETS["alice"])
    print(f"security header size: {security_header_overhead(alice)} bytes "
          f"(+{security_header_overhead(alice, include_certificate=True)} with X.509 token)")

    with server.running() as address:
        signed = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
            credentials=alice,
        ))
        anonymous = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
        ))
        mallory = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
            credentials=Credentials("alice", b"wrong-guess"),
        ))

        print("\nsigned single call     :", signed.call("echo", payload="hello, signed"))

        with PackBatch(signed) as batch:
            futures = [batch.call("echo", payload=f"packed-{i}") for i in range(4)]
        print("signed packed batch    :", [f.result() for f in futures])
        print("  (4 operations authenticated by ONE security header)")

        for label, proxy in (("anonymous", anonymous), ("bad secret", mallory)):
            try:
                proxy.call("echo", payload="let me in")
                print(f"{label:>22} : UNEXPECTEDLY ACCEPTED")
            except SoapFaultError as fault:
                print(f"{label:>22} : rejected ({fault.faultstring[:50]}...)")

        print("\nverifier counters      :", verifier.snapshot())
        for proxy in (signed, anonymous, mallory):
            proxy.close()


if __name__ == "__main__":
    main()
