"""Tests for the bounded protocol stage (max_connections)."""

import threading
import time

import pytest

from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.transport.inproc import InProcTransport


def echo_app(request):
    return HttpResponse(200, Headers({"Content-Type": "text/plain"}), request.body)


@pytest.fixture
def bounded():
    transport = InProcTransport()
    server = HttpServer(
        echo_app, transport=transport, address="bounded", max_connections=1
    )
    with server.running() as address:
        yield transport, address, server


class TestBoundedConnections:
    def test_single_connection_serves_normally(self, bounded):
        transport, address, _ = bounded
        with HttpConnection(transport, address) as conn:
            assert conn.request(HttpRequest("POST", "/", body=b"a")).body == b"a"

    def test_second_connection_waits_for_slot(self, bounded):
        transport, address, server = bounded
        first = HttpConnection(transport, address)
        assert first.request(HttpRequest("POST", "/", body=b"1")).ok

        second_done = threading.Event()
        result = {}

        def second_client():
            with HttpConnection(transport, address) as conn:
                result["body"] = conn.request(HttpRequest("POST", "/", body=b"2")).body
            second_done.set()

        thread = threading.Thread(target=second_client, daemon=True)
        thread.start()
        # the slot is held by the keep-alive first connection
        assert not second_done.wait(timeout=0.15)
        first.close()
        assert second_done.wait(timeout=5)
        assert result["body"] == b"2"
        thread.join(timeout=5)
        assert server.max_concurrent_connections == 1

    def test_slots_recycled_across_many_serial_clients(self, bounded):
        transport, address, server = bounded
        for i in range(5):
            with HttpConnection(transport, address) as conn:
                request = HttpRequest(
                    "POST", "/", Headers({"Connection": "close"}), str(i).encode()
                )
                assert conn.request(request).body == str(i).encode()
        assert server.connections_accepted == 5
        assert server.max_concurrent_connections == 1

    def test_unbounded_server_tracks_concurrency(self):
        transport = InProcTransport()
        server = HttpServer(echo_app, transport=transport, address="unbounded")
        with server.running() as address:
            barrier = threading.Barrier(3, timeout=5)

            def client():
                with HttpConnection(transport, address) as conn:
                    conn.request(HttpRequest("POST", "/", body=b"x"))
                    barrier.wait()

            threads = [threading.Thread(target=client) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5)
        assert server.max_concurrent_connections == 3

    def test_stop_with_held_slot_does_not_hang(self):
        transport = InProcTransport()
        server = HttpServer(
            echo_app, transport=transport, address="stoppable", max_connections=1
        )
        address = server.start()
        conn = HttpConnection(transport, address)
        conn.request(HttpRequest("POST", "/", body=b"x"))
        start = time.monotonic()
        server.stop(join_timeout=2)
        assert time.monotonic() - start < 10
        conn.close()
