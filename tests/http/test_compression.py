"""Unit tests for negotiated content-coding (PR-6)."""

import zlib

import pytest

from repro.errors import HttpError
from repro.http.compression import (
    CompressionError,
    CompressionPolicy,
    choose_encoding,
    compress,
    decompress,
)
from repro.http.message import Headers, HttpRequest, parse_qvalues
from repro.http.parser import ChannelReader, read_request, read_response
from repro.http.server import HttpServer


class TestParseQvalues:
    def test_plain_list(self):
        assert parse_qvalues("gzip, deflate") == [("gzip", 1.0), ("deflate", 1.0)]

    def test_explicit_q(self):
        assert parse_qvalues("gzip;q=0.5, deflate;q=0.8") == [
            ("gzip", 0.5),
            ("deflate", 0.8),
        ]

    def test_malformed_members_are_skipped(self):
        assert parse_qvalues("gzip;q=banana, , deflate;q=2, br;q=0.5") == [
            ("br", 0.5)
        ]

    def test_case_and_whitespace(self):
        assert parse_qvalues("  GZIP ; q=0.9 ") == [("gzip", 0.9)]

    def test_empty(self):
        assert parse_qvalues("") == []


class TestChooseEncoding:
    def test_no_header_means_identity(self):
        assert choose_encoding(None, CompressionPolicy()) is None

    def test_highest_q_wins(self):
        assert (
            choose_encoding("gzip;q=0.5, deflate;q=0.9", CompressionPolicy())
            == "deflate"
        )

    def test_tie_broken_by_policy_order(self):
        policy = CompressionPolicy(encodings=("deflate", "gzip"))
        assert choose_encoding("gzip, deflate", policy) == "deflate"

    def test_q_zero_refuses(self):
        assert choose_encoding("gzip;q=0, deflate;q=0", CompressionPolicy()) is None

    def test_wildcard(self):
        assert choose_encoding("*", CompressionPolicy()) == "gzip"
        assert choose_encoding("*;q=0", CompressionPolicy()) is None

    def test_unknown_coding_ignored(self):
        assert choose_encoding("br, zstd", CompressionPolicy()) is None


class TestRoundtrip:
    @pytest.mark.parametrize("encoding", ["gzip", "deflate"])
    def test_compress_decompress(self, encoding):
        data = b"payload " * 500
        coded = compress(data, encoding)
        assert coded != data
        assert decompress(coded, encoding, max_size=1 << 20) == data

    def test_raw_deflate_fallback(self):
        # Some peers send raw DEFLATE without the zlib wrapper.
        data = b"raw deflate body " * 100
        raw = zlib.compress(data)[2:-4]
        assert decompress(raw, "deflate", max_size=1 << 20) == data

    def test_bomb_guard(self):
        bomb = compress(b"\0" * 1_000_000, "gzip")
        with pytest.raises(CompressionError) as excinfo:
            decompress(bomb, "gzip", max_size=10_000)
        assert excinfo.value.status == 413

    def test_truncated_stream(self):
        coded = compress(b"hello world " * 50, "gzip")
        with pytest.raises(CompressionError):
            decompress(coded[: len(coded) // 2], "gzip", max_size=1 << 20)


class TestParserDecoding:
    def _request_bytes(self, body: bytes, encoding: str) -> bytes:
        coded = compress(body, encoding)
        return (
            b"POST / HTTP/1.1\r\nHost: h\r\n"
            + f"Content-Encoding: {encoding}\r\n".encode()
            + f"Content-Length: {len(coded)}\r\n\r\n".encode()
            + coded
        )

    @pytest.mark.parametrize("encoding", ["gzip", "deflate"])
    def test_request_body_is_decoded(self, encoding):
        body = b"<env>" + b"x" * 2000 + b"</env>"
        reader = ChannelReader(_Scripted(self._request_bytes(body, encoding)))
        request = read_request(reader)
        assert request.body == body
        assert request.headers.get("Content-Encoding") is None
        assert request.headers.get("Content-Length") == str(len(body))

    def test_unsupported_request_coding_is_415(self):
        raw = (
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Encoding: br\r\n"
            b"Content-Length: 3\r\n\r\nxxx"
        )
        with pytest.raises(HttpError) as excinfo:
            read_request(ChannelReader(_Scripted(raw)))
        assert excinfo.value.status == 415

    def test_garbage_coded_request_is_400(self):
        raw = (
            b"POST / HTTP/1.1\r\nHost: h\r\nContent-Encoding: gzip\r\n"
            b"Content-Length: 9\r\n\r\nnot-gzip!"
        )
        with pytest.raises(HttpError) as excinfo:
            read_request(ChannelReader(_Scripted(raw)))
        assert excinfo.value.status == 400

    def test_coded_chunked_response(self):
        from repro.http.parser import encode_chunked

        body = b"chunked and coded " * 200
        coded = compress(body, "gzip")
        raw = (
            b"HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n" + encode_chunked(coded)
        )
        response = read_response(ChannelReader(_Scripted(raw)))
        assert response.body == body


class _Scripted:
    def __init__(self, *chunks: bytes):
        self._chunks = list(chunks)

    def recv(self, max_bytes: int = 65536) -> bytes:
        return self._chunks.pop(0) if self._chunks else b""

    def sendall(self, data: bytes) -> None:  # pragma: no cover
        raise AssertionError("not used")

    def close(self) -> None:  # pragma: no cover
        pass


class TestServerPolicy:
    def _served(self, policy, accept, body=b"b" * 4096):
        from repro.transport.inproc import InProcTransport

        server = HttpServer(
            lambda req: None,
            transport=InProcTransport(),
            address="compression-test",
            compression=policy,
        )
        headers = Headers({"Host": "h"})
        if accept is not None:
            headers.set("Accept-Encoding", accept)
        request = HttpRequest("POST", "/", headers, b"")
        from repro.http.message import HttpResponse

        response = HttpResponse(200, Headers(), body)
        server._maybe_compress(request, response)
        return response

    def test_body_below_min_size_is_untouched(self):
        response = self._served(CompressionPolicy(min_size=1 << 20), "gzip")
        assert response.headers.get("Content-Encoding") is None

    def test_negotiated_body_is_coded_with_vary(self):
        response = self._served(CompressionPolicy(), "gzip")
        assert response.headers.get("Content-Encoding") == "gzip"
        assert response.headers.get("Vary") == "Accept-Encoding"
        assert decompress(response.body, "gzip", max_size=1 << 20) == b"b" * 4096

    def test_incompressible_body_stays_identity(self):
        import os

        response = self._served(CompressionPolicy(), "gzip", body=os.urandom(4096))
        assert response.headers.get("Content-Encoding") is None

    def test_no_policy_means_no_coding(self):
        response = self._served(None, "gzip")
        assert response.headers.get("Content-Encoding") is None
