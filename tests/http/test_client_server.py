"""Integration tests: HTTP client/pool against the threaded server."""

import threading

import pytest

from repro.errors import HttpError
from repro.http.connection import ConnectionPool, HttpConnection
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.transport.inproc import InProcTransport
from repro.transport.tcp import TcpTransport


def echo_app(request: HttpRequest) -> HttpResponse:
    return HttpResponse(
        200,
        Headers({"Content-Type": "application/octet-stream", "X-Path": request.path}),
        request.body,
    )


@pytest.fixture(params=["inproc", "tcp"])
def server_address(request):
    if request.param == "inproc":
        transport = InProcTransport()
        address = "httpd"
    else:
        transport = TcpTransport()
        address = ("127.0.0.1", 0)
    server = HttpServer(echo_app, transport=transport, address=address)
    with server.running() as bound:
        yield transport, bound, server


class TestBasicExchanges:
    def test_round_trip(self, server_address):
        transport, address, _ = server_address
        with HttpConnection(transport, address) as conn:
            resp = conn.request(HttpRequest("POST", "/svc", body=b"payload"))
        assert resp.status == 200
        assert resp.body == b"payload"
        assert resp.headers.get("X-Path") == "/svc"

    def test_keep_alive_reuses_connection(self, server_address):
        transport, address, server = server_address
        with HttpConnection(transport, address) as conn:
            for i in range(5):
                resp = conn.request(HttpRequest("POST", f"/r{i}", body=b"x"))
                assert resp.ok
            assert conn.exchanges == 5
        assert server.connections_accepted == 1
        assert server.requests_served == 5

    def test_connection_close_honoured(self, server_address):
        transport, address, _ = server_address
        conn = HttpConnection(transport, address)
        resp = conn.request(
            HttpRequest("POST", "/", Headers({"Connection": "close"}), b"x")
        )
        assert resp.ok
        assert conn.closed
        with pytest.raises(HttpError):
            conn.request(HttpRequest())

    def test_large_body(self, server_address):
        transport, address, _ = server_address
        payload = b"z" * (1024 * 1024)
        with HttpConnection(transport, address) as conn:
            resp = conn.request(HttpRequest("POST", "/", body=payload))
        assert resp.body == payload

    def test_concurrent_clients(self, server_address):
        transport, address, _ = server_address
        results = {}
        lock = threading.Lock()

        def worker(i):
            with HttpConnection(transport, address) as conn:
                resp = conn.request(HttpRequest("POST", "/", body=f"m{i}".encode()))
            with lock:
                results[i] = resp.body

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == {i: f"m{i}".encode() for i in range(8)}


class TestServerRobustness:
    def test_malformed_request_gets_error_response(self, server_address):
        transport, address, _ = server_address
        channel = transport.connect(address)
        channel.sendall(b"NONSENSE\r\n\r\n")
        data = bytearray()
        while chunk := channel.recv():
            data.extend(chunk)
        assert data.startswith(b"HTTP/1.1 400")
        channel.close()

    def test_app_exception_becomes_500(self):
        def broken_app(request):
            raise RuntimeError("kaboom")

        transport = InProcTransport()
        server = HttpServer(broken_app, transport=transport, address="broken")
        with server.running() as address:
            with HttpConnection(transport, address) as conn:
                resp = conn.request(HttpRequest("POST", "/", body=b"x"))
        assert resp.status == 500
        assert b"kaboom" in resp.body

    def test_server_header_set(self, server_address):
        transport, address, _ = server_address
        with HttpConnection(transport, address) as conn:
            resp = conn.request(HttpRequest("POST", "/", body=b""))
        assert "repro-httpd" in (resp.headers.get("Server") or "")

    def test_stop_is_idempotent_and_restart_fails(self):
        transport = InProcTransport()
        server = HttpServer(echo_app, transport=transport, address="once")
        server.start()
        server.stop()
        server.stop()
        with pytest.raises(HttpError):
            server.start()

    def test_address_property(self):
        transport = InProcTransport()
        server = HttpServer(echo_app, transport=transport, address="addr")
        with pytest.raises(HttpError):
            _ = server.address
        with server.running():
            assert server.address == "addr"


class TestConnectionPool:
    def test_pool_reuses_connections(self, server_address):
        transport, address, server = server_address
        pool = ConnectionPool(transport)
        for _ in range(6):
            resp = pool.request(address, HttpRequest("POST", "/", body=b"x"))
            assert resp.ok
        assert pool.connections_created == 1
        assert server.connections_accepted == 1
        pool.close()

    def test_pool_grows_under_concurrency(self, server_address):
        transport, address, _ = server_address
        pool = ConnectionPool(transport)
        barrier = threading.Barrier(4)

        def worker():
            conn = pool.acquire(address)
            barrier.wait(timeout=5)  # hold 4 connections simultaneously
            resp = conn.request(HttpRequest("POST", "/", body=b"y"))
            assert resp.ok
            pool.release(address, conn)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert pool.connections_created == 4
        pool.close()

    def test_release_closed_connection_dropped(self, server_address):
        transport, address, _ = server_address
        pool = ConnectionPool(transport)
        conn = pool.acquire(address)
        conn.close()
        pool.release(address, conn)
        fresh = pool.acquire(address)
        assert not fresh.closed
        assert pool.connections_created == 2
        pool.close()

    def test_max_idle_respected(self, server_address):
        transport, address, _ = server_address
        pool = ConnectionPool(transport, max_idle_per_address=1)
        a = pool.acquire(address)
        b = pool.acquire(address)
        pool.release(address, a)
        pool.release(address, b)  # beyond max idle: closed
        assert b.closed
        assert not a.closed
        pool.close()
        assert a.closed
