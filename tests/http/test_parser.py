"""Unit tests for the incremental HTTP parser."""

import pytest

from repro.errors import HttpError
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import (
    ChannelReader,
    ConnectionClosedCleanly,
    encode_chunked,
    read_request,
    read_response,
)


class ScriptedChannel:
    """Feeds pre-scripted chunks to the reader, then EOF."""

    def __init__(self, *chunks: bytes):
        self._chunks = list(chunks)

    def recv(self, max_bytes: int = 65536) -> bytes:
        if not self._chunks:
            return b""
        return self._chunks.pop(0)

    def sendall(self, data: bytes) -> None:  # pragma: no cover
        raise AssertionError("not used")

    def close(self) -> None:  # pragma: no cover
        pass


def reader_for(*chunks: bytes) -> ChannelReader:
    return ChannelReader(ScriptedChannel(*chunks))


class TestReadRequest:
    def test_simple(self):
        raw = b"POST /svc HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
        req = read_request(reader_for(raw))
        assert req.method == "POST"
        assert req.path == "/svc"
        assert req.headers.get("Host") == "h"
        assert req.body == b"hello"

    def test_fragmented_arrival(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789"
        chunks = [raw[i : i + 7] for i in range(0, len(raw), 7)]
        req = read_request(reader_for(*chunks))
        assert req.body == b"0123456789"

    def test_no_body(self):
        req = read_request(reader_for(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n"))
        assert req.body == b""
        assert req.method == "GET"

    def test_round_trip_with_model(self):
        original = HttpRequest("POST", "/soap", Headers({"SOAPAction": '"a"'}), b"<x/>")
        parsed = read_request(reader_for(original.to_bytes()))
        assert parsed.method == original.method
        assert parsed.path == original.path
        assert parsed.body == original.body
        assert parsed.headers.get("SOAPAction") == '"a"'

    def test_two_pipelined_requests(self):
        raw = (
            b"POST /a HTTP/1.1\r\nContent-Length: 1\r\n\r\nA"
            b"POST /b HTTP/1.1\r\nContent-Length: 1\r\n\r\nB"
        )
        reader = reader_for(raw)
        assert read_request(reader).body == b"A"
        assert read_request(reader).body == b"B"

    def test_clean_close_between_messages(self):
        with pytest.raises(ConnectionClosedCleanly):
            read_request(reader_for())

    def test_close_mid_head_raises(self):
        with pytest.raises(HttpError, match="mid-message"):
            read_request(reader_for(b"POST / HTTP/1.1\r\nHos"))

    def test_close_mid_body_raises(self):
        with pytest.raises(HttpError, match="mid-body"):
            read_request(reader_for(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"))

    @pytest.mark.parametrize(
        "head",
        [
            b"POST HTTP/1.1\r\n\r\n",  # missing path
            b"POST / HTTP/2.0\r\n\r\n",  # unsupported version
            b"POST / HTTP/1.1\r\nBad Header\r\n\r\n",  # no colon
            b"POST / HTTP/1.1\r\n Leading: x\r\n\r\n",  # space before name
            b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        ],
    )
    def test_malformed_raises(self, head):
        with pytest.raises(HttpError):
            read_request(reader_for(head))

    def test_body_without_length_raises_411(self):
        raw = b"POST / HTTP/1.1\r\nContent-Type: text/xml\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            read_request(reader_for(raw))
        assert excinfo.value.status == 411

    def test_oversized_head_raises_413(self):
        huge = b"POST / HTTP/1.1\r\nX: " + b"a" * 100_000
        with pytest.raises(HttpError) as excinfo:
            read_request(reader_for(huge, b"b" * 100_000))
        assert excinfo.value.status == 413


class TestReadResponse:
    def test_simple(self):
        raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
        resp = read_response(reader_for(raw))
        assert resp.status == 200
        assert resp.reason == "OK"
        assert resp.body == b"ok"

    def test_reason_with_spaces(self):
        raw = b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n"
        assert read_response(reader_for(raw)).reason == "Internal Server Error"

    def test_missing_reason_tolerated(self):
        raw = b"HTTP/1.1 204\r\n\r\n"
        resp = read_response(reader_for(raw))
        assert resp.status == 204

    def test_round_trip_with_model(self):
        original = HttpResponse(500, Headers({"Content-Type": "text/xml"}), b"<f/>")
        parsed = read_response(reader_for(original.to_bytes()))
        assert parsed.status == 500
        assert parsed.body == b"<f/>"

    def test_non_numeric_status_raises(self):
        with pytest.raises(HttpError):
            read_response(reader_for(b"HTTP/1.1 abc OK\r\n\r\n"))

    def test_no_content_length_means_empty_body(self):
        resp = read_response(reader_for(b"HTTP/1.1 204 No Content\r\n\r\n"))
        assert resp.body == b""


class TestChunked:
    def test_encode_decode(self):
        body = b"The quick brown fox jumps over the lazy dog" * 100
        encoded = encode_chunked(body, chunk_size=100)
        raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + encoded
        assert read_response(reader_for(raw)).body == body

    def test_empty_body(self):
        raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + encode_chunked(b"")
        assert read_response(reader_for(raw)).body == b""

    def test_chunk_extension_ignored(self):
        raw = (
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5;ext=1\r\nhello\r\n0\r\n\r\n"
        )
        assert read_response(reader_for(raw)).body == b"hello"

    def test_request_chunked(self):
        raw = (
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            + encode_chunked(b"abc", chunk_size=2)
        )
        assert read_request(reader_for(raw)).body == b"abc"

    def test_bad_chunk_size_raises(self):
        raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"
        with pytest.raises(HttpError, match="chunk size"):
            read_response(reader_for(raw))

    def test_missing_chunk_terminator_raises(self):
        raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX0\r\n\r\n"
        with pytest.raises(HttpError, match="CRLF"):
            read_response(reader_for(raw))

    def test_unsupported_encoding_raises(self):
        raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: gzip\r\n\r\n"
        with pytest.raises(HttpError, match="unsupported transfer"):
            read_response(reader_for(raw))
