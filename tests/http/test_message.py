"""Unit tests for HTTP message models and headers."""

import pytest

from repro.errors import HttpError
from repro.http.message import Headers, HttpRequest, HttpResponse


class TestHeaders:
    def test_case_insensitive_get(self):
        h = Headers({"Content-Type": "text/xml"})
        assert h.get("content-type") == "text/xml"
        assert h.get("CONTENT-TYPE") == "text/xml"

    def test_original_case_preserved_in_items(self):
        h = Headers()
        h.set("SOAPAction", '""')
        assert list(h.items()) == [("SOAPAction", '""')]

    def test_set_overwrites(self):
        h = Headers()
        h.set("X", "1")
        h.set("x", "2")
        assert h.get("X") == "2"
        assert len(h) == 1

    def test_add_folds_with_comma(self):
        h = Headers()
        h.add("Accept", "text/xml")
        h.add("accept", "text/plain")
        assert h.get("Accept") == "text/xml, text/plain"

    def test_contains(self):
        h = Headers({"Host": "localhost"})
        assert "host" in h
        assert "missing" not in h

    def test_remove(self):
        h = Headers({"X": "1"})
        h.remove("x")
        assert "X" not in h
        h.remove("x")  # idempotent

    def test_copy_independent(self):
        h = Headers({"X": "1"})
        clone = h.copy()
        clone.set("X", "2")
        assert h.get("X") == "1"

    def test_values_coerced_to_str(self):
        h = Headers()
        h.set("Content-Length", 42)
        assert h.get("Content-Length") == "42"


class TestHttpRequest:
    def test_to_bytes_shape(self):
        req = HttpRequest("POST", "/soap", Headers({"Host": "h"}), b"body")
        raw = req.to_bytes()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"POST /soap HTTP/1.1\r\n")
        assert b"Host: h" in head
        assert b"Content-Length: 4" in head
        assert body == b"body"

    def test_content_length_always_set(self):
        raw = HttpRequest(body=b"").to_bytes()
        assert b"Content-Length: 0" in raw

    def test_keep_alive_default_http11(self):
        assert HttpRequest().keep_alive

    def test_keep_alive_connection_close(self):
        req = HttpRequest(headers=Headers({"Connection": "close"}))
        assert not req.keep_alive

    def test_keep_alive_http10_default_off(self):
        req = HttpRequest(version="HTTP/1.0")
        assert not req.keep_alive

    def test_keep_alive_http10_opt_in(self):
        req = HttpRequest(version="HTTP/1.0", headers=Headers({"Connection": "keep-alive"}))
        assert req.keep_alive


class TestHttpResponse:
    def test_reason_filled_from_status(self):
        assert HttpResponse(200).reason == "OK"
        assert HttpResponse(404).reason == "Not Found"
        assert HttpResponse(599).reason == "Unknown"

    def test_explicit_reason_kept(self):
        assert HttpResponse(200, reason="Fine").reason == "Fine"

    def test_to_bytes_shape(self):
        resp = HttpResponse(500, Headers({"X": "1"}), b"oops")
        raw = resp.to_bytes()
        assert raw.startswith(b"HTTP/1.1 500 Internal Server Error\r\n")
        assert raw.endswith(b"\r\n\r\noops")

    def test_ok(self):
        assert HttpResponse(204).ok
        assert not HttpResponse(400).ok

    def test_raise_for_status_passes_on_ok(self):
        resp = HttpResponse(200)
        assert resp.raise_for_status() is resp

    def test_raise_for_status_raises(self):
        with pytest.raises(HttpError) as excinfo:
            HttpResponse(503, body=b"busy").raise_for_status()
        assert excinfo.value.status == 503
