"""Tests for chunked response streaming (Chiu et al. related work)."""

import pytest

from repro.apps.echo import ECHO_NS, make_echo_payload, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.server import HttpServer
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


def echo_app(request):
    return HttpResponse(200, Headers({"Content-Type": "application/octet-stream"}), request.body)


@pytest.fixture
def chunked_server():
    transport = InProcTransport()
    server = HttpServer(
        echo_app,
        transport=transport,
        address="chunked",
        chunk_responses_over=100,
        chunk_size=64,
    )
    with server.running() as address:
        yield transport, address


class TestChunkedResponses:
    def test_small_body_stays_content_length(self, chunked_server):
        transport, address = chunked_server
        with HttpConnection(transport, address) as conn:
            response = conn.request(HttpRequest("POST", "/", body=b"tiny"))
        assert response.body == b"tiny"
        assert response.headers.get("Transfer-Encoding") is None
        assert response.headers.get("Content-Length") == "4"

    def test_large_body_arrives_chunked(self, chunked_server):
        transport, address = chunked_server
        payload = bytes(range(256)) * 40  # 10240 bytes -> many chunks
        with HttpConnection(transport, address) as conn:
            response = conn.request(HttpRequest("POST", "/", body=payload))
        assert response.body == payload
        assert response.headers.get("Transfer-Encoding") == "chunked"
        assert response.headers.get("Content-Length") is None

    def test_keep_alive_across_chunked_exchanges(self, chunked_server):
        transport, address = chunked_server
        payload = b"z" * 500
        with HttpConnection(transport, address) as conn:
            for _ in range(3):
                assert conn.request(HttpRequest("POST", "/", body=payload)).body == payload
            assert conn.exchanges == 3

    def test_boundary_is_exclusive(self, chunked_server):
        transport, address = chunked_server
        with HttpConnection(transport, address) as conn:
            response = conn.request(HttpRequest("POST", "/", body=b"x" * 100))
        assert response.headers.get("Transfer-Encoding") is None

    def test_raw_wire_has_chunk_framing(self, chunked_server):
        transport, address = chunked_server
        body = b"y" * 200
        request = HttpRequest("POST", "/", Headers({"Connection": "close"}), body)
        channel = transport.connect(address)
        channel.sendall(request.to_bytes())
        raw = bytearray()
        while chunk := channel.recv():
            raw.extend(chunk)
        channel.close()
        assert b"Transfer-Encoding: chunked" in raw
        assert b"\r\n40\r\n" in raw  # 64-byte chunks -> hex "40"
        assert raw.endswith(b"0\r\n\r\n")


class TestChunkedSoapServer:
    def test_soap_stack_works_over_chunked_responses(self):
        transport = InProcTransport()
        server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="chunked-soap", chunk_responses_over=256))
        with server.running() as address:
            proxy = build_proxy(ClientConfig(
                transport, address, namespace=ECHO_NS, service_name="EchoService"
            ))
            payload = make_echo_payload(10_000)
            assert proxy.call("echo", payload=payload) == payload
