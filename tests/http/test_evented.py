"""Event-loop protocol stage: parser, connection state machine, server.

The connection tests drive :class:`EventedConnection` directly with a
fake socket and hand-rolled ``now`` values — no threads, no clocks —
which is the point of the state machine being pure with respect to
time.  A handful of real-socket tests then cover the loop itself.
"""

import collections
import socket

import pytest

from repro.errors import HttpError
from repro.http.evented import (
    MAX_PIPELINED,
    EventedConnection,
    EventedHttpServer,
    _ResponseSlot,
)
from repro.http.message import Headers, HttpResponse
from repro.http.parser import MAX_HEAD_BYTES, RequestParser
from repro.transport.tcp import TcpTransport


class FakeSocket:
    """Scripted socket: recv pops chunks, send honours an accept budget."""

    def __init__(self, chunks=(), accept=None):
        self.chunks = collections.deque(chunks)
        #: per-send byte budgets; None = accept everything
        self.accept = collections.deque(accept) if accept is not None else None
        self.sent = bytearray()

    def recv(self, max_bytes):
        if not self.chunks:
            raise BlockingIOError
        return self.chunks.popleft()

    def send(self, data):
        if self.accept is None:
            self.sent += data
            return len(data)
        if not self.accept:
            raise BlockingIOError
        budget = self.accept.popleft()
        taken = min(budget, len(data))
        self.sent += bytes(data[:taken])
        return taken


SIMPLE = b"POST /svc HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello"


class TestRequestParser:
    def test_byte_by_byte_feed(self):
        parser = RequestParser()
        for byte in SIMPLE[:-1]:
            parser.feed(bytes([byte]))
            assert parser.next_request() is None
        parser.feed(SIMPLE[-1:])
        request = parser.next_request()
        assert request is not None
        assert (request.method, request.path) == ("POST", "/svc")
        assert request.body == b"hello"
        assert parser.requests_parsed == 1
        assert not parser.has_buffered_data

    def test_pipelined_requests_in_one_feed(self):
        parser = RequestParser()
        parser.feed(SIMPLE + SIMPLE)
        first = parser.next_request()
        second = parser.next_request()
        assert first.body == second.body == b"hello"
        assert parser.next_request() is None
        assert parser.requests_parsed == 2

    def test_chunked_body_with_trailer(self):
        parser = RequestParser()
        parser.feed(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"5\r\nhello\r\n6\r\n world\r\n0\r\nX-Trailer: v\r\n\r\n"
        )
        request = parser.next_request()
        assert request.body == b"hello world"

    def test_chunked_split_mid_chunk(self):
        parser = RequestParser()
        parser.feed(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel")
        assert parser.next_request() is None
        assert parser.has_buffered_data
        parser.feed(b"lo\r\n0\r\n\r\n")
        assert parser.next_request().body == b"hello"

    def test_bad_content_length_is_400(self):
        parser = RequestParser()
        parser.feed(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        with pytest.raises(HttpError) as err:
            parser.next_request()
        assert err.value.status == 400

    def test_body_without_length_is_411(self):
        parser = RequestParser()
        parser.feed(b"POST / HTTP/1.1\r\nContent-Type: text/xml\r\n\r\n")
        with pytest.raises(HttpError) as err:
            parser.next_request()
        assert err.value.status == 411

    def test_oversized_head_is_413(self):
        parser = RequestParser()
        parser.feed(b"POST / HTTP/1.1\r\nX-Pad: " + b"x" * MAX_HEAD_BYTES)
        with pytest.raises(HttpError) as err:
            parser.next_request()
        assert err.value.status == 413

    def test_get_without_body_completes_at_head(self):
        parser = RequestParser()
        parser.feed(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        request = parser.next_request()
        assert request.method == "GET"
        assert request.body == b""


def make_conn(
    sock, *, now=0.0, idle_timeout=None, write_timeout=None, handler_timeout=None
):
    return EventedConnection(
        sock,
        now=now,
        idle_timeout=idle_timeout,
        write_timeout=write_timeout,
        handler_timeout=handler_timeout,
    )


def queue_response(conn, payload, *, now, close_after=False):
    """What the server does when a worker finishes: fill + pump."""
    slot = _ResponseSlot()
    conn.slots.append(slot)
    slot.fill(payload, close_after=close_after)
    return conn.pump_ready(now)


class TestEventedConnection:
    def test_reads_complete_request(self):
        conn = make_conn(FakeSocket([SIMPLE]))
        requests = conn.on_readable(now=1.0)
        assert [r.body for r in requests] == [b"hello"]
        assert conn.parse_started is None  # nothing half-parsed remains

    def test_pipelined_burst_returns_all_requests(self):
        conn = make_conn(FakeSocket([SIMPLE + SIMPLE + SIMPLE]))
        assert len(conn.on_readable(now=0.0)) == 3

    def test_partial_write_resumes_where_it_stopped(self):
        sock = FakeSocket(accept=[4])
        conn = make_conn(sock, write_timeout=30.0)
        assert queue_response(conn, b"ABCDEFGH", now=1.0)
        assert conn.flush(now=1.0) is False  # kernel took 4, then blocked
        assert bytes(sock.sent) == b"ABCD"
        assert conn.write_started == 1.0
        sock.accept.append(100)
        assert conn.flush(now=2.0) is True
        assert bytes(sock.sent) == b"ABCDEFGH"
        assert conn.write_started is None

    def test_stalled_peer_blows_write_deadline(self):
        conn = make_conn(FakeSocket(accept=[]), write_timeout=5.0)
        queue_response(conn, b"stuck", now=10.0)
        conn.flush(now=10.0)
        assert conn.timed_out(now=14.9) is None
        assert conn.timed_out(now=15.1) == "write"

    def test_write_deadline_measures_stall_not_total_transfer(self):
        # A slow-but-progressing reader must NOT be killed: every byte
        # of progress re-arms the write deadline, so only a genuine
        # stall (no progress for write_timeout) blows it.
        sock = FakeSocket(accept=[1])
        conn = make_conn(sock, write_timeout=5.0)
        queue_response(conn, b"ABCD", now=0.0)
        assert conn.flush(now=0.0) is False  # 1 byte, then blocked
        for tick in (4.0, 8.0):  # total elapsed far exceeds 5s
            sock.accept.append(1)
            assert conn.timed_out(now=tick) is None
            assert conn.flush(now=tick) is False
        assert conn.write_started == 8.0  # anchored at last progress
        assert conn.timed_out(now=12.9) is None
        assert conn.timed_out(now=13.1) == "write"

    def test_unfilled_slot_blows_handler_deadline(self):
        # A dispatched request whose slot is never filled (dropped
        # completion, wedged worker) must not wedge the connection
        # forever: the handler deadline reclaims it.
        conn = make_conn(FakeSocket(), handler_timeout=10.0)
        slot = _ResponseSlot(dispatched_at=2.0)
        conn.slots.append(slot)
        assert conn.timed_out(now=11.9) is None
        assert conn.timed_out(now=12.1) == "handler"
        slot.fill(b"late", close_after=False)  # answered: deadline off
        assert conn.timed_out(now=12.1) is None

    def test_framing_error_carries_parsed_valid_prefix(self):
        # Pipelined batch where request 2 is malformed: the HttpError
        # must surface request 1 so the server answers it first.
        bad = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        conn = make_conn(FakeSocket([SIMPLE + bad]))
        with pytest.raises(HttpError) as err:
            conn.on_readable(now=0.0)
        assert [r.body for r in err.value.parsed_requests] == [b"hello"]
        assert conn.reading_shut

    def test_slow_loris_idle_anchor_is_parse_start(self):
        # Trickling one header fragment per second must NOT keep the
        # connection alive: the idle anchor is when the request started
        # arriving, not the last trickled byte.
        sock = FakeSocket([b"POST / HT"])
        conn = make_conn(sock, idle_timeout=10.0)
        assert conn.on_readable(now=0.0) == []
        assert conn.parse_started == 0.0
        for second in range(1, 9):
            sock.chunks.append(b"x")  # more header bytes, never finishing
            conn.on_readable(now=float(second))
        assert conn.last_activity == 8.0
        assert conn.parse_started == 0.0  # anchor did not move
        assert conn.timed_out(now=9.9) is None
        assert conn.timed_out(now=10.1) == "idle"

    def test_idle_between_requests_anchors_at_last_activity(self):
        sock = FakeSocket([SIMPLE])
        conn = make_conn(sock, idle_timeout=10.0)
        conn.on_readable(now=5.0)
        assert conn.timed_out(now=14.9) is None
        assert conn.timed_out(now=15.1) == "idle"

    def test_no_idle_timeout_while_response_pending(self):
        conn = make_conn(FakeSocket([SIMPLE]), idle_timeout=1.0)
        conn.on_readable(now=0.0)
        slot = _ResponseSlot()
        conn.slots.append(slot)  # dispatched, worker still running
        assert conn.timed_out(now=100.0) is None

    def test_out_of_order_fills_write_in_request_order(self):
        conn = make_conn(FakeSocket())
        first, second = _ResponseSlot(), _ResponseSlot()
        conn.slots.extend([first, second])
        second.fill(b"SECOND", close_after=False)
        assert conn.pump_ready(now=0.0) is False  # head of line not done
        first.fill(b"FIRST", close_after=False)
        assert conn.pump_ready(now=0.0) is True
        assert bytes(conn.outbuf) == b"FIRSTSECOND"

    def test_close_after_slot_shuts_reading(self):
        conn = make_conn(FakeSocket())
        queue_response(conn, b"bye", now=0.0, close_after=True)
        assert conn.close_after_write
        assert conn.reading_shut

    def test_clean_eof_finishes_connection(self):
        conn = make_conn(FakeSocket([b""]))
        assert conn.on_readable(now=0.0) is None
        assert not conn.close_after_write
        assert conn.finished

    def test_eof_mid_message_marks_drop(self):
        conn = make_conn(FakeSocket([b"POST / HTTP/1.1\r\nContent-L", b""]))
        assert conn.on_readable(now=0.0) is None
        assert conn.close_after_write

    def test_framing_error_raises_and_shuts_reading(self):
        conn = make_conn(FakeSocket([b"NOT HTTP\r\n\r\n"]))
        with pytest.raises(HttpError):
            conn.on_readable(now=0.0)
        assert conn.reading_shut

    def test_pipelining_cap_drops_read_interest(self):
        conn = make_conn(FakeSocket())
        assert conn.want_read()
        conn.slots.extend(_ResponseSlot() for _ in range(MAX_PIPELINED))
        assert not conn.want_read()


def echo_app(request):
    return HttpResponse(
        200, Headers({"Content-Type": "text/plain"}), request.body
    )


def recv_response(sock, buffer=None):
    """Read one Content-Length-framed response off a blocking socket.

    Pass the same ``buffer`` for every read on a connection — pipelined
    responses arrive back to back, so bytes past the current response
    must survive into the next call.
    """
    if buffer is None:
        buffer = bytearray()
    while b"\r\n\r\n" not in buffer:
        buffer += sock.recv(65536)
    head_end = buffer.find(b"\r\n\r\n") + 4
    head = bytes(buffer[: head_end - 4])
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(buffer) < head_end + length:
        buffer += sock.recv(65536)
    body = bytes(buffer[head_end : head_end + length])
    del buffer[: head_end + length]
    return head, body


class TestEventedHttpServer:
    def test_keep_alive_and_pipelining_over_real_sockets(self):
        server = EventedHttpServer(
            echo_app, transport=TcpTransport(), address=("127.0.0.1", 0)
        )
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                # two requests in one write: pipelined, answered in order
                buffer = bytearray()
                sock.sendall(SIMPLE + SIMPLE)
                head1, body1 = recv_response(sock, buffer)
                head2, body2 = recv_response(sock, buffer)
                assert body1 == body2 == b"hello"
                assert b"keep-alive" in head1
                # the same connection serves a third request afterwards
                sock.sendall(SIMPLE)
                _, body3 = recv_response(sock, buffer)
                assert body3 == b"hello"
        assert server.connections_accepted == 1
        assert server.requests_served == 3

    def test_accept_overload_sheds_with_canned_503(self):
        server = EventedHttpServer(
            echo_app,
            transport=TcpTransport(),
            address=("127.0.0.1", 0),
            max_connections=1,
        )
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5) as first:
                first.sendall(SIMPLE)
                recv_response(first)  # the budgeted connection works
                with socket.create_connection((host, port), timeout=5) as second:
                    head, _body = recv_response(second)  # shed before parse
                    assert head.startswith(b"HTTP/1.1 503")
        assert server.accept_overload_shed == 1

    def test_idle_connection_is_closed_by_the_loop(self):
        server = EventedHttpServer(
            echo_app,
            transport=TcpTransport(),
            address=("127.0.0.1", 0),
            idle_timeout=0.3,
        )
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                assert sock.recv(65536) == b""  # loop closes us, no request

    def test_pipelined_valid_then_malformed_answers_valid_first(self):
        # One write carrying a valid request then a malformed one: the
        # valid request is answered 200 before the 400, matching the
        # threaded backend (the error must not be misattributed).
        server = EventedHttpServer(
            echo_app, transport=TcpTransport(), address=("127.0.0.1", 0)
        )
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(
                    SIMPLE + b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
                )
                buffer = bytearray()
                head1, body1 = recv_response(sock, buffer)
                assert head1.startswith(b"HTTP/1.1 200")
                assert body1 == b"hello"
                head2, _body = recv_response(sock, buffer)
                assert head2.startswith(b"HTTP/1.1 400")
                assert b"Connection: close" in head2
                assert sock.recv(65536) == b""
        assert server.requests_served == 1

    def test_pipelined_admin_then_malformed_answers_admin_first(self):
        # Same batch shape, but the valid request is answered
        # synchronously on the loop (admin path, obs enabled): the
        # connection must stay open until the error slot is queued —
        # flushing the admin response must not read as `finished`.
        from repro.obs.trace import Observability

        server = EventedHttpServer(
            echo_app,
            transport=TcpTransport(),
            address=("127.0.0.1", 0),
            observability=Observability(),
        )
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                    b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
                )
                buffer = bytearray()
                head1, _body = recv_response(sock, buffer)
                assert head1.startswith(b"HTTP/1.1 200")
                head2, _body = recv_response(sock, buffer)
                assert head2.startswith(b"HTTP/1.1 400")
                assert sock.recv(65536) == b""

    def test_malformed_request_answers_error_then_closes(self):
        server = EventedHttpServer(
            echo_app, transport=TcpTransport(), address=("127.0.0.1", 0)
        )
        with server.running() as (host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                head, _body = recv_response(sock)
                assert head.startswith(b"HTTP/1.1 400")
                assert b"Connection: close" in head
                assert sock.recv(65536) == b""
