"""Chaos transport: deterministic injection + client retry convergence."""

import pytest

from repro.apps.echo import ECHO_NS, ECHO_SERVICE, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.dispatcher import spi_server_handlers
from repro.errors import SoapFaultError, TransportError
from repro.resilience.policy import CallPolicy
from repro.server.handlers import HandlerChain
from repro.transport.chaos import BUSY, DROP, PASS, ChaosTransport
from repro.transport.inproc import InProcTransport
from repro.transport.tcp import TcpTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


@pytest.fixture(params=["threaded", "evented"])
def backend(request):
    """Chaos only perturbs the client side, so both protocol backends
    must converge identically; evented runs over loopback TCP since the
    in-process transport has no selectable socket."""
    return request.param


def make_transport(backend):
    return InProcTransport() if backend == "threaded" else TcpTransport()


@pytest.fixture
def echo_server_factory():
    """Start an echo server on a given transport; stop it afterwards.

    Returns the bound address — fixed string for in-proc, the actual
    (host, port) for TCP backends.
    """
    servers = []

    def start(transport, backend="threaded"):
        address = "chaos-test" if backend == "threaded" else ("127.0.0.1", 0)
        server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", backend=backend, transport=transport, address=address, chain=HandlerChain(spi_server_handlers()), app_workers=4))
        bound = server.start()
        servers.append(server)
        return bound

    yield start
    for server in servers:
        server.stop()


def make_proxy(transport, address, policy=None):
    return build_proxy(ClientConfig(
        transport,
        address,
        namespace=ECHO_NS,
        service_name=ECHO_SERVICE,
        policy=policy,
    ))


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = ChaosTransport(InProcTransport(), drop_rate=0.3, busy_rate=0.2, seed=42)
        b = ChaosTransport(InProcTransport(), drop_rate=0.3, busy_rate=0.2, seed=42)
        assert [a._decide() for _ in range(50)] == [b._decide() for _ in range(50)]

    def test_different_seed_different_pattern(self):
        a = ChaosTransport(InProcTransport(), drop_rate=0.5, seed=1)
        b = ChaosTransport(InProcTransport(), drop_rate=0.5, seed=2)
        assert [a._decide() for _ in range(50)] != [b._decide() for _ in range(50)]

    def test_rates_zero_means_all_pass(self):
        chaos = ChaosTransport(InProcTransport(), seed=0)
        assert all(chaos._decide() == PASS for _ in range(20))
        assert chaos.stats.passed == 20

    def test_rate_one_means_all_drop(self):
        chaos = ChaosTransport(InProcTransport(), drop_rate=1.0, seed=0)
        assert all(chaos._decide() == DROP for _ in range(10))

    def test_rates_validated(self):
        with pytest.raises(TransportError):
            ChaosTransport(InProcTransport(), drop_rate=0.8, busy_rate=0.5)
        with pytest.raises(TransportError):
            ChaosTransport(InProcTransport(), drop_rate=-0.1)


class TestInjection:
    def test_drop_surfaces_as_transport_error(self, echo_server_factory, backend):
        chaos = ChaosTransport(make_transport(backend), drop_rate=1.0, seed=0)
        address = echo_server_factory(chaos.base, backend)
        proxy = make_proxy(chaos, address)
        with pytest.raises(TransportError, match="chaos"):
            proxy.call("echo", payload="x")
        assert chaos.stats.dropped == 1

    def test_busy_surfaces_as_retryable_server_busy_fault(self, echo_server_factory, backend):
        chaos = ChaosTransport(make_transport(backend), busy_rate=1.0, seed=0)
        address = echo_server_factory(chaos.base, backend)
        proxy = make_proxy(chaos, address)
        with pytest.raises(SoapFaultError) as excinfo:
            proxy.call("echo", payload="x")
        assert excinfo.value.faultcode == "Server.Busy"
        assert excinfo.value.is_retryable()
        assert chaos.stats.busied == 1

    def test_passthrough_echo_still_works(self, echo_server_factory, backend):
        chaos = ChaosTransport(make_transport(backend), seed=0)
        address = echo_server_factory(chaos.base, backend)
        proxy = make_proxy(chaos, address)
        assert proxy.call("echo", payload="hello") == "hello"

    def test_delay_mode_calls_injected_sleep(self, echo_server_factory, backend):
        slept = []
        chaos = ChaosTransport(
            make_transport(backend),
            delay_rate=1.0,
            delay_s=0.123,
            seed=0,
            sleep=slept.append,
        )
        address = echo_server_factory(chaos.base, backend)
        proxy = make_proxy(chaos, address)
        assert proxy.call("echo", payload="x") == "x"
        assert slept == [0.123]


class TestRetryConvergence:
    def test_policy_converges_through_30pct_drops(self, echo_server_factory, backend):
        # seed chosen arbitrarily; determinism means this either always
        # passes or never does — drop rate 0.3, 5 retries, expect every
        # call to eventually land
        chaos = ChaosTransport(make_transport(backend), drop_rate=0.3, seed=1234)
        address = echo_server_factory(chaos.base, backend)
        policy = CallPolicy(retries=5, backoff_base=0.001, backoff_max=0.002)
        proxy = make_proxy(chaos, address, policy=policy)
        results = [proxy.call("echo", payload=f"m{i}") for i in range(20)]
        assert results == [f"m{i}" for i in range(20)]
        assert chaos.stats.dropped > 0  # the chaos actually bit
        assert proxy.retries >= chaos.stats.dropped

    def test_no_retries_policy_fails_on_first_drop(self, echo_server_factory, backend):
        chaos = ChaosTransport(make_transport(backend), drop_rate=1.0, seed=0)
        address = echo_server_factory(chaos.base, backend)
        proxy = make_proxy(chaos, address)  # DEFAULT_POLICY: no retries
        with pytest.raises(TransportError):
            proxy.call("echo", payload="x")
        assert proxy.retries == 0

    def test_busy_injection_retried_to_success(self, echo_server_factory, backend):
        # busy_rate=0.4: some calls replay the canned 503, retries must
        # absorb them
        chaos = ChaosTransport(make_transport(backend), busy_rate=0.4, seed=99)
        address = echo_server_factory(chaos.base, backend)
        policy = CallPolicy(retries=6, backoff_base=0.001, backoff_max=0.002)
        proxy = make_proxy(chaos, address, policy=policy)
        results = [proxy.call("echo", payload=f"b{i}") for i in range(15)]
        assert results == [f"b{i}" for i in range(15)]
        assert chaos.stats.busied > 0
