"""Integration tests for the TCP transport (loopback sockets)."""

import threading

import pytest

from repro.errors import TransportError
from repro.transport.tcp import TcpTransport

LOOPBACK = ("127.0.0.1", 0)


@pytest.fixture
def transport():
    return TcpTransport()


class TestTcp:
    def test_ephemeral_port_assigned(self, transport):
        with transport.listen(LOOPBACK) as listener:
            host, port = listener.address
            assert host == "127.0.0.1"
            assert port > 0

    def test_round_trip(self, transport):
        with transport.listen(LOOPBACK) as listener:
            client = transport.connect(listener.address)
            server = listener.accept(timeout=2)
            client.sendall(b"hello tcp")
            assert server.recv() == b"hello tcp"
            server.sendall(b"reply")
            assert client.recv() == b"reply"
            client.close()
            server.close()

    def test_connect_refused(self, transport):
        with pytest.raises(TransportError, match="connect"):
            transport.connect(("127.0.0.1", 1))  # port 1: nothing listens

    def test_accept_timeout(self, transport):
        with transport.listen(LOOPBACK) as listener:
            with pytest.raises(TransportError, match="timed out"):
                listener.accept(timeout=0.05)

    def test_eof_on_peer_close(self, transport):
        with transport.listen(LOOPBACK) as listener:
            client = transport.connect(listener.address)
            server = listener.accept(timeout=2)
            client.close()
            assert server.recv() == b""
            server.close()

    def test_large_transfer(self, transport):
        payload = b"x" * (2 * 1024 * 1024)
        received = bytearray()

        with transport.listen(LOOPBACK) as listener:

            def serve():
                server = listener.accept(timeout=2)
                while chunk := server.recv(65536):
                    received.extend(chunk)
                server.close()

            thread = threading.Thread(target=serve)
            thread.start()
            client = transport.connect(listener.address)
            client.sendall(payload)
            client.close()
            thread.join(timeout=5)

        assert bytes(received) == payload

    def test_concurrent_connections(self, transport):
        with transport.listen(LOOPBACK) as listener:
            address = listener.address
            results = []
            lock = threading.Lock()

            def serve(n):
                for _ in range(n):
                    channel = listener.accept(timeout=2)
                    data = channel.recv()
                    channel.sendall(data.upper())
                    channel.close()

            server_thread = threading.Thread(target=serve, args=(4,))
            server_thread.start()

            def client(i):
                channel = transport.connect(address)
                channel.sendall(f"msg{i}".encode())
                with lock:
                    results.append(channel.recv().decode())
                channel.close()

            threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5)
            server_thread.join(timeout=5)

        assert sorted(results) == ["MSG0", "MSG1", "MSG2", "MSG3"]


class TestIoTimeout:
    def test_recv_times_out_on_silent_peer(self):
        transport = TcpTransport(io_timeout=0.05)
        with transport.listen(LOOPBACK) as listener:
            client = transport.connect(listener.address)
            server = listener.accept(timeout=2)  # server never sends
            with pytest.raises(TransportError, match="recv failed"):
                client.recv()
            client.close()
            server.close()

    def test_accepted_channel_inherits_timeout(self):
        transport = TcpTransport(io_timeout=0.05)
        with transport.listen(LOOPBACK) as listener:
            client = transport.connect(listener.address)
            server = listener.accept(timeout=2)
            with pytest.raises(TransportError, match="recv failed"):
                server.recv()
            client.close()
            server.close()

    def test_normal_exchange_unaffected(self):
        transport = TcpTransport(io_timeout=5.0)
        with transport.listen(LOOPBACK) as listener:
            client = transport.connect(listener.address)
            server = listener.accept(timeout=2)
            client.sendall(b"quick")
            assert server.recv() == b"quick"
            client.close()
            server.close()

    def test_http_client_times_out_on_hung_server(self):
        from repro.errors import HttpError
        from repro.http.connection import HttpConnection
        from repro.http.message import HttpRequest

        transport = TcpTransport(io_timeout=0.05)
        with transport.listen(LOOPBACK) as listener:
            import threading

            def accept_and_hang():
                listener.accept(timeout=2)  # read nothing, reply nothing

            thread = threading.Thread(target=accept_and_hang, daemon=True)
            thread.start()
            connection = HttpConnection(transport, listener.address)
            with pytest.raises((TransportError, HttpError)):
                connection.request(HttpRequest("POST", "/", body=b"x"))
            connection.close()
            thread.join(timeout=5)
