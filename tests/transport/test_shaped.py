"""Unit tests for network profiles, the link scheduler and shaped transport."""

import threading
import time

import pytest

from repro.transport.inproc import InProcTransport
from repro.transport.netprofile import (
    NULL_PROFILE,
    PAPER_LAN,
    WAN,
    LinkScheduler,
    NetworkProfile,
)
from repro.transport.shaped import ShapedTransport


class FakeClock:
    """Deterministic clock+sleep pair for scheduler tests."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestNetworkProfile:
    def test_transmit_seconds(self):
        profile = NetworkProfile("t", rtt=1e-3, bandwidth_bps=100e6)
        assert profile.transmit_seconds(12_500_000) == pytest.approx(1.0)

    def test_handshake_is_one_rtt(self):
        assert PAPER_LAN.handshake_delay == PAPER_LAN.rtt

    def test_one_way_latency(self):
        assert WAN.one_way_latency == pytest.approx(WAN.rtt / 2)

    def test_null_profile_is_free(self):
        assert NULL_PROFILE.transmit_seconds(10**9) == 0.0
        assert NULL_PROFILE.handshake_delay == 0.0

    def test_describe(self):
        assert "100" in PAPER_LAN.describe()


class TestLinkScheduler:
    def test_single_transmit_sleeps_transmit_plus_latency(self):
        fake = FakeClock()
        profile = NetworkProfile("t", rtt=0.010, bandwidth_bps=1000.0)  # 125 B/s
        link = LinkScheduler(profile, clock=fake.clock, sleep=fake.sleep)
        link.transmit(125)  # 1 second on the wire
        assert fake.now == pytest.approx(1.0 + 0.005)

    def test_sequential_transmits_accumulate(self):
        fake = FakeClock()
        profile = NetworkProfile("t", rtt=0.0, bandwidth_bps=1000.0)
        link = LinkScheduler(profile, clock=fake.clock, sleep=fake.sleep)
        link.transmit(125)
        link.transmit(125)
        assert fake.now == pytest.approx(2.0)

    def test_shared_link_serializes_concurrent_senders(self):
        # with a real clock: two 0.02s transmissions on one link take ~0.04s
        profile = NetworkProfile("t", rtt=0.0, bandwidth_bps=8 * 50_000.0)
        link = LinkScheduler(profile)
        start = time.monotonic()
        threads = [
            threading.Thread(target=link.transmit, args=(1000,)) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        assert elapsed >= 0.038

    def test_handshake_sleeps_rtt(self):
        fake = FakeClock()
        link = LinkScheduler(
            NetworkProfile("t", rtt=0.25, bandwidth_bps=1e9),
            clock=fake.clock,
            sleep=fake.sleep,
        )
        link.handshake()
        assert fake.now == pytest.approx(0.25)
        assert link.stats.handshakes == 1

    def test_stats_recorded(self):
        fake = FakeClock()
        link = LinkScheduler(
            NetworkProfile("t", rtt=0.0, bandwidth_bps=8000.0),
            clock=fake.clock,
            sleep=fake.sleep,
        )
        link.transmit(1000)
        link.transmit(500)
        snap = link.stats.snapshot()
        assert snap["messages"] == 2
        assert snap["bytes"] == 1500
        assert snap["total_transmit_s"] == pytest.approx(1.5)

    def test_per_message_overhead(self):
        fake = FakeClock()
        profile = NetworkProfile("t", rtt=0.0, bandwidth_bps=1e12, per_message_overhead=0.1)
        link = LinkScheduler(profile, clock=fake.clock, sleep=fake.sleep)
        link.transmit(1)
        assert fake.now == pytest.approx(0.1, abs=1e-6)


class TestShapedTransport:
    def test_round_trip_still_works(self):
        shaped = ShapedTransport(InProcTransport(), NULL_PROFILE)
        listener = shaped.listen("svc")
        client = shaped.connect("svc")
        server = listener.accept(timeout=1)
        client.sendall(b"payload")
        assert server.recv() == b"payload"
        server.sendall(b"back")
        assert client.recv() == b"back"
        listener.close()

    def test_connect_pays_handshake(self):
        profile = NetworkProfile("t", rtt=0.05, bandwidth_bps=1e9)
        shaped = ShapedTransport(InProcTransport(), profile)
        shaped.listen("svc")
        start = time.monotonic()
        shaped.connect("svc")
        elapsed = time.monotonic() - start
        assert elapsed >= 0.05
        assert shaped.uplink.stats.handshakes == 1

    def test_uplink_and_downlink_accounted_separately(self):
        shaped = ShapedTransport(InProcTransport(), NULL_PROFILE)
        listener = shaped.listen("svc")
        client = shaped.connect("svc")
        server = listener.accept(timeout=1)
        client.sendall(b"12345")
        server.recv()
        server.sendall(b"123")
        client.recv()
        stats = shaped.wire_stats()
        assert stats["uplink"]["bytes"] == 5
        assert stats["downlink"]["bytes"] == 3

    def test_send_pays_bandwidth(self):
        profile = NetworkProfile("t", rtt=0.0, bandwidth_bps=8 * 10_000.0)
        shaped = ShapedTransport(InProcTransport(), profile)
        listener = shaped.listen("svc")
        client = shaped.connect("svc")
        listener.accept(timeout=1)
        start = time.monotonic()
        client.sendall(b"x" * 500)  # 0.05 s at 10 kB/s
        elapsed = time.monotonic() - start
        assert elapsed >= 0.045
