"""Unit tests for the in-process transport."""

import threading

import pytest

from repro.errors import TransportError
from repro.transport.base import ChannelClosed, ListenerClosed
from repro.transport.inproc import InProcTransport


@pytest.fixture
def transport():
    return InProcTransport()


class TestListenConnect:
    def test_connect_refused_without_listener(self, transport):
        with pytest.raises(TransportError, match="refused"):
            transport.connect("nowhere")

    def test_listen_twice_same_address_raises(self, transport):
        transport.listen("svc")
        with pytest.raises(TransportError, match="in use"):
            transport.listen("svc")

    def test_address_reusable_after_close(self, transport):
        transport.listen("svc").close()
        transport.listen("svc")

    def test_listener_address(self, transport):
        assert transport.listen("svc").address == "svc"

    def test_accept_returns_connected_channel(self, transport):
        listener = transport.listen("svc")
        client = transport.connect("svc")
        server = listener.accept(timeout=1)
        client.sendall(b"ping")
        assert server.recv() == b"ping"

    def test_accept_timeout(self, transport):
        listener = transport.listen("svc")
        with pytest.raises(TransportError, match="timed out"):
            listener.accept(timeout=0.01)

    def test_accept_after_close_raises(self, transport):
        listener = transport.listen("svc")
        listener.close()
        with pytest.raises(ListenerClosed):
            listener.accept(timeout=1)

    def test_close_unblocks_pending_accept(self, transport):
        listener = transport.listen("svc")
        errors = []

        def blocked_accept():
            try:
                listener.accept(timeout=5)
            except ListenerClosed:
                errors.append("closed")

        thread = threading.Thread(target=blocked_accept)
        thread.start()
        listener.close()
        thread.join(timeout=2)
        assert errors == ["closed"]


class TestChannelSemantics:
    @pytest.fixture
    def pair(self, transport):
        listener = transport.listen("svc")
        client = transport.connect("svc")
        server = listener.accept(timeout=1)
        return client, server

    def test_bidirectional(self, pair):
        client, server = pair
        client.sendall(b"question")
        assert server.recv() == b"question"
        server.sendall(b"answer")
        assert client.recv() == b"answer"

    def test_recv_respects_max_bytes(self, pair):
        client, server = pair
        client.sendall(b"abcdef")
        assert server.recv(2) == b"ab"
        assert server.recv(2) == b"cd"
        assert server.recv(100) == b"ef"

    def test_message_boundaries_not_preserved(self, pair):
        client, server = pair
        client.sendall(b"aa")
        client.sendall(b"bb")
        received = server.recv(10) + server.recv(10)
        assert received == b"aabb"

    def test_close_gives_eof_to_peer(self, pair):
        client, server = pair
        client.sendall(b"last")
        client.close()
        assert server.recv() == b"last"
        assert server.recv() == b""
        assert server.recv() == b""

    def test_send_after_close_raises(self, pair):
        client, _ = pair
        client.close()
        with pytest.raises(ChannelClosed):
            client.sendall(b"x")

    def test_recv_after_close_raises(self, pair):
        client, _ = pair
        client.close()
        with pytest.raises(ChannelClosed):
            client.recv()

    def test_close_idempotent(self, pair):
        client, _ = pair
        client.close()
        client.close()

    def test_context_manager(self, transport):
        with transport.listen("svc") as listener:
            with transport.connect("svc") as client:
                with listener.accept(timeout=1) as server:
                    client.sendall(b"x")
                    assert server.recv() == b"x"

    def test_large_transfer(self, pair):
        client, server = pair
        payload = bytes(range(256)) * 4096  # 1 MiB
        client.sendall(payload)
        client.close()
        received = bytearray()
        while chunk := server.recv(65536):
            received.extend(chunk)
        assert bytes(received) == payload

    def test_empty_send_is_noop_for_reader(self, pair):
        client, server = pair
        client.sendall(b"")
        client.sendall(b"real")
        data = server.recv()
        while not data:
            data = server.recv()
        assert data == b"real"


class TestIsolation:
    def test_transport_instances_isolated(self):
        t1, t2 = InProcTransport(), InProcTransport()
        t1.listen("svc")
        with pytest.raises(TransportError):
            t2.connect("svc")

    def test_multiple_clients(self, transport):
        listener = transport.listen("svc")
        clients = [transport.connect("svc") for _ in range(5)]
        servers = [listener.accept(timeout=1) for _ in range(5)]
        for i, client in enumerate(clients):
            client.sendall(f"c{i}".encode())
        received = sorted(server.recv().decode() for server in servers)
        assert received == ["c0", "c1", "c2", "c3", "c4"]
