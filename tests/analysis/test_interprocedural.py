"""Golden tests for the interprocedural analyses.

Each corpus under ``fixtures/callgraph/`` is a mini-package: a positive
twin that must produce exactly the expected finding with its full
witness chain, and a negative twin of the same call shape that must be
clean.  The corpora double as integration tests for the call-graph
resolution features (aliasing, instance bindings, ref escapes, cycles).
"""

import json
import time
from pathlib import Path

from repro.analysis import check_paths, main, project_analyses

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def corpus_findings(case: str):
    """Run only the interprocedural analyses over one mini-package."""
    return check_paths(
        [FIXTURES / "callgraph" / case],
        rules=[],
        root=FIXTURES,
        project_analyses=project_analyses(),
    )


class TestMayBlock:
    def test_sleep_three_calls_below_a_loop_callback_is_caught(self):
        findings = corpus_findings("loop_pos")
        assert [f.rule_id for f in findings] == [
            "may-block-on-event-loop-transitive"
        ]
        finding = findings[0]
        # the sink is reported where it lives, two modules away
        assert finding.path == "callgraph/loop_pos/util.py"
        assert "time.sleep()" in finding.message
        # the full chain crosses the alias, the method dispatch and the
        # module boundary
        assert finding.chain == (
            "EventedHttpServer._run_loop",
            "EventedHttpServer._connection_ready",
            "EventedHttpServer._on_readable",
            "EventedHttpServer._report",
            "flush_metrics",
            "push_upstream",
        )
        assert " -> ".join(finding.chain) in finding.message

    def test_injected_clock_twin_is_clean(self):
        # same call shape, worker-side sleep behind a ref edge, a
        # recursion cycle, and a pragma barrier: all legal
        assert corpus_findings("loop_neg") == []

    def test_chain_travels_in_json_output(self):
        finding = corpus_findings("loop_pos")[0]
        document = finding.as_dict()
        assert document["chain"][0] == "EventedHttpServer._run_loop"
        assert document["chain"][-1] == "push_upstream"

    def test_seed_line_suppression_silences_the_finding(self, tmp_path):
        # copy the corpus, pragma the sink line
        corpus = FIXTURES / "callgraph" / "loop_pos"
        target = tmp_path / "loop_pos"
        target.mkdir()
        for source in corpus.glob("*.py"):
            text = source.read_text()
            if source.name == "util.py":
                text = text.replace(
                    "time.sleep(0.05)",
                    "time.sleep(0.05)  # repro: disable=may-block-on-event-loop-transitive",
                )
            (target / source.name).write_text(text)
        findings = check_paths(
            [target], rules=[], root=tmp_path,
            project_analyses=project_analyses(),
        )
        assert findings == []


class TestWallclockTaint:
    def test_helper_hiding_a_clock_read_is_caught_in_hedge_code(self):
        findings = corpus_findings("wallclock_pos")
        assert [f.rule_id for f in findings] == ["wallclock-taint"]
        finding = findings[0]
        assert finding.path == "callgraph/wallclock_pos/hedge.py"
        assert finding.chain == (
            "HedgeTimer.should_fire",
            "elapsed_since",
            "now_seconds",
        )
        assert "time.time()" in finding.message

    def test_injected_clock_twin_is_clean(self):
        assert corpus_findings("wallclock_neg") == []

    def test_clock_reads_outside_disciplined_files_are_legal(self):
        # the same taint reaching a non-hedge file is nobody's business
        findings = check_paths(
            [FIXTURES / "callgraph" / "wallclock_pos" / "util.py"],
            rules=[],
            root=FIXTURES,
            project_analyses=project_analyses(),
        )
        assert findings == []


class TestFaultFlow:
    def test_unclassified_raise_two_calls_down_is_caught(self):
        findings = corpus_findings("fault_pos")
        assert [f.rule_id for f in findings] == ["fault-flow-escape"]
        finding = findings[0]
        assert "DeepFaultError" in finding.message
        assert finding.chain == (
            "SoapEndpoint.__call__",
            "SoapEndpoint._dispatch",
            "SoapEndpoint._decode",
        )

    def test_catching_the_base_class_absorbs_the_hierarchy(self):
        assert corpus_findings("fault_neg") == []


class TestCliIntegration:
    def test_check_json_output_carries_chains(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES)
        exit_code = main(["check", "callgraph/loop_pos", "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        interprocedural = [
            f
            for f in document["new"]
            if f["rule"] == "may-block-on-event-loop-transitive"
        ]
        assert len(interprocedural) == 1
        assert interprocedural[0]["chain"][0] == "EventedHttpServer._run_loop"

    def test_stats_lists_rules_analyses_and_graph_size(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = main(["stats", "src"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "interprocedural" in out
        assert "may-block-on-event-loop-transitive" in out
        assert "wallclock-taint" in out
        assert "fault-flow-escape" in out
        assert "call graph:" in out
        assert "SCC" in out

    def test_report_callgraph_text_lists_edges(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES)
        exit_code = main(["report-callgraph", "callgraph/loop_pos"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "call graph:" in out
        assert "EventedHttpServer._run_loop" in out
        assert "ref callgraph.loop_pos.server.EventedHttpServer._handle_request" in out

    def test_report_callgraph_json_shape(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES)
        exit_code = main(
            ["report-callgraph", "callgraph/loop_pos", "--format", "json"]
        )
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert document["stats"]["functions"] > 0
        kinds = {e["kind"] for e in document["edges"]}
        assert kinds == {"call", "ref"}

    def test_report_callgraph_dot_is_a_digraph(self, monkeypatch, capsys):
        monkeypatch.chdir(FIXTURES)
        exit_code = main(
            ["report-callgraph", "callgraph/loop_pos", "--format", "dot"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.startswith("digraph callgraph {")
        assert '"callgraph.loop_pos.server.EventedHttpServer._run_loop"' in out
        assert out.rstrip().endswith("}")


class TestRuntimeBudget:
    def test_full_gate_over_src_stays_inside_the_ci_budget(self, monkeypatch):
        # CI asserts < 30s; locally the whole gate (per-module rules,
        # graph build, three fixpoints) should be far under that even
        # on a slow runner — use half the budget as the tripwire.
        monkeypatch.chdir(REPO_ROOT)
        start = time.monotonic()
        main(["check", "src", "--baseline", str(REPO_ROOT / "analysis_baseline.json")])
        elapsed = time.monotonic() - start
        assert elapsed < 15, f"analysis gate took {elapsed:.1f}s on src/"


def test_interprocedural_findings_do_not_depend_on_walk_order():
    # determinism: two runs over the same corpus yield identical
    # findings (fingerprints feed the committed baseline)
    first = [f.fingerprint for f in corpus_findings("loop_pos")]
    second = [f.fingerprint for f in corpus_findings("loop_pos")]
    assert first == second
