"""The ``python -m repro.analysis`` command line: exit codes and formats."""

import json
from pathlib import Path

from repro.analysis import main

FIXTURES = Path(__file__).parent / "fixtures"

CLEAN = "def ok():\n    return 1\n"
DIRTY = "import time\n\n\ndef broken():\n    try:\n        return time.time()\n    except:\n        return None\n"


def write_tree(tmp_path, dirty=False):
    package = tmp_path / "pkg"
    package.mkdir()
    (package / "mod.py").write_text(DIRTY if dirty else CLEAN)
    return package


class TestCheck:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["check", "pkg"]) == 0
        assert "analysis clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, dirty=True)
        monkeypatch.chdir(tmp_path)
        assert main(["check", "pkg"]) == 1
        out = capsys.readouterr().out
        assert "NEW finding" in out
        assert "no-bare-except" in out
        assert "no-wallclock-duration" in out

    def test_missing_baseline_exits_two(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["check", "pkg", "--baseline", "nope.json"]) == 2

    def test_unreadable_baseline_exits_two(self, tmp_path, monkeypatch):
        write_tree(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "pkg", "--baseline", "bad.json"]) == 2

    def test_baselined_findings_freeze(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, dirty=True)
        monkeypatch.chdir(tmp_path)
        assert main(["baseline", "pkg", "-o", "frozen.json"]) == 0
        capsys.readouterr()
        assert main(["check", "pkg", "--baseline", "frozen.json"]) == 0
        assert "frozen by baseline" in capsys.readouterr().out

    def test_json_format(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, dirty=True)
        monkeypatch.chdir(tmp_path)
        assert main(["check", "pkg", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        rules = {f["rule"] for f in document["new"]}
        assert {"no-bare-except", "no-wallclock-duration"} <= rules

    def test_syntax_error_becomes_a_finding(self, tmp_path, monkeypatch, capsys):
        package = write_tree(tmp_path)
        (package / "broken.py").write_text("def oops(:\n")
        monkeypatch.chdir(tmp_path)
        assert main(["check", "pkg"]) == 1
        assert "syntax-error" in capsys.readouterr().out


class TestBaselineCommand:
    def test_regeneration_preserves_reasons(self, tmp_path, monkeypatch, capsys):
        write_tree(tmp_path, dirty=True)
        monkeypatch.chdir(tmp_path)
        assert main(["baseline", "pkg", "-o", "frozen.json"]) == 0
        document = json.loads((tmp_path / "frozen.json").read_text())
        for entry in document["entries"]:
            if entry["rule"] == "no-bare-except":
                entry["reason"] = "kept on purpose"
        (tmp_path / "frozen.json").write_text(json.dumps(document))
        assert main(["baseline", "pkg", "-o", "frozen.json"]) == 0
        reloaded = json.loads((tmp_path / "frozen.json").read_text())
        reasons = {e["rule"]: e["reason"] for e in reloaded["entries"]}
        assert reasons["no-bare-except"] == "kept on purpose"


class TestOtherCommands:
    def test_rules_lists_every_rule(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "no-deprecated-api",
            "no-wallclock-duration",
            "no-direct-sleep-random",
            "require-slots",
            "no-unbounded-queue",
            "no-bare-except",
            "no-swallowed-fault",
            "lock-discipline",
        ):
            assert rule_id in out

    def test_report_locks(self, tmp_path, monkeypatch, capsys):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "locks.py").write_text((FIXTURES / "locks_seeded.py").read_text())
        monkeypatch.chdir(tmp_path)
        assert main(["report-locks", "pkg"]) == 0
        out = capsys.readouterr().out
        assert "class SeededRace" in out
        assert "lock-using class(es) analyzed" in out
