"""Engine mechanics: suppression, walking, the finding model."""

from pathlib import Path

from repro.analysis import check_paths, check_source
from repro.analysis.engine import iter_python_files
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import NoBareExcept, NoWallclockDuration

FIXTURES = Path(__file__).parent / "fixtures"

BARE = "try:\n    pass\nexcept:\n    pass\n"


class TestSuppression:
    def test_inline_disable_silences_the_named_rule(self):
        source = BARE.replace("except:", "except:  # repro: disable=no-bare-except")
        assert check_source(source, path="x.py", rules=[NoBareExcept()]) == []

    def test_inline_disable_all(self):
        source = BARE.replace("except:", "except:  # repro: disable=all")
        assert check_source(source, path="x.py", rules=[NoBareExcept()]) == []

    def test_other_rule_ids_do_not_silence(self):
        source = BARE.replace("except:", "except:  # repro: disable=require-slots")
        assert len(check_source(source, path="x.py", rules=[NoBareExcept()])) == 1

    def test_file_pragma_silences_whole_file(self):
        source = "# repro: disable-file=no-bare-except\n" + BARE
        assert check_source(source, path="x.py", rules=[NoBareExcept()]) == []

    def test_file_pragma_must_sit_near_the_top(self):
        source = BARE + ("\n" * 12) + "# repro: disable-file=no-bare-except\n"
        assert len(check_source(source, path="x.py", rules=[NoBareExcept()])) == 1


class TestWalking:
    def test_fixtures_directory_is_never_walked_implicitly(self):
        files = list(iter_python_files([Path(__file__).parent], root=Path.cwd()))
        assert files, "the analysis test dir itself must be walked"
        assert not any("fixtures" in f.parts for f in files)

    def test_explicit_fixture_files_are_always_scanned(self):
        findings = check_paths(
            [FIXTURES / "bare_except_pos.py"], [NoBareExcept()], root=FIXTURES
        )
        assert [f.rule_id for f in findings] == ["no-bare-except"]

    def test_non_python_files_are_ignored(self, tmp_path):
        (tmp_path / "data.json").write_text("{}")
        (tmp_path / "mod.py").write_text("import time\nstart = time.time()\n")
        findings = check_paths([tmp_path], [NoWallclockDuration()], root=tmp_path)
        assert [f.path for f in findings] == ["mod.py"]


class TestFindingModel:
    def test_fingerprint_excludes_the_line(self):
        a = Finding("r", "error", "a.py", 1, "m")
        b = Finding("r", "error", "a.py", 99, "m")
        assert a.fingerprint == b.fingerprint

    def test_format_and_hints(self):
        f = Finding("r", "warning", "a.py", 7, "msg", fix_hint="do this")
        assert f.format() == "a.py:7: [warning] r: msg"
        assert "hint: do this" in f.format(hints=True)

    def test_sort_order(self):
        findings = [
            Finding("z-rule", "warning", "b.py", 1, "m"),
            Finding("a-rule", "error", "b.py", 1, "m"),
            Finding("r", "error", "a.py", 9, "m"),
        ]
        ordered = sort_findings(findings)
        assert [f.path for f in ordered] == ["a.py", "b.py", "b.py"]
        # same path/line: errors sort before warnings
        assert ordered[1].severity == "error"
