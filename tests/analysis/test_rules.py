"""Golden-finding tests: one positive and one negative fixture per rule.

The corpus lives in ``fixtures/`` (excluded from implicit directory
walks); tests hand the engine explicit file paths with ``root`` set to
the corpus directory, so fixture paths carry no ``tests`` segment and
rules that exempt ``tests`` still apply.
"""

from pathlib import Path

import pytest

from repro.analysis import check_paths, default_rules, lint_rules

FIXTURES = Path(__file__).parent / "fixtures"


def corpus_findings(name: str, rules=None):
    """Run the engine over one fixture file, anchored at the corpus."""
    return check_paths(
        [FIXTURES / name], rules if rules is not None else lint_rules(), root=FIXTURES
    )


class TestPositiveFixtures:
    def test_no_deprecated_api(self):
        findings = corpus_findings("deprecated_pos.py")
        assert {f.rule_id for f in findings} == {"no-deprecated-api"}
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 8
        assert "repro.errors.SoapFault" in messages
        assert "SoapFaultException" in messages
        assert "repro.xmlcore.parser.parse" in messages
        assert "Envelope.from_string_pull" in messages
        assert "invoke_all(timeout=...)" in messages
        assert all(f.severity == "error" for f in findings)

    def test_no_wallclock_duration(self):
        findings = corpus_findings("wallclock_pos.py")
        assert {f.rule_id for f in findings} == {"no-wallclock-duration"}
        assert len(findings) == 3  # one import + two time.time() calls

    def test_no_direct_sleep_random(self):
        findings = corpus_findings("sleep_pos.py")
        assert {f.rule_id for f in findings} == {"no-direct-sleep-random"}
        messages = "\n".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "random.uniform" in messages
        assert len(findings) == 4  # two imports + sleep + uniform

    def test_require_slots(self):
        findings = corpus_findings("slots_pos.py")
        assert [f.rule_id for f in findings] == ["require-slots"]
        assert "Span" in findings[0].message

    def test_no_unbounded_queue(self):
        findings = corpus_findings("queue_pos.py")
        assert {f.rule_id for f in findings} == {"no-unbounded-queue"}
        assert {f.message.split("(")[0] for f in findings} == {"ThreadPool", "Stage"}

    def test_no_unbounded_cache(self):
        findings = corpus_findings("cache_pos.py")
        assert {f.rule_id for f in findings} == {"no-unbounded-cache"}
        messages = {f.message for f in findings}
        assert any("UnboundedLookup._result_cache" in m for m in messages)
        assert any("UnboundedLookup._name_memo" in m for m in messages)
        assert any("UnboundedTemplates._templates" in m for m in messages)
        assert len(findings) == 3

    def test_no_unbounded_span_store(self):
        findings = corpus_findings("span_store_pos.py")
        assert {f.rule_id for f in findings} == {"no-unbounded-span-store"}
        messages = {f.message for f in findings}
        assert any("UnboundedSpanRing._spans" in m for m in messages)
        assert any("UnboundedSpanRing._trace_index" in m for m in messages)
        assert any("UnboundedTraceLog.completed_traces" in m for m in messages)
        assert len(findings) == 3

    def test_no_bare_except(self):
        findings = corpus_findings("bare_except_pos.py")
        assert [f.rule_id for f in findings] == ["no-bare-except"]

    def test_no_swallowed_fault(self):
        findings = corpus_findings("server/swallow_pos.py")
        assert {f.rule_id for f in findings} == {"no-swallowed-fault"}
        assert len(findings) == 2  # pass body + docstring-only body
        assert all(f.path == "server/swallow_pos.py" for f in findings)

    def test_no_blocking_call_on_event_loop(self):
        from repro.analysis.rules import NoBlockingCallOnEventLoop

        # run the loop rule alone: the corpus deliberately also trips
        # no-direct-sleep-random, which is not under test here
        findings = corpus_findings(
            "loop_pos/evented.py", rules=[NoBlockingCallOnEventLoop()]
        )
        assert {f.rule_id for f in findings} == {"no-blocking-call-on-event-loop"}
        messages = "\n".join(f.message for f in findings)
        assert ".recv()" in messages
        assert ".sendall()" in messages
        assert ".send()" in messages
        assert ".accept()" in messages
        assert "time.sleep()" in messages
        assert ".acquire() without a timeout" in messages
        assert ".submit(...).result()" in messages
        assert ".select() with no timeout outside the main loop body" in messages
        # the no-arg select() inside _run_loop itself stays legal:
        # waiting is the loop body's job
        assert "(in _wait_for_events)" in messages
        # recv + sendall + sleep + acquire + submit().result() + send
        # + accept + helper select()
        assert len(findings) == 8
        assert all(f.severity == "error" for f in findings)

    def test_no_wallclock_in_hedge(self):
        from repro.analysis.rules import NoWallclockInHedge

        # run the hedge rule alone: the corpus deliberately also trips
        # no-direct-sleep-random, which is not under test here
        findings = corpus_findings(
            "hedge_pos/hedge.py", rules=[NoWallclockInHedge()]
        )
        assert {f.rule_id for f in findings} == {"no-wallclock-in-hedge"}
        messages = "\n".join(f.message for f in findings)
        assert "from time import monotonic" in messages
        assert "time.time()" in messages
        assert "time.sleep()" in messages
        assert "time.monotonic()" in messages
        assert "time.perf_counter()" in messages
        # one from-import + four inline calls
        assert len(findings) == 5
        assert all(f.severity == "error" for f in findings)


@pytest.mark.parametrize(
    "name",
    [
        "deprecated_neg.py",
        "wallclock_neg.py",
        "sleep_neg.py",
        "slots_neg.py",
        "queue_neg.py",
        "cache_neg.py",
        "span_store_neg.py",
        "bare_except_neg.py",
        "server/swallow_neg.py",
        "loop_neg/evented.py",
        "hedge_neg/hedge.py",
    ],
)
def test_negative_fixture_is_clean(name):
    assert corpus_findings(name) == []


class TestScoping:
    def test_swallowed_fault_only_patrols_dispatch_paths(self):
        # The same source outside a server/http/core path is not flagged.
        source = (FIXTURES / "server" / "swallow_pos.py").read_text()
        from repro.analysis import check_source
        from repro.analysis.rules import NoSwallowedFault

        assert check_source(source, path="apps/helper.py", rules=[NoSwallowedFault()]) == []
        assert check_source(source, path="server/x.py", rules=[NoSwallowedFault()]) != []

    def test_sleep_rule_exempts_the_injected_seams(self):
        source = (FIXTURES / "sleep_pos.py").read_text()
        from repro.analysis import check_source
        from repro.analysis.rules import NoDirectSleepRandom

        rule = [NoDirectSleepRandom()]
        assert check_source(source, path="resilience/policy.py", rules=rule) == []
        assert check_source(source, path="transport/chaos.py", rules=rule) == []
        assert check_source(source, path="apps/echo.py", rules=rule) != []

    def test_loop_rule_only_patrols_the_evented_module(self):
        # The same blocking calls are legal anywhere but evented.py —
        # the threaded backend blocks by design.
        source = (FIXTURES / "loop_pos" / "evented.py").read_text()
        from repro.analysis import check_source
        from repro.analysis.rules import NoBlockingCallOnEventLoop

        rule = [NoBlockingCallOnEventLoop()]
        assert check_source(source, path="http/server.py", rules=rule) == []
        assert check_source(source, path="http/evented.py", rules=rule) != []

    def test_hedge_rule_only_patrols_hedge_and_limiter_modules(self):
        # The same inline clock reads are legal elsewhere (subject only
        # to the general wallclock/sleep rules, not this stricter one).
        source = (FIXTURES / "hedge_pos" / "hedge.py").read_text()
        from repro.analysis import check_source
        from repro.analysis.rules import NoWallclockInHedge

        rule = [NoWallclockInHedge()]
        assert check_source(source, path="client/proxy.py", rules=rule) == []
        assert check_source(source, path="resilience/hedge.py", rules=rule) != []
        assert check_source(source, path="resilience/limiter.py", rules=rule) != []

    def test_suppression_pragmas_silence_everything(self):
        assert corpus_findings("suppressed.py", rules=default_rules()) == []
