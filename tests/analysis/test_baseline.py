"""Baseline semantics: frozen vs new vs stale, reason preservation."""

from repro.analysis.baseline import (
    BaselineEntry,
    compare,
    entries_from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import Finding


def finding(rule="no-bare-except", path="a.py", line=3, message="bare except:"):
    return Finding(rule_id=rule, severity="error", path=path, line=line, message=message)


class TestCompare:
    def test_baselined_findings_do_not_fail(self):
        f = finding()
        entry = BaselineEntry(rule=f.rule_id, path=f.path, message=f.message)
        result = compare([f], [entry])
        assert result.ok
        assert result.baselined == [f]
        assert result.new == []

    def test_unknown_finding_is_new(self):
        result = compare([finding()], [])
        assert not result.ok
        assert len(result.new) == 1

    def test_line_drift_does_not_invalidate_the_baseline(self):
        entry = BaselineEntry(rule="no-bare-except", path="a.py", message="bare except:")
        drifted = finding(line=99)  # same violation, new line number
        assert compare([drifted], [entry]).ok

    def test_count_allowance_caps_duplicates(self):
        entry = BaselineEntry(
            rule="no-bare-except", path="a.py", message="bare except:", count=2
        )
        two = [finding(line=1), finding(line=2)]
        three = two + [finding(line=3)]
        assert compare(two, [entry]).ok
        result = compare(three, [entry])
        assert not result.ok
        assert len(result.new) == 1  # only the overflow fails

    def test_stale_entries_are_reported_but_never_fail(self):
        entry = BaselineEntry(rule="gone", path="old.py", message="fixed long ago")
        result = compare([], [entry])
        assert result.ok
        assert result.stale == [entry]


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        entries = [
            BaselineEntry(rule="r", path="b.py", message="m2", count=3, reason="why"),
            BaselineEntry(rule="r", path="a.py", message="m1"),
        ]
        target = tmp_path / "baseline.json"
        save_baseline(entries, target)
        loaded = load_baseline(target)
        # sorted for stable diffs: path before rule before message
        assert [e.path for e in loaded] == ["a.py", "b.py"]
        assert loaded[1].count == 3
        assert loaded[1].reason == "why"

    def test_malformed_baseline_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("[1, 2, 3]")
        try:
            load_baseline(target)
        except ValueError as exc:
            assert "entries" in str(exc)
        else:
            raise AssertionError("expected ValueError")

    def test_regeneration_preserves_reasons(self):
        previous = [
            BaselineEntry(
                rule="no-bare-except",
                path="a.py",
                message="bare except:",
                reason="justified: legacy shim",
            )
        ]
        entries = entries_from_findings(
            [finding(), finding(path="b.py")], previous=previous
        )
        by_path = {e.path: e for e in entries}
        assert by_path["a.py"].reason == "justified: legacy shim"
        assert by_path["b.py"].reason == ""

    def test_regeneration_counts_duplicates(self):
        entries = entries_from_findings([finding(line=1), finding(line=2)])
        assert len(entries) == 1
        assert entries[0].count == 2
