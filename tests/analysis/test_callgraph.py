"""Unit tests for whole-program call-graph construction.

Graphs here are built from in-memory sources via :class:`ModuleSource`
so each test states its whole program in a few lines.  The fixture
corpora under ``fixtures/callgraph/`` exercise the same machinery end
to end through the analyses (see ``test_interprocedural.py``).
"""

import ast

from repro.analysis.callgraph import (
    KIND_CALL,
    KIND_REF,
    ModuleSource,
    build_call_graph,
    chain_from,
    iter_reachable,
    module_name_for_path,
)


def graph_of(**modules):
    """Build a graph from ``{"pkg/mod.py": source}`` keyword paths
    (keyword names use ``__`` for ``/``)."""
    sources = []
    for key, source in modules.items():
        path = key.replace("__", "/") + ".py"
        sources.append(ModuleSource(path=path, tree=ast.parse(source)))
    return build_call_graph(sources)


def edge_pairs(graph, kinds=(KIND_CALL,)):
    return {
        (e.caller, e.callee)
        for e in graph.edges
        if e.kind in set(kinds)
    }


class TestModuleNames:
    def test_src_prefix_is_stripped(self):
        assert (
            module_name_for_path("src/repro/http/evented.py")
            == "repro.http.evented"
        )

    def test_non_src_paths_keep_their_shape(self):
        assert (
            module_name_for_path("callgraph/loop_pos/server.py")
            == "callgraph.loop_pos.server"
        )

    def test_package_init_names_the_package(self):
        assert module_name_for_path("src/repro/obs/__init__.py") == "repro.obs"


class TestResolution:
    def test_module_local_call(self):
        graph = graph_of(m="def f():\n    g()\ndef g():\n    pass\n")
        assert ("m.f", "m.g") in edge_pairs(graph)

    def test_from_import_call(self):
        graph = graph_of(
            a="def helper():\n    pass\n",
            b="from a import helper\ndef f():\n    helper()\n",
        )
        assert ("b.f", "a.helper") in edge_pairs(graph)

    def test_module_import_attribute_call(self):
        graph = graph_of(
            a="def helper():\n    pass\n",
            b="import a\ndef f():\n    a.helper()\n",
        )
        assert ("b.f", "a.helper") in edge_pairs(graph)

    def test_sibling_module_fallback_for_package_relative_imports(self):
        # fixture corpora import each other without the package prefix;
        # the resolver falls back to siblings of the importing module
        graph = graph_of(
            pkg__util="def helper():\n    pass\n",
            pkg__main="from util import helper\ndef f():\n    helper()\n",
        )
        assert ("pkg.main.f", "pkg.util.helper") in edge_pairs(graph)

    def test_self_method_dispatch(self):
        graph = graph_of(
            m="class C:\n    def f(self):\n        self.g()\n"
            "    def g(self):\n        pass\n"
        )
        assert ("m.C.f", "m.C.g") in edge_pairs(graph)

    def test_inherited_method_dispatch(self):
        graph = graph_of(
            m="class Base:\n    def g(self):\n        pass\n"
            "class C(Base):\n    def f(self):\n        self.g()\n"
        )
        assert ("m.C.f", "m.Base.g") in edge_pairs(graph)

    def test_constructor_edges_into_init(self):
        graph = graph_of(
            m="class C:\n    def __init__(self):\n        pass\n"
            "def f():\n    C()\n"
        )
        assert ("m.f", "m.C.__init__") in edge_pairs(graph)

    def test_self_attr_instance_binding(self):
        # self._stage = Stage() in one method types self._stage.submit()
        # everywhere in the class
        graph = graph_of(
            m="class Stage:\n    def submit(self, fn):\n        pass\n"
            "class S:\n"
            "    def start(self):\n        self._stage = Stage()\n"
            "    def go(self):\n        self._stage.submit(None)\n"
        )
        assert ("m.S.go", "m.Stage.submit") in edge_pairs(graph)

    def test_parameter_annotation_types_the_receiver(self):
        graph = graph_of(
            m="class Conn:\n    def flush(self):\n        pass\n"
            "def f(conn: Conn):\n    conn.flush()\n"
        )
        assert ("m.f", "m.Conn.flush") in edge_pairs(graph)

    def test_return_annotation_types_the_result(self):
        graph = graph_of(
            m="class Slot:\n    def fire(self):\n        pass\n"
            "class S:\n"
            "    def _new_slot(self) -> Slot:\n        return Slot()\n"
            "    def go(self):\n        slot = self._new_slot()\n"
            "        slot.fire()\n"
        )
        assert ("m.S.go", "m.Slot.fire") in edge_pairs(graph)

    def test_local_assignment_alias_to_bound_method(self):
        graph = graph_of(
            m="class C:\n"
            "    def f(self):\n        h = self.g\n        h()\n"
            "    def g(self):\n        pass\n"
        )
        assert ("m.C.f", "m.C.g") in edge_pairs(graph)

    def test_function_reference_argument_is_a_ref_edge(self):
        graph = graph_of(
            m="class Stage:\n    def submit(self, fn):\n        pass\n"
            "class S:\n"
            "    def start(self):\n        self._stage = Stage()\n"
            "    def go(self):\n        self._stage.submit(self.work)\n"
            "    def work(self):\n        pass\n"
        )
        assert ("m.S.go", "m.S.work") in edge_pairs(graph, kinds=(KIND_REF,))
        assert ("m.S.go", "m.S.work") not in edge_pairs(graph, kinds=(KIND_CALL,))

    def test_property_load_is_a_call_edge(self):
        graph = graph_of(
            m="class Conn:\n"
            "    @property\n"
            "    def finished(self):\n        return True\n"
            "def f(conn: Conn):\n    return conn.finished\n"
        )
        assert ("m.f", "m.Conn.finished") in edge_pairs(graph)

    def test_super_call_resolves_to_first_base(self):
        graph = graph_of(
            m="class Base:\n    def close(self):\n        pass\n"
            "class C(Base):\n"
            "    def close(self):\n        super().close()\n"
        )
        assert ("m.C.close", "m.Base.close") in edge_pairs(graph)

    def test_nested_function_is_its_own_node(self):
        graph = graph_of(
            m="def outer():\n"
            "    def inner():\n        pass\n"
            "    inner()\n"
        )
        assert "m.outer.inner" in graph.functions
        assert ("m.outer", "m.outer.inner") in edge_pairs(graph)

    def test_unique_name_duck_dispatch(self):
        # exactly one project class defines the method name -> resolved
        # even with an untyped receiver
        graph = graph_of(
            m="class Sketch:\n    def observe_latency(self, v):\n        pass\n"
            "def f(sink):\n    sink.observe_latency(1)\n"
        )
        assert ("m.f", "m.Sketch.observe_latency") in edge_pairs(graph)

    def test_ambiguous_duck_dispatch_stays_unresolved(self):
        graph = graph_of(
            m="class A:\n    def observe_latency(self, v):\n        pass\n"
            "class B:\n    def observe_latency(self, v):\n        pass\n"
            "def f(sink):\n    sink.observe_latency(1)\n"
        )
        assert not edge_pairs(graph)


class TestGraphMeasures:
    def test_scc_finds_mutual_recursion(self):
        graph = graph_of(
            m="def a():\n    b()\ndef b():\n    a()\ndef c():\n    a()\n"
        )
        cycles = [set(c) for c in graph.sccs() if len(c) > 1]
        assert cycles == [{"m.a", "m.b"}]

    def test_stats_counts(self):
        graph = graph_of(
            m="def a():\n    b()\ndef b():\n    a()\ndef c():\n    a()\n"
        )
        stats = graph.stats()
        assert stats["functions"] == 3
        assert stats["call_edges"] == 3
        assert stats["cyclic_sccs"] == 1
        assert stats["largest_cycle"] == 2

    def test_reachability_and_chain_terminate_on_cycles(self):
        graph = graph_of(
            m="def a():\n    b()\ndef b():\n    a()\n    c()\ndef c():\n    pass\n"
        )
        parents = iter_reachable(graph, ["m.a"])
        assert set(parents) == {"m.a", "m.b", "m.c"}
        assert chain_from(parents, "m.c") == ["m.a", "m.b", "m.c"]

    def test_barriers_stop_traversal(self):
        graph = graph_of(
            m="def a():\n    b()\ndef b():\n    c()\ndef c():\n    pass\n"
        )
        parents = iter_reachable(graph, ["m.a"], barriers={"m.b"})
        assert set(parents) == {"m.a", "m.b"}
