"""The lock-discipline analyzer against the seeded-race fixture."""

import ast
from pathlib import Path

from repro.analysis import analyze_module, check_source, format_lock_report
from repro.analysis.locks import CALLER_HELD, LockDiscipline, analyze_class

FIXTURES = Path(__file__).parent / "fixtures"
SOURCE = (FIXTURES / "locks_seeded.py").read_text()


def fixture_findings():
    # A path without a 'tests' segment, so the rule's exemption stays out
    # of the way.
    return check_source(SOURCE, path="concurrency/seeded.py", rules=[LockDiscipline()])


def report_for(name):
    tree = ast.parse(SOURCE)
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return analyze_class(node, "seeded.py")
    raise AssertionError(f"no class {name} in fixture")


class TestSeededFindings:
    def test_mixed_write_race_is_reported(self):
        messages = [f.message for f in fixture_findings()]
        assert any(
            "SeededRace._items" in m and "potential race" in m for m in messages
        ), messages

    def test_unlocked_read_is_reported(self):
        messages = [f.message for f in fixture_findings()]
        assert any(
            "SeededRace._items" in m and "read without it in peek" in m
            for m in messages
        ), messages

    def test_lock_order_inversion_is_reported(self):
        messages = [f.message for f in fixture_findings()]
        assert any(
            "Inverted: lock-order inversion" in m
            and "_io_lock" in m
            and "_table_lock" in m
            for m in messages
        ), messages

    def test_transitive_self_deadlock_is_reported(self):
        # outer() holds _lock and calls inner(), which re-acquires it.
        messages = [f.message for f in fixture_findings()]
        assert any(
            "SelfDeadlock" in m and "re-acquire" in m for m in messages
        ), messages

    def test_clean_classes_stay_silent(self):
        messages = [f.message for f in fixture_findings()]
        assert not any("Disciplined" in m for m in messages)
        assert not any("CallerHeld" in m for m in messages)


class TestAnalyzeClass:
    def test_guarded_attrs_and_mixed_writes(self):
        report = report_for("SeededRace")
        assert report.locks == {"_lock"}
        assert "_items" in report.guarded_attrs()
        assert [a.method for a in report.mixed_writes("_items")] == ["drop_all"]
        assert [a.method for a in report.unlocked_reads("_items")] == ["peek"]

    def test_init_is_exempt(self):
        # Construction writes happen-before publication; none are recorded.
        report = report_for("Disciplined")
        assert all(
            access.method != "__init__"
            for accesses in report.accesses.values()
            for access in accesses
        )

    def test_locked_suffix_means_caller_holds_the_lock(self):
        report = report_for("CallerHeld")
        writes = [a for a in report.accesses["_pending"] if a.kind == "write"]
        assert writes and all(a.lock == CALLER_HELD for a in writes)
        assert report.mixed_writes("_pending") == []

    def test_order_pairs_record_nesting(self):
        report = report_for("Inverted")
        assert ("_table_lock", "_io_lock") in report.order_pairs
        assert ("_io_lock", "_table_lock") in report.order_pairs


class TestModuleReport:
    def test_analyze_module_covers_every_lock_user(self):
        reports = analyze_module(ast.parse(SOURCE), "seeded.py")
        names = {r.name for r in reports}
        assert {"SeededRace", "Inverted", "SelfDeadlock", "Disciplined", "CallerHeld"} <= names

    def test_format_lock_report_renders_status(self):
        reports = analyze_module(ast.parse(SOURCE), "seeded.py")
        text = format_lock_report(reports)
        assert "class SeededRace" in text
        assert "MIXED WRITES" in text
        assert "nesting:" in text

    def test_concurrency_modules_are_analyzable(self):
        # The five concurrency modules named by the issue all produce
        # lock reports (the analyzer actually sees their locks).
        import repro

        src_root = Path(repro.__file__).parent
        for relative in (
            "server/threadpool.py",
            "server/container.py",
            "server/service.py",
            "diagnostics.py",
            "obs/registry.py",
            "obs/trace.py",
        ):
            tree = ast.parse((src_root / relative).read_text())
            reports = analyze_module(tree, relative)
            assert any(r.locks for r in reports), f"{relative}: no locks found"
        # stage.py owns no locks itself (queueing lives in ThreadPool);
        # the analyzer still walks it without complaint.
        analyze_module(ast.parse((src_root / "server/stage.py").read_text()), "server/stage.py")
