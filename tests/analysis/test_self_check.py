"""The repo checks itself: the committed baseline gates ``src`` and ``tests``.

This is the same invocation CI runs.  If it fails here, either a new
violation crept in (fix it or baseline it with a reason) or the
baseline went stale against a fixed finding (regenerate it).
"""

from pathlib import Path

import pytest

from repro.analysis import main
from repro.analysis.baseline import load_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "analysis_baseline.json"


@pytest.fixture()
def at_repo_root(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)


def test_src_and_tests_are_clean_against_the_baseline(at_repo_root, capsys):
    exit_code = main(["check", "src", "tests", "--baseline", str(BASELINE)])
    out = capsys.readouterr().out
    assert exit_code == 0, f"repo no longer passes its own analysis gate:\n{out}"
    assert "analysis clean" in out


def test_every_baseline_entry_carries_a_reason(at_repo_root):
    entries = load_baseline(BASELINE)
    assert entries, "baseline unexpectedly empty"
    unexplained = [e.message for e in entries if not e.reason.strip()]
    assert not unexplained, (
        "baseline entries need a human reason explaining why the finding "
        f"is tolerated: {unexplained}"
    )


def test_a_seeded_violation_fails_the_gate(at_repo_root, capsys):
    # The CI-failure path: point the same gate at a fixture that contains
    # violations the baseline does not know about.
    exit_code = main(
        [
            "check",
            "tests/analysis/fixtures/deprecated_pos.py",
            "--baseline",
            str(BASELINE),
        ]
    )
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "no-deprecated-api" in out


def test_no_stale_baseline_entries(at_repo_root, capsys):
    main(["check", "src", "tests", "--baseline", str(BASELINE)])
    assert "stale" not in capsys.readouterr().out
