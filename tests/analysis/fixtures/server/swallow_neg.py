"""Negative fixture: broad catches that answer with a Fault slot."""


def dispatch(entries, invoke, fault_from):
    results = []
    for entry in entries:
        try:
            results.append(invoke(entry))
        except Exception as exc:
            results.append(fault_from(exc))
    return results


def narrow(entry, invoke):
    try:
        return invoke(entry)
    except KeyError:
        pass  # narrow catches may drop: the taxonomy stays visible
