"""Positive fixture (under a ``server/`` path part): swallowed faults."""


def dispatch(entries, invoke):
    results = []
    for entry in entries:
        try:
            results.append(invoke(entry))
        except Exception:
            pass
    return results


def dispatch_docstring_body(entry, invoke):
    try:
        return invoke(entry)
    except BaseException:
        """Even a docstring-only body is silent."""
