"""Negative fixture: bounded, version-cleared, or non-cache dicts."""

from collections import OrderedDict


class BoundedLru:
    def __init__(self, max_entries=128):
        self._entry_cache = OrderedDict()
        self._max_entries = max_entries

    def store(self, key, value):
        self._entry_cache[key] = value
        while len(self._entry_cache) > self._max_entries:
            self._entry_cache.popitem(last=False)


class EvictingMemo:
    def __init__(self):
        self._memo = {}

    def trim(self):
        self.evict_oldest()

    def evict_oldest(self):
        self._memo.clear()


class SuppressedMemo:
    def __init__(self):
        # cleared per document; lifetime-bounded by construction
        self._doc_memo = {}  # repro: disable=no-unbounded-cache


class NotACache:
    def __init__(self):
        self._handlers = {}
        self._routes = dict()
