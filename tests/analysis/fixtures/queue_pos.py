"""Positive fixture: pools and stages built with no backlog bound."""


def build(ThreadPool, Stage, handler):
    pool = ThreadPool(4, name="unbounded")
    stage = Stage("parse", handler, workers=2)
    return pool, stage
