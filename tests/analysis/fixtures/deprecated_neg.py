"""Negative fixture: the blessed replacements for every deprecated form."""

from repro.errors import SoapFaultError
from repro.soap.fault import SoapFault
from repro.xmlcore import parse


def use_everything(envelope_cls, invoker, policy_cls, document):
    tree = parse(document)
    envelope = envelope_cls.parse(document, server=True)
    client_view = envelope_cls.parse(document)
    results = invoker.invoke_all([], policy_cls(timeout=30))
    fault = SoapFault("Server", "boom")
    error = SoapFaultError(fault)
    return tree, envelope, client_view, results, error
