"""Positive fixture: wall-clock reads used where intervals belong."""

import time
from time import time as now  # the import form is flagged too


def measure(work):
    start = time.time()
    work()
    return time.time() - start
