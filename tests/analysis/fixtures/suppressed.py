"""Suppression fixture: every violation here carries a pragma.
# repro: disable-file=no-wallclock-duration
"""

import time


def stamp():
    return time.time()  # silenced by the file pragma above


def pace(interval):
    time.sleep(interval)  # repro: disable=no-direct-sleep-random — fixture


def run(step):
    try:
        step()
    except:  # repro: disable=all
        return None
