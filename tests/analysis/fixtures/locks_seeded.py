"""Lock-discipline fixture: one intentional race per detector.

``SeededRace`` mixes guarded and unguarded access to ``_items``;
``Inverted`` takes its two locks in both orders; ``SelfDeadlock``
re-acquires a non-reentrant lock through a helper; ``Disciplined`` and
``CallerHeld`` are the clean counterexamples.
"""

import threading


class SeededRace:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def put(self, item):
        with self._lock:
            self._items.append(item)

    def drop_all(self):
        self._items = []  # unguarded write: the seeded race

    def peek(self):
        return self._items  # unguarded read of a guarded attribute


class Inverted:
    def __init__(self):
        self._table_lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._table = {}

    def a_then_b(self, key, value):
        with self._table_lock:
            with self._io_lock:
                self._table[key] = value

    def b_then_a(self, key):
        with self._io_lock:
            with self._table_lock:
                return self._table.pop(key, None)


class SelfDeadlock:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            self._count += 1


class Disciplined:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def put(self, item):
        with self._lock:
            self._items.append(item)

    def drain(self):
        with self._lock:
            items, self._items = self._items, []
        return items


class CallerHeld:
    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def take(self):
        with self._lock:
            return self._drain_locked()

    def _drain_locked(self):
        items = self._pending
        self._pending = []
        return items
