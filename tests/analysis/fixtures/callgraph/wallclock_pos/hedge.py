"""Positive corpus: hedge code transitively reading the wall clock.

Named ``hedge.py`` because wallclock-taint patrols the
clock-disciplined files; the per-module rule sees no direct call here,
only the interprocedural pass does."""

from util import elapsed_since


class HedgeTimer:
    def should_fire(self, start):
        return elapsed_since(start) > 0.1  # tainted two calls down
