"""A helper that hides a wall-clock read one module and two calls away
from the hedge code."""

import time


def elapsed_since(start):
    return now_seconds() - start


def now_seconds():
    return time.time()  # the taint seed
