"""The injected-clock twin of loop_pos/util.py: same shape, no sink."""

import time


def flush_metrics(payload, clock=time.monotonic):
    return push_upstream(payload, clock)


def push_upstream(payload, clock=time.monotonic):
    stamp = clock()  # injected clock: a reference default, called here
    return (stamp, payload)
