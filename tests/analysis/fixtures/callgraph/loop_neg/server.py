"""Negative corpus: the same call shape as loop_pos, but every path
the loop can reach is non-blocking.  Also exercises a recursion cycle
(``_drain`` <-> ``_pump``, SCC handling must terminate), a vouched-for
``# repro: nonblocking`` barrier, and a worker-side sleep behind a
``ref`` edge."""

import time

from stage import Stage
from util import flush_metrics


class EventedHttpServer:
    def start(self):
        self._stage = Stage()
        self._completions = []

    def _run_loop(self):
        while True:
            self._connection_ready(None)
            self._drain(0)
            self._try_take(None)

    def _connection_ready(self, conn):
        handler = self._on_readable
        handler(conn)

    def _on_readable(self, conn):
        self._report(conn)
        self._stage.submit(self._handle_request, conn)

    def _report(self, conn):
        flush_metrics(conn)  # clock-injected helper: clean

    def _drain(self, depth):  # mutually recursive with _pump
        if self._completions:
            self._pump(depth)

    def _pump(self, depth):
        self._completions.pop()
        self._drain(depth + 1)

    def _try_take(self, queue):  # repro: nonblocking — emptiness checked first
        if queue is None or queue.empty():
            return None
        return queue.get()  # vouched: cannot block after the check

    def _handle_request(self, conn):
        time.sleep(0.1)  # worker thread: behind a ref edge, never the loop
        return conn
