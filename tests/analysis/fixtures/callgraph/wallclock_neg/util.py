"""The injected-clock twin: the helper takes the clock as a parameter
with a *reference* default — the sanctioned seam."""

import time


def elapsed_since(start, clock=time.monotonic):
    return clock() - start
