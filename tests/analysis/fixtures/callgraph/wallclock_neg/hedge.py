"""Negative corpus: the same hedge shape with clocks injected
throughout — wallclock-taint must stay silent."""

import time

from util import elapsed_since


class HedgeTimer:
    def __init__(self, clock=time.monotonic):
        self._clock = clock

    def should_fire(self, start):
        return elapsed_since(start, self._clock) > 0.1
