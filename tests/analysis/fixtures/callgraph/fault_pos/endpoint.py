"""Positive corpus: an exception raised two calls below the dispatch
entry with no classifying handler anywhere — it escapes ``__call__``
as a bare 500."""

from errors import DeepFaultError


class SoapEndpoint:
    def __call__(self, request):
        return self._dispatch(request)

    def _dispatch(self, request):
        return self._decode(request)

    def _decode(self, request):
        if not request:
            raise DeepFaultError("empty request body")
        return request
