"""Negative corpus: the same raise two calls down, but the dispatch
entry classifies it — catching the *base* class must absorb the
derived exception (hierarchy-aware handler matching)."""

from errors import DeepFaultError, MiniFaultError


class SoapEndpoint:
    def __call__(self, request):
        try:
            return self._dispatch(request)
        except MiniFaultError:  # absorbs DeepFaultError via the hierarchy
            return None

    def _dispatch(self, request):
        return self._decode(request)

    def _decode(self, request):
        if not request:
            raise DeepFaultError("empty request body")
        return request
