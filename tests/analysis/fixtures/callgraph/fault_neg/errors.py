"""A two-level exception hierarchy for the fault-flow corpus."""


class MiniFaultError(Exception):
    pass


class DeepFaultError(MiniFaultError):
    pass
