"""Helpers two modules away from the loop — the transitive case the
per-module rule cannot see."""

import time


def flush_metrics(payload):
    return push_upstream(payload)


def push_upstream(payload):
    time.sleep(0.05)  # the blocking sink, three calls from the loop
    return payload
