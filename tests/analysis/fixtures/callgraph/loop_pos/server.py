"""Positive corpus: a loop callback reaches ``time.sleep`` three calls
down, across a module boundary, through an assignment alias — exactly
what ``may-block-on-event-loop-transitive`` must catch.  The escaped
function reference handed to the stage sleeps too, but runs on a
worker thread and must NOT be flagged."""

import time

from stage import Stage
from util import flush_metrics


class EventedHttpServer:
    def start(self):
        self._stage = Stage()

    def _run_loop(self):
        while True:
            self._connection_ready(None)

    def _connection_ready(self, conn):
        handler = self._on_readable  # assignment alias to a bound method
        handler(conn)

    def _on_readable(self, conn):
        self._report(conn)
        self._stage.submit(self._handle_request, conn)  # ref escape: legal

    def _report(self, conn):
        flush_metrics(conn)  # blocks three calls down — the finding

    def _handle_request(self, conn):
        time.sleep(0.1)  # worker-side sleep: reached only via the ref
        return conn
