"""A minimal bounded stage: submit appends, never blocks."""


class Stage:
    def __init__(self):
        self._pending = []

    def submit(self, func, *args):
        self._pending.append((func, args))
