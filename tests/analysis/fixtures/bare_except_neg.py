"""Negative fixture: concrete exception types, BaseException when meant."""


def run(step):
    try:
        step()
    except ValueError:
        return None
    except BaseException:
        raise
