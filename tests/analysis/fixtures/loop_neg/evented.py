"""Negative corpus: the loop-safe idioms the rule must accept.

The file is named ``evented.py`` because no-blocking-call-on-event-loop
scopes itself to that filename.
"""


def _recv_nonblocking(sock, max_bytes=65536):
    try:
        return sock.recv(max_bytes)  # allowed: inside the named wrapper
    except BlockingIOError:
        return None


def _send_nonblocking(sock, data):
    try:
        return sock.send(data)  # allowed: inside the named wrapper
    except BlockingIOError:
        return 0


def _accept_nonblocking(sock):
    try:
        return sock.accept()  # allowed: inside the named wrapper
    except BlockingIOError:
        return None


def _run_loop(selector, stage, lock, completions):
    for key, _mask in selector.select(0.2):
        data = _recv_nonblocking(key.fileobj, 65536)
        if not data:
            continue
        if lock.acquire(timeout=0.5):  # bounded acquire is fine
            try:
                stage.submit(work, data)  # fire-and-forget: results come
            finally:  # back via the completion queue
                lock.release()
        while completions:
            _send_nonblocking(key.fileobj, completions.popleft())


def _drain_ready(selector):
    return selector.select(0.0)  # bounded select outside the loop is fine


def work(data):
    return data
