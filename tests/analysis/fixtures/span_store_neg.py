"""Negative fixture: bounded, delegated, or non-telemetry buffers."""

from collections import deque


class BoundedSpanRing:
    def __init__(self, capacity=1024):
        self._spans = deque(maxlen=capacity)


class EvictingTraceStore:
    def __init__(self, max_traces=256):
        self._traces = {}
        self._max_traces = max_traces

    def retain(self, record):
        self._traces[record.trace_id] = record
        while len(self._traces) > self._max_traces:
            self._traces.pop(next(iter(self._traces)))


class DelegatedSpanSlot:
    def __init__(self):
        # bounded by the owning store's max_spans_per_trace at ingest
        self.spans = []  # repro: disable=no-unbounded-span-store


class NotATelemetryBuffer:
    def __init__(self):
        self._handlers = []
        self._routes = {}
