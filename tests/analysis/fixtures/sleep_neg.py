"""Negative fixture: delay and randomness arrive through injected seams."""


def jittered_backoff(base, *, sleep, rng):
    sleep(base)
    return base * (1.0 + rng())
