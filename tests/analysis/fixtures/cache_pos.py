"""Positive fixture: dict-backed caches with no registered bound."""

from collections import OrderedDict


class UnboundedLookup:
    def __init__(self):
        self._result_cache = {}
        self._name_memo = dict()

    def lookup(self, key):
        return self._result_cache.get(key)


class UnboundedTemplates:
    def __init__(self):
        self._templates: dict[str, bytes] = OrderedDict()
