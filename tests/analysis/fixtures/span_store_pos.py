"""Positive fixture: span/trace buffers with no registered bound."""

from collections import deque


class UnboundedSpanRing:
    def __init__(self):
        self._spans = []
        self._trace_index = {}

    def ingest(self, span):
        self._spans.append(span)
        self._trace_index.setdefault(span.trace_id, []).append(span)


class UnboundedTraceLog:
    def __init__(self):
        self.completed_traces = deque()
