"""Positive fixture: a registered hot-path class without __slots__."""


class Span:
    def __init__(self, name):
        self.name = name
        self.events = []
