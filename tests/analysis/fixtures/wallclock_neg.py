"""Negative fixture: monotonic interval measurement."""

import time


def measure(work):
    start = time.monotonic()
    work()
    return time.monotonic() - start


def precise(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start
