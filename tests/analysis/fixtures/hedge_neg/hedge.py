"""Negative corpus: a hedge module that honours the injected-clock seam.

Referencing ``time.monotonic`` as a *default value* is the seam itself
and must not flag; only inline calls do.
"""

import time


class SeamedHedgeTimer:
    def __init__(self, clock=time.monotonic):
        self._clock = clock

    def trigger_elapsed(self, started):
        return self._clock() - started

    def stamp(self):
        return self._clock()
