"""Positive fixture: a bare except eating shutdown signals."""


def run(step):
    try:
        step()
    except:  # noqa: E722 — the violation under test
        return None
