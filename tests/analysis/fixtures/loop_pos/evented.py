"""Positive corpus: blocking calls inside an event-loop module.

The file is named ``evented.py`` because no-blocking-call-on-event-loop
scopes itself to that filename.
"""

import time


def _run_loop(selector, stage, lock):
    for key, _mask in selector.select():
        sock = key.fileobj
        data = sock.recv(65536)  # raw recv on the loop
        if not data:
            continue
        sock.sendall(data)  # raw sendall on the loop
        time.sleep(0.01)  # the selector timeout is the only legal wait
        lock.acquire()  # no timeout: parks the loop behind a worker
        reply = stage.submit(work, data).result()  # self-deadlock
        sock.send(reply)  # raw send on the loop


def _accept_ready(listener):
    conn, _peer = listener.accept()  # raw accept outside the wrapper
    return conn


def _wait_for_events(selector):
    # no-timeout select outside _run_loop: parks until an fd is ready,
    # so deadline sweeps and shutdown never get a turn
    return selector.select()


def work(data):
    return data
