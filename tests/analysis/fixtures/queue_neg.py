"""Negative fixture: bounded construction and explicit forwarding."""


def build(ThreadPool, Stage, handler, **kwargs):
    pool = ThreadPool(4, name="bounded", max_queue=128)
    stage = Stage("parse", handler, workers=2, max_queue=64)
    explicit_unbounded = ThreadPool(4, max_queue=None)  # a recorded decision
    forwarded = ThreadPool(4, **kwargs)  # the caller may carry the bound
    return pool, stage, explicit_unbounded, forwarded
