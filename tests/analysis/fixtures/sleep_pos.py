"""Positive fixture: direct sleeps and module-level randomness."""

import random
import time
from random import choice  # flagged import
from time import sleep  # flagged import


def jittered_backoff(base):
    time.sleep(base)
    return base * random.uniform(1.0, 2.0)
