"""Positive corpus: inline wall-clock use inside a hedge module.

The file is named ``hedge.py`` because no-wallclock-in-hedge scopes
itself to the hedge/limiter filenames.
"""

import time
from time import monotonic


class LeakyHedgeTimer:
    def trigger_elapsed(self, started):
        return time.time() - started  # inline wall-clock read

    def wait_for_trigger(self, trigger_s):
        time.sleep(trigger_s)  # sleeping instead of racing futures

    def stamp(self):
        return time.monotonic()  # inline monotonic read

    def measure(self):
        return time.perf_counter()  # inline perf_counter read
