"""Positive fixture: every no-deprecated-api trigger form.

Never imported — the analyzer reads it as text, so the imports need
not resolve.
"""

from repro.errors import SoapFault  # deprecated alias import
from repro.soap.fault import SoapFaultException  # deprecated import
from repro.xmlcore.parser import parse  # deprecated import


def use_everything(envelope_cls, invoker, errors, document):
    tree = parse(document)
    envelope = envelope_cls.from_string(document)  # deprecated alias
    pulled = envelope_cls.from_string_pull(document)  # deprecated alias
    served = envelope_cls.from_string_server(document)  # deprecated alias
    results = invoker.invoke_all([], timeout=30)  # retired kwarg
    fault = errors.SoapFault("boom")  # deprecated alias chain
    return tree, envelope, pulled, served, results, fault
