"""Negative fixture: every accepted way to slot a hot-path class."""

from dataclasses import dataclass
from typing import NamedTuple


class Span:
    __slots__ = ("name", "events")

    def __init__(self, name):
        self.name = name
        self.events = []


@dataclass(slots=True)
class TraceEvent:
    name: str
    offset: float


class StartTag(NamedTuple):
    name: str
    line: int


class NotRegistered:
    """Classes outside HOT_PATH_CLASSES may use a plain __dict__."""

    def __init__(self):
        self.anything = True
