"""Property-based tests: WSDL generation/parsing round-trips for any
service interface."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wsdl.generator import generate_wsdl_document
from repro.wsdl.model import WsdlDocumentModel, WsdlOperation, WsdlService
from repro.wsdl.parser import parse_wsdl

names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=12)
xsd_types = st.sampled_from(
    ["xsd:string", "xsd:int", "xsd:double", "xsd:boolean",
     "xsd:base64Binary", "SOAP-ENC:Array", "xsd:struct", "xsd:anyType"]
)


def operations():
    return st.builds(
        WsdlOperation,
        name=names,
        parameters=st.lists(st.tuples(names, xsd_types), max_size=5).map(tuple),
        returns=xsd_types,
        documentation=st.text(
            alphabet=string.ascii_letters + " .,", max_size=40
        ).map(str.strip),
    )


def services():
    return st.builds(
        WsdlService,
        name=names,
        namespace=names.map(lambda n: f"urn:prop:{n}"),
        operations=st.lists(operations(), min_size=1, max_size=6, unique_by=lambda o: o.name).map(tuple),
        location=st.sampled_from(["", "http://host:8080/svc"]),
        documentation=st.text(alphabet=string.ascii_letters + " ", max_size=30).map(str.strip),
    )


@settings(max_examples=50)
@given(services())
def test_wsdl_round_trip(service):
    document = generate_wsdl_document(WsdlDocumentModel(service))
    parsed = parse_wsdl(document).service
    assert parsed.name == service.name
    assert parsed.namespace == service.namespace
    assert parsed.location == service.location
    assert set(parsed.operation_names()) == set(service.operation_names())
    for op in service.operations:
        restored = parsed.operation(op.name)
        assert restored.parameters == op.parameters
        assert restored.returns == op.returns


@settings(max_examples=50)
@given(services())
def test_wsdl_document_is_wellformed_xml(service):
    from repro.xmlcore import parse

    document = generate_wsdl_document(WsdlDocumentModel(service))
    root = parse(document)
    assert root.local_name == "definitions"


@settings(max_examples=30)
@given(services())
def test_generation_is_deterministic(service):
    model = WsdlDocumentModel(service)
    assert generate_wsdl_document(model) == generate_wsdl_document(model)
