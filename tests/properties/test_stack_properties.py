"""End-to-end properties over the whole stack (in-proc transport).

The key invariant: the three client strategies of §4.1 are
*observationally equivalent* — for any batch of echo calls they return
the same results in the same order; only performance differs.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.invoker import Call, SerialInvoker, ThreadedInvoker
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackedInvoker
from repro.core.dispatcher import spi_server_handlers
from repro.server.handlers import HandlerChain
from repro.transport.inproc import InProcTransport
from repro.resilience.policy import CallPolicy
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

payload_lists = st.lists(
    st.text(
        alphabet=string.ascii_letters + string.digits + " <>&\"'中文",
        max_size=30,
    ),
    min_size=1,
    max_size=8,
)


@pytest.fixture(scope="module")
def stack():
    transport = InProcTransport()
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="prop-stack", chain=HandlerChain(spi_server_handlers())))
    address = server.start()
    proxy = build_proxy(ClientConfig(
        transport, address, namespace=ECHO_NS, service_name="EchoService",
        reuse_connections=True,
    ))
    yield proxy
    proxy.close()
    server.stop()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(payloads=payload_lists)
def test_strategies_observationally_equivalent(stack, payloads):
    calls = Call.many("echo", [{"payload": p} for p in payloads])
    serial = SerialInvoker(stack).invoke_all(calls, CallPolicy(timeout=60))
    threaded = ThreadedInvoker(stack).invoke_all(calls, CallPolicy(timeout=60))
    packed = PackedInvoker(stack).invoke_all(calls, CallPolicy(timeout=60))
    assert serial == payloads
    assert threaded == payloads
    assert packed == payloads


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(payloads=payload_lists)
def test_packed_batch_preserves_future_identity(stack, payloads):
    """Each future resolves to exactly its own call's payload, not a
    permutation — even for duplicate payloads."""
    from repro.core.batch import PackBatch

    batch = PackBatch(stack)
    futures = [batch.call("echo", payload=p) for p in payloads]
    batch.flush()
    for future, payload in zip(futures, payloads):
        assert future.result(timeout=30) == payload


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    payloads=payload_lists,
    bad_indices=st.sets(st.integers(min_value=0, max_value=7), max_size=4),
)
def test_fault_isolation_in_packed_batches(stack, payloads, bad_indices):
    """Invalid operations in a pack fault individually; valid siblings
    still succeed."""
    from repro.core.batch import PackBatch
    from repro.errors import SoapFaultError

    batch = PackBatch(stack)
    futures = []
    for index, payload in enumerate(payloads):
        if index in bad_indices:
            futures.append((batch.call("noSuchOperation", payload=payload), None))
        else:
            futures.append((batch.call("echo", payload=payload), payload))
    batch.flush()
    for future, expected in futures:
        if expected is None:
            assert isinstance(future.exception(timeout=30), SoapFaultError)
        else:
            assert future.result(timeout=30) == expected
