"""Property-based tests for the HTTP layer.

The central invariant: parsing is insensitive to how bytes are split
across recv() calls — any fragmentation of a valid message stream must
produce the same messages.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import ChannelReader, encode_chunked, read_request, read_response

token_chars = string.ascii_letters + string.digits + "-_"
header_names = st.text(alphabet=token_chars, min_size=1, max_size=12)
header_values = st.text(
    alphabet=string.ascii_letters + string.digits + " ;,=/.", max_size=20
).map(str.strip)
bodies = st.binary(max_size=500)


class FragmentedChannel:
    """Feeds a byte string in caller-chosen fragment sizes."""

    def __init__(self, data: bytes, cut_points: list[int]):
        self._fragments = []
        last = 0
        for cut in sorted(set(c % (len(data) + 1) for c in cut_points)):
            if cut > last:
                self._fragments.append(data[last:cut])
                last = cut
        if last < len(data):
            self._fragments.append(data[last:])

    def recv(self, max_bytes: int = 65536) -> bytes:
        if not self._fragments:
            return b""
        return self._fragments.pop(0)


@settings(max_examples=60)
@given(
    st.dictionaries(header_names, header_values, max_size=5),
    bodies,
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
)
def test_request_parse_is_fragmentation_invariant(headers, body, cuts):
    original = HttpRequest("POST", "/svc", Headers(headers), body)
    raw = original.to_bytes()
    parsed = read_request(ChannelReader(FragmentedChannel(raw, cuts)))
    assert parsed.method == "POST"
    assert parsed.path == "/svc"
    assert parsed.body == body
    for name, value in headers.items():
        assert parsed.headers.get(name) == original.headers.get(name)


@settings(max_examples=60)
@given(
    st.sampled_from([200, 204, 400, 404, 500, 503]),
    bodies,
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=12),
)
def test_response_parse_is_fragmentation_invariant(status, body, cuts):
    original = HttpResponse(status, Headers({"Content-Type": "text/xml"}), body)
    raw = original.to_bytes()
    parsed = read_response(ChannelReader(FragmentedChannel(raw, cuts)))
    assert parsed.status == status
    assert parsed.body == body


@settings(max_examples=60)
@given(bodies, st.integers(min_value=1, max_value=64))
def test_chunked_encoding_round_trip(body, chunk_size):
    encoded = encode_chunked(body, chunk_size=chunk_size)
    raw = (
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + encoded
    )
    parsed = read_response(ChannelReader(FragmentedChannel(raw, [7, 13, 99])))
    assert parsed.body == body


@settings(max_examples=60)
@given(
    st.lists(st.tuples(st.text(alphabet=token_chars, min_size=1, max_size=30), bodies), min_size=1, max_size=5),
    st.lists(st.integers(min_value=0, max_value=50_000), max_size=20),
)
def test_pipelined_requests_parse_in_order(messages, cuts):
    """Back-to-back keep-alive requests on one stream stay distinct."""
    raw = b"".join(
        HttpRequest("POST", f"/{path}", body=body).to_bytes()
        for path, body in messages
    )
    reader = ChannelReader(FragmentedChannel(raw, cuts))
    for path, body in messages:
        parsed = read_request(reader)
        assert parsed.path == f"/{path}"
        assert parsed.body == body


@settings(max_examples=40)
@given(st.dictionaries(header_names, header_values, max_size=8))
def test_headers_case_insensitivity(headers):
    h = Headers(headers)
    for name in headers:
        assert h.get(name.upper()) == h.get(name.lower()) == h.get(name)
        assert name.swapcase() in h
