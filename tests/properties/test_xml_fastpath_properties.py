"""Seeded-random property tests pinning the fast paths to the spec.

The lexer, escaper and writer all have bulk fast paths that replaced
character-by-character loops; these properties make sure they cannot
silently diverge from the behavior they replaced:

* escape/unescape round-trips over adversarial alphabets;
* ``serialize(parse(x)) == serialize(parse(serialize(parse(x))))``
  (parse∘serialize is idempotent — the writer's output is a fixed
  point of the parser);
* the pull cursor extracts exactly the entries the tree parser sees.
"""

import random
import string

import pytest

from repro.soap.constants import SOAP_ENV_NS
from repro.soap.envelope import Envelope, iter_body_entries
from repro.xmlcore.escape import escape_attribute, escape_text, unescape
from repro.xmlcore import parse
from repro.xmlcore.tree import Element
from repro.xmlcore.writer import serialize

# Alphabet skewed toward the characters the fast paths special-case.
_TEXT_ALPHABET = string.ascii_letters + string.digits + "&<>\"' \t\n;#中é🎉-._"
_NAME_ALPHABET = string.ascii_letters + string.digits + "._-"


def _random_text(rng: random.Random, max_len: int = 40) -> str:
    return "".join(
        rng.choice(_TEXT_ALPHABET) for _ in range(rng.randrange(max_len))
    )


def _random_name(rng: random.Random) -> str:
    return rng.choice(string.ascii_letters) + "".join(
        rng.choice(_NAME_ALPHABET) for _ in range(rng.randrange(8))
    )


def _random_element(rng: random.Random, depth: int = 0) -> Element:
    element = Element(_random_name(rng))
    for _ in range(rng.randrange(3)):
        element.set(_random_name(rng), _random_text(rng))
    for _ in range(rng.randrange(4) if depth < 3 else 0):
        if rng.random() < 0.5:
            text = _random_text(rng)
            if text:
                element.children.append(text)
        else:
            element.children.append(_random_element(rng, depth + 1))
    return element


@pytest.mark.parametrize("seed", range(20))
class TestEscapeRoundTrip:
    def test_text_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            value = _random_text(rng, max_len=200)
            assert unescape(escape_text(value)) == value

    def test_attribute_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(50):
            value = _random_text(rng, max_len=200)
            escaped = escape_attribute(value)
            assert '"' not in escaped and "<" not in escaped
            assert unescape(escaped) == value

    def test_escaped_text_parses_back(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            value = _random_text(rng, max_len=100)
            document = f"<r>{escape_text(value)}</r>"
            assert parse(document).text == value


@pytest.mark.parametrize("seed", range(20))
class TestSerializeParseFixedPoint:
    def test_parse_serialize_idempotent(self, seed):
        rng = random.Random(seed)
        tree = _random_element(rng)
        once = serialize(parse(serialize(tree)))
        twice = serialize(parse(once))
        assert once == twice

    def test_parse_recovers_structure(self, seed):
        rng = random.Random(seed)
        tree = _random_element(rng)
        assert parse(serialize(tree)).structurally_equal(tree)


@pytest.mark.parametrize("seed", range(10))
def test_pull_matches_tree_parse(seed):
    rng = random.Random(seed)
    envelope = Envelope()
    for _ in range(rng.randrange(1, 5)):
        envelope.add_body(_random_element(rng))
    document = envelope.to_string()

    pulled = list(iter_body_entries(document))
    full = Envelope.parse(document, server=True).body_entries
    assert len(pulled) == len(full)
    for a, b in zip(pulled, full):
        assert a.structurally_equal(b)


def test_unescape_rejects_bare_ampersand_fast_and_slow():
    # The bulk unescape must keep the strict error behavior of the
    # character loop it replaced.
    for bad in ("&", "a&", "&amp", "&;", "&bogus;", "&#xZZ;", "&#12x;", "&#0;"):
        with pytest.raises(Exception):
            unescape(bad)


def test_envelope_fixture_shape():
    # The canonical SOAP shape stays bit-stable through the fast path.
    envelope = Envelope()
    envelope.add_body(Element("{urn:op}echo"))
    document = envelope.to_string()
    assert SOAP_ENV_NS in document
    assert serialize(parse(document), declaration=True) == document
