"""Property-based tests: XML escaping, trees and parse/serialize round-trips."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlcore.escape import escape_attribute, escape_text, unescape
from repro.xmlcore import parse
from repro.xmlcore.tree import Element
from repro.xmlcore.trie import LinearTagMatcher, TagTrie
from repro.xmlcore.writer import serialize

# Text that is legal inside XML documents (no control chars except \t\n\r).
xml_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="".join(
            chr(c) for c in range(0x20) if c not in (0x9, 0xA, 0xD)
        ) + "￾￿",
    ),
    max_size=80,
)

ncnames = st.text(alphabet=string.ascii_letters, min_size=1, max_size=10)

# Attribute names: like ncnames, but never the literal ``xmlns`` — per
# XML Namespaces that spelling is a namespace *declaration*, not an
# attribute, so it legitimately does not round-trip as attribute data.
attr_names = ncnames.filter(lambda name: name != "xmlns")


@given(xml_text)
def test_escape_text_round_trip(value):
    assert unescape(escape_text(value)) == value


@given(xml_text)
def test_escape_attribute_round_trip(value):
    assert unescape(escape_attribute(value)) == value


@given(xml_text)
def test_escaped_text_has_no_raw_markup(value):
    escaped = escape_text(value)
    assert "<" not in escaped
    # every remaining '&' must start an entity
    i = 0
    while (i := escaped.find("&", i)) != -1:
        assert escaped.find(";", i) != -1
        i += 1


def _element_trees():
    return st.recursive(
        st.builds(
            _leaf,
            ncnames,
            st.dictionaries(attr_names, xml_text, max_size=3),
            xml_text,
        ),
        lambda children: st.builds(_branch, ncnames, st.lists(children, max_size=4)),
        max_leaves=12,
    )


def _leaf(tag, attrs, text):
    e = Element(tag, attrs)
    if text:
        e.append(text)
    return e


def _branch(tag, children):
    e = Element(tag)
    for c in children:
        e.append(c)
    return e


@settings(max_examples=60)
@given(_element_trees())
def test_serialize_parse_round_trip(tree):
    assert parse(serialize(tree)).structurally_equal(tree)


@settings(max_examples=60)
@given(_element_trees())
def test_serialize_is_deterministic(tree):
    assert serialize(tree) == serialize(tree)


@settings(max_examples=40)
@given(
    st.dictionaries(
        st.text(alphabet=string.ascii_letters + ":/._-", min_size=0, max_size=30),
        st.integers(),
        max_size=20,
    )
)
def test_trie_agrees_with_linear_matcher(entries):
    trie = TagTrie()
    linear = LinearTagMatcher()
    for key, value in entries.items():
        trie.insert(key, value)
        linear.insert(key, value)
    assert len(trie) == len(linear)
    for key, value in entries.items():
        assert trie.lookup(key) == value == linear.lookup(key)
    for probe in list(entries) + ["missing", "", "Envelope"]:
        assert (probe in trie) == (probe in linear)


@settings(max_examples=40)
@given(st.lists(st.text(alphabet="ab", max_size=6), max_size=12))
def test_trie_longest_prefix_is_sound(keys):
    trie = TagTrie()
    for k in keys:
        trie.insert(k, k)
    probe = "abab"
    match = trie.longest_prefix(probe)
    candidates = [k for k in keys if probe.startswith(k)]
    if candidates:
        assert match is not None
        assert match[0] == max(candidates, key=len)
    else:
        assert match is None
