"""Property-based tests for the transport layer: stream integrity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.inproc import InProcTransport


def channel_pair():
    transport = InProcTransport()
    listener = transport.listen("prop")
    client = transport.connect("prop")
    server = listener.accept(timeout=1)
    listener.close()
    return client, server


@settings(max_examples=50, deadline=None)
@given(
    sends=st.lists(st.binary(min_size=0, max_size=200), max_size=15),
    recv_sizes=st.lists(st.integers(min_value=1, max_value=97), min_size=1, max_size=10),
)
def test_byte_stream_integrity(sends, recv_sizes):
    """Whatever the send segmentation and recv sizes, the receiver sees
    exactly the concatenation of sent bytes, in order."""
    client, server = channel_pair()
    expected = b"".join(sends)
    for chunk in sends:
        client.sendall(chunk)
    client.close()
    received = bytearray()
    i = 0
    while True:
        size = recv_sizes[i % len(recv_sizes)]
        i += 1
        data = server.recv(size)
        if not data and len(received) >= len(expected):
            break
        received.extend(data)
        assert len(data) <= size
    assert bytes(received) == expected
    server.close()


@settings(max_examples=30, deadline=None)
@given(
    forward=st.lists(st.binary(min_size=1, max_size=50), min_size=1, max_size=5),
    backward=st.lists(st.binary(min_size=1, max_size=50), min_size=1, max_size=5),
)
def test_directions_are_independent(forward, backward):
    client, server = channel_pair()
    for chunk in forward:
        client.sendall(chunk)
    for chunk in backward:
        server.sendall(chunk)

    def drain(channel, total):
        out = bytearray()
        while len(out) < total:
            out.extend(channel.recv(64))
        return bytes(out)

    assert drain(server, sum(map(len, forward))) == b"".join(forward)
    assert drain(client, sum(map(len, backward))) == b"".join(backward)
    client.close()
    server.close()
