"""Property-based tests for SPI packing invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client.futures import InvocationFuture
from repro.core.assembler import ClientAssembler
from repro.core.dispatcher import ClientDispatcher
from repro.core.packformat import (
    build_parallel_method,
    correlate,
    unpack_parallel_method,
)
from repro.soap.constants import REQUEST_ID_ATTR
from repro.soap.envelope import Envelope
from repro.soap.serializer import serialize_rpc_request, serialize_rpc_response

NS = "urn:svc:prop"

payloads = st.lists(
    st.text(alphabet=string.printable.replace("\x0b", "").replace("\x0c", ""), max_size=40),
    min_size=1,
    max_size=20,
)


@settings(max_examples=50)
@given(payloads)
def test_pack_unpack_preserves_order_and_content(values):
    entries = [serialize_rpc_request(NS, "echo", {"payload": v}) for v in values]
    wrapper = build_parallel_method(entries)
    envelope = Envelope()
    envelope.add_body(wrapper)
    reparsed = Envelope.parse(envelope.to_bytes(), server=True)
    unpacked = unpack_parallel_method(reparsed.first_body_entry())
    assert len(unpacked) == len(values)
    assert [e.require("payload").text for e in unpacked] == values
    assert [e.get(REQUEST_ID_ATTR) for e in unpacked] == [f"r{i}" for i in range(len(values))]


@settings(max_examples=50)
@given(payloads)
def test_ids_unique_for_any_batch(values):
    entries = [serialize_rpc_request(NS, "echo", {"payload": v}) for v in values]
    wrapper = build_parallel_method(entries)
    ids = [e.get(REQUEST_ID_ATTR) for e in wrapper.element_children()]
    assert len(set(ids)) == len(ids)
    assert set(correlate(wrapper.element_children())) == set(ids)


@settings(max_examples=50)
@given(payloads, st.randoms())
def test_dispatcher_correlates_any_response_permutation(values, rng):
    """Whatever order the server's application stage finishes in, every
    future must receive exactly its own request's result."""
    assembler = ClientAssembler(NS)
    futures: list[InvocationFuture] = [
        assembler.add_call("echo", {"payload": v}) for v in values
    ]
    responses = []
    for i, v in enumerate(values):
        response = serialize_rpc_response(NS, "echo", v)
        response.set(REQUEST_ID_ATTR, f"r{i}")
        responses.append(response)
    rng.shuffle(responses)
    envelope = Envelope()
    envelope.add_body(build_parallel_method(responses, assign_ids=False))
    wire = Envelope.parse(envelope.to_bytes(), server=True)
    ClientDispatcher().dispatch(wire, futures)
    for future, expected in zip(futures, values):
        assert future.result(timeout=0) == expected
