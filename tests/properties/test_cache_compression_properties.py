"""Property tests for the PR-6 caches and wire compression.

Three contracts:

* the serialization template cache is *invisible*: for any response
  envelope shape, cached rendering is byte-identical to a fresh
  ``to_bytes()`` — including on repeat renders that splice templates;
* content-coding roundtrips: any body compressed with any supported
  coding survives the incremental HTTP parser (identity, plain and
  chunked framing) byte-for-byte;
* the q-value parser never crashes and only ever returns supported
  values in range.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packformat import build_parallel_method
from repro.http.compression import SUPPORTED_ENCODINGS, compress
from repro.http.message import parse_qvalues
from repro.http.parser import ChannelReader, encode_chunked, read_response
from repro.soap.envelope import Envelope
from repro.soap.sercache import ResponseTemplateCache
from repro.soap.serializer import serialize_rpc_response

ncnames = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)

xml_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="".join(
            chr(c) for c in range(0x20) if c not in (0x9, 0xA, 0xD)
        )
        + "￾￿",
    ),
    max_size=40,
)

# RPC result values the serializer accepts: scalars, lists, flat dicts.
results = st.one_of(
    xml_text,
    st.integers(),
    st.booleans(),
    st.lists(xml_text, max_size=4),
    st.dictionaries(ncnames, xml_text, max_size=4),
)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(ncnames, results), min_size=1, max_size=6),
    st.integers(min_value=2, max_value=4),
)
def test_template_cache_render_is_byte_identical(operations, rounds):
    cache = ResponseTemplateCache()
    for _ in range(rounds):
        envelope = Envelope()
        envelope.add_body(
            build_parallel_method(
                [
                    serialize_rpc_response("urn:prop", operation, result)
                    for operation, result in operations
                ]
            )
        )
        assert cache.render_envelope(envelope) == envelope.to_bytes()


@settings(max_examples=60, deadline=None)
@given(xml_text, xml_text)
def test_template_shape_reuse_with_fresh_values(first, second):
    cache = ResponseTemplateCache()
    for value in (first, second, first + second):
        envelope = Envelope()
        envelope.add_body(
            build_parallel_method(
                [serialize_rpc_response("urn:prop", "echo", value)]
            )
        )
        assert cache.render_envelope(envelope) == envelope.to_bytes()


class _Scripted:
    def __init__(self, payload: bytes, chunk: int):
        self._chunks = [
            payload[i : i + chunk] for i in range(0, len(payload), chunk)
        ]

    def recv(self, max_bytes: int = 65536) -> bytes:
        return self._chunks.pop(0) if self._chunks else b""

    def sendall(self, data: bytes) -> None:  # pragma: no cover
        raise AssertionError("not used")

    def close(self) -> None:  # pragma: no cover
        pass


@settings(max_examples=60, deadline=None)
@given(
    st.binary(max_size=4096),
    st.sampled_from(SUPPORTED_ENCODINGS),
    st.booleans(),
    st.integers(min_value=1, max_value=977),
)
def test_coded_response_roundtrips_through_parser(body, encoding, chunked, arrival):
    coded = compress(body, encoding)
    head = f"HTTP/1.1 200 OK\r\nContent-Encoding: {encoding}\r\n".encode()
    if chunked:
        raw = head + b"Transfer-Encoding: chunked\r\n\r\n" + encode_chunked(coded)
    else:
        raw = head + f"Content-Length: {len(coded)}\r\n\r\n".encode() + coded
    response = read_response(ChannelReader(_Scripted(raw, arrival)))
    assert response.body == body
    assert response.headers.get("Content-Encoding") is None


@settings(max_examples=120, deadline=None)
@given(st.text(max_size=60))
def test_qvalue_parser_is_total_and_in_range(header):
    for token, q in parse_qvalues(header):
        assert token == token.strip().lower()
        assert 0.0 <= q <= 1.0
