"""Robustness fuzzing: hostile inputs must fail with *library* errors.

A production stack never leaks KeyError/IndexError/AttributeError to
callers on malformed input — everything surfaces as a
:class:`~repro.errors.ReproError` subclass (or parses successfully).
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.http.parser import ChannelReader, read_request
from repro.soap.envelope import Envelope
from repro.soap.xsdtypes import decode_value
from repro.xmlcore import parse
from repro.xmlcore.tree import Element


class _OneShot:
    def __init__(self, data: bytes):
        self._data = data

    def recv(self, max_bytes: int = 65536) -> bytes:
        data, self._data = self._data, b""
        return data


@settings(max_examples=120)
@given(st.binary(max_size=300))
def test_http_parser_never_leaks_internal_errors(data):
    try:
        read_request(ChannelReader(_OneShot(data)))
    except ReproError:
        pass  # any library error is acceptable; anything else propagates


@settings(max_examples=120)
@given(st.text(alphabet=string.printable + "<>&;#北", max_size=200))
def test_xml_parser_never_leaks_internal_errors(text):
    try:
        parse(text)
    except ReproError:
        pass


@settings(max_examples=120)
@given(st.binary(max_size=200))
def test_envelope_from_bytes_never_leaks(data):
    try:
        Envelope.parse(data, server=True)
    except ReproError:
        pass  # codec failures are wrapped as XML errors by decode_document


xsi_types = st.sampled_from(
    ["xsd:int", "xsd:double", "xsd:boolean", "xsd:base64Binary",
     "xsd:dateTime", "xsd:date", "xsd:time", "SOAP-ENC:Array",
     "xsd:struct", "xsd:string", "xsd:duration", "nonsense", ""]
)


@settings(max_examples=150)
@given(
    xsi_type=xsi_types,
    text=st.text(alphabet=string.printable, max_size=30),
)
def test_decode_value_never_leaks(xsi_type, text):
    element = Element("v")
    if xsi_type:
        element.set(
            "{http://www.w3.org/2001/XMLSchema-instance}type", xsi_type
        )
    if text:
        element.append(text)
    try:
        decode_value(element)
    except ReproError:
        pass
