"""Property-based tests for the SOAP codecs."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap.deserializer import parse_rpc_request, parse_rpc_response
from repro.soap.diffser import DifferentialSerializer
from repro.soap.envelope import Envelope
from repro.soap.serializer import build_request_envelope, build_response_envelope

NS = "urn:svc:prop"

xml_safe_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="".join(
            chr(c) for c in range(0x20) if c not in (0x9, 0xA, 0xD)
        ) + "￾￿",
    ),
    max_size=60,
)

param_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

scalar_values = st.one_of(
    xml_safe_text,
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=40),
    st.none(),
)

values = st.recursive(
    scalar_values,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(param_names, inner, max_size=4),
    ),
    max_leaves=10,
)


@settings(max_examples=60)
@given(st.dictionaries(param_names, values, max_size=5))
def test_request_round_trip(params):
    env = build_request_envelope(NS, "op", params)
    parsed = Envelope.parse(env.to_bytes(), server=True)
    req = parse_rpc_request(parsed.first_body_entry())
    assert req.operation == "op"
    assert req.namespace == NS
    assert _normalize(req.params) == _normalize(params)


@settings(max_examples=60)
@given(values)
def test_response_round_trip(result):
    env = build_response_envelope(NS, "op", result)
    parsed = Envelope.parse(env.to_bytes(), server=True)
    resp = parse_rpc_response(parsed.first_body_entry())
    assert _normalize(resp.value) == _normalize(result)


@settings(max_examples=40)
@given(st.lists(xml_safe_text, min_size=1, max_size=8))
def test_diffser_hits_decode_identically(cities):
    """Every differential-serialization hit must decode to the same
    request a cold serializer would produce."""
    ser = DifferentialSerializer()
    for city in cities:
        data = ser.serialize_request(NS, "GetWeather", {"city": city})
        env = Envelope.parse(data, server=True)
        req = parse_rpc_request(env.first_body_entry())
        assert req.params == {"city": city}
    assert ser.stats.hits == len(cities) - 1


def _normalize(value):
    """Tuples encode as Arrays and decode as lists; align for comparison."""
    if isinstance(value, tuple):
        return [_normalize(v) for v in value]
    if isinstance(value, list):
        return [_normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in value.items()}
    return value


@settings(max_examples=40)
@given(st.lists(xml_safe_text.filter(lambda s: len(s) >= 3), min_size=1, max_size=8))
def test_diffdeser_hits_equal_full_parse(cities):
    """Every differential-deserialization result must equal what a full
    parse produces, hit or miss."""
    from repro.soap.diffdeser import DifferentialDeserializer
    from repro.soap.serializer import build_request_envelope

    dd = DifferentialDeserializer()
    for city in cities:
        raw = build_request_envelope(NS, "GetWeather", {"city": city}).to_bytes()
        fast = dd.deserialize(raw)
        cold = parse_rpc_request(Envelope.parse(raw, server=True).first_body_entry())
        assert fast.params == cold.params
        assert fast.operation == cold.operation
        assert fast.namespace == cold.namespace
