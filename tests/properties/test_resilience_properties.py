"""Partial-success packs as a property (ISSUE satellite 4).

The invariant: a pack of N entries with K injected failures yields
exactly N response slots — K per-entry faults, N-K results — with
order/identity preserved, on BOTH server architectures.  A single bad
entry must never poison its siblings or collapse the whole message
into one envelope-level fault.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.errors import SoapFaultError
from repro.server.handlers import HandlerChain
from repro.server.service import service_from_functions
from repro.server import ServerConfig, build_server
from repro.transport.inproc import InProcTransport
from repro.client.config import ClientConfig, build_proxy

FLAKY_NS = "urn:repro:flaky"


def flaky_echo(payload: str = "", explode: int = 0) -> str:
    """Echo, unless the caller asks this slot to fail."""
    if int(explode):
        raise RuntimeError(f"injected failure for '{payload}'")
    return payload


def make_flaky_service():
    return service_from_functions("FlakyService", FLAKY_NS, {"flakyEcho": flaky_echo})


def _start(architecture):
    transport = InProcTransport()
    server = build_server(ServerConfig(
        services=[make_flaky_service()],
        architecture=architecture,
        transport=transport,
        address=f"flaky-{architecture}",
        chain=HandlerChain(spi_server_handlers()),
    ))
    address = server.start()
    proxy = build_proxy(ClientConfig(
        transport,
        address,
        namespace=FLAKY_NS,
        service_name="FlakyService",
        reuse_connections=True,
    ))
    return server, proxy


@pytest.fixture(scope="module", params=["common", "staged"])
def flaky_proxy(request):
    server, proxy = _start(request.param)
    yield proxy
    proxy.close()
    server.stop()


# Each pack entry is (payload, should_fail); at most one pack per example.
pack_plans = st.lists(
    st.tuples(
        st.text(alphabet=string.ascii_letters + string.digits + " ", max_size=20),
        st.booleans(),
    ),
    min_size=1,
    max_size=10,
)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(plan=pack_plans)
def test_pack_with_failures_yields_exactly_n_slots(flaky_proxy, plan):
    batch = PackBatch(flaky_proxy)
    futures = [
        batch.call("flakyEcho", payload=payload, explode=int(should_fail))
        for payload, should_fail in plan
    ]
    batch.flush()

    # exactly N slots, every one settled — nothing hangs, nothing is lost
    assert len(futures) == len(plan)
    assert all(f.done() for f in futures)

    for future, (payload, should_fail) in zip(futures, plan):
        if should_fail:
            error = future.exception(timeout=5)
            assert isinstance(error, SoapFaultError)
            # a service exception is the server's fault, and it names
            # this entry's payload — proof the fault is per-entry
            assert error.faultcode.endswith("Server")
            assert payload in error.faultstring
            assert not error.is_retryable()
        else:
            # siblings of a failing entry still answer, in order
            assert future.result(timeout=5) == payload


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(plan=pack_plans)
def test_fault_count_matches_injected_failures(flaky_proxy, plan):
    batch = PackBatch(flaky_proxy)
    futures = [
        batch.call("flakyEcho", payload=p, explode=int(fail)) for p, fail in plan
    ]
    batch.flush()
    faults = sum(1 for f in futures if f.exception(timeout=5) is not None)
    assert faults == sum(1 for _, fail in plan if fail)
