"""Property-based tests for the PR-3 API redesign invariants.

Two contracts the redesign must not break:

* the tuple-backed attribute storage is a pure representation change —
  a tree built through any attribute-writing path (constructor dict,
  repeated ``set``, ``replace_attributes`` with a mapping or an
  iterable) serializes to byte-identical XML;
* namespace hoisting on ``Parallel_Method`` changes the wire bytes but
  not the value — the unmodified deserializer recovers exactly the
  entries that went in.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packformat import build_parallel_method, unpack_parallel_method
from repro.soap.constants import REQUEST_ID_ATTR
from repro.soap.envelope import Envelope
from repro.soap.serializer import serialize_rpc_request
from repro.xmlcore.tree import Element
from repro.xmlcore.writer import serialize

ncnames = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8)

attr_values = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",),
        blacklist_characters="".join(
            chr(c) for c in range(0x20) if c not in (0x9, 0xA, 0xD)
        ) + "￾￿",
    ),
    max_size=30,
)

attr_sets = st.dictionaries(ncnames, attr_values, max_size=5)


@settings(max_examples=60)
@given(ncnames, attr_sets, attr_values)
def test_attribute_paths_serialize_byte_identically(tag, attrs, text):
    via_ctor = Element(tag, attrs)
    via_set = Element(tag)
    for name, value in attrs.items():
        via_set.set(name, value)
    via_mapping = Element(tag)
    via_mapping.replace_attributes(attrs)
    via_pairs = Element(tag)
    via_pairs.replace_attributes((name, value) for name, value in attrs.items())
    for element in (via_ctor, via_set, via_mapping, via_pairs):
        if text:
            element.append(text)
    baseline = serialize(via_ctor)
    assert serialize(via_set) == baseline
    assert serialize(via_mapping) == baseline
    assert serialize(via_pairs) == baseline


@settings(max_examples=60)
@given(ncnames, attr_sets, attr_values)
def test_set_overwrite_keeps_single_occurrence(tag, attrs, value):
    element = Element(tag, attrs)
    for name in attrs:
        element.set(name, value)
    assert dict(element.items()) == {name: value for name in attrs}
    text = serialize(element)
    for name in attrs:
        assert text.count(f' {name}="') == 1


service_uris = st.lists(
    st.sampled_from(["urn:svc:a", "urn:svc:b", "urn:svc:c"]),
    min_size=1,
    max_size=12,
)

payload_text = st.text(
    alphabet=string.printable.replace("\x0b", "").replace("\x0c", ""),
    max_size=40,
)


@settings(max_examples=50)
@given(service_uris, st.data())
def test_hoisted_pack_is_value_equal_after_round_trip(uris, data):
    """Hoisting moves xmlns declarations onto the wrapper; the stock
    deserializer must still recover every entry unchanged — same
    operation namespaces, same payloads, same request ids."""
    payloads = [data.draw(payload_text) for _ in uris]
    entries = [
        serialize_rpc_request(uri, "Echo", {"payload": value})
        for uri, value in zip(uris, payloads)
    ]
    originals = [entry.copy() for entry in entries]
    wrapper = build_parallel_method(entries)
    envelope = Envelope()
    envelope.add_body(wrapper)
    reparsed = Envelope.parse(envelope.to_bytes())
    unpacked = unpack_parallel_method(reparsed.first_body_entry())
    assert len(unpacked) == len(entries)
    for index, (original, uri, value, entry) in enumerate(
        zip(originals, uris, payloads, unpacked)
    ):
        assert entry.qname.uri == uri
        assert entry.qname.local == "Echo"
        assert entry.get(REQUEST_ID_ATTR) == f"r{index}"
        assert entry.require("payload").text == value
        # ignoring the assigned id, the entry is structurally the
        # original serializer output
        entry.pop_attribute(REQUEST_ID_ATTR)
        assert entry.structurally_equal(original)


@settings(max_examples=50)
@given(service_uris)
def test_hoisting_declares_each_namespace_once(uris):
    entries = [
        serialize_rpc_request(uri, "Echo", {"payload": "x"}) for uri in uris
    ]
    envelope = Envelope()
    envelope.add_body(build_parallel_method(entries))
    text = envelope.to_bytes().decode("utf-8")
    for uri in set(uris):
        assert text.count(f'"{uri}"') == 1
