"""Unit tests for invocation futures."""

import threading

import pytest

from repro.errors import InvocationError, SoapFaultError
from repro.client.futures import InvocationFuture, wait_all


class TestInvocationFuture:
    def test_resolve(self):
        f = InvocationFuture("echo")
        f.resolve("value")
        assert f.done()
        assert f.result() == "value"
        assert f.exception() is None

    def test_fail_reraises(self):
        f = InvocationFuture("echo")
        f.fail(SoapFaultError("Server", "boom"))
        with pytest.raises(SoapFaultError):
            f.result()
        assert isinstance(f.exception(), SoapFaultError)

    def test_timeout(self):
        f = InvocationFuture("echo")
        with pytest.raises(InvocationError, match="did not complete"):
            f.result(timeout=0.01)
        with pytest.raises(InvocationError):
            f.exception(timeout=0.01)

    def test_double_resolve_raises(self):
        f = InvocationFuture("echo")
        f.resolve(1)
        with pytest.raises(InvocationError, match="twice"):
            f.resolve(2)

    def test_resolve_then_fail_raises(self):
        f = InvocationFuture("echo")
        f.resolve(1)
        with pytest.raises(InvocationError):
            f.fail(ValueError())

    def test_metadata(self):
        f = InvocationFuture("GetWeather", request_id="r1")
        assert f.operation == "GetWeather"
        assert f.request_id == "r1"

    def test_callback_fires_on_resolve(self):
        f = InvocationFuture("echo")
        seen = []
        f.add_done_callback(seen.append)
        f.resolve(1)
        assert seen == [f]

    def test_callback_after_done_runs_immediately(self):
        f = InvocationFuture("echo")
        f.resolve(1)
        seen = []
        f.add_done_callback(seen.append)
        assert seen == [f]

    def test_cross_thread_resolution(self):
        f = InvocationFuture("echo")
        threading.Timer(0.01, f.resolve, args=("late",)).start()
        assert f.result(timeout=5) == "late"


class TestWaitAll:
    def test_order_preserved(self):
        futures = [InvocationFuture(f"op{i}") for i in range(3)]
        for i, f in enumerate(futures):
            f.resolve(i * 10)
        assert wait_all(futures) == [0, 10, 20]

    def test_failure_propagates(self):
        good = InvocationFuture("a")
        good.resolve(1)
        bad = InvocationFuture("b")
        bad.fail(SoapFaultError("Server", "x"))
        with pytest.raises(SoapFaultError):
            wait_all([good, bad])

    def test_empty(self):
        assert wait_all([]) == []
