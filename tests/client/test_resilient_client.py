"""Adaptive client resilience end-to-end: hedging, AIMD gating,
deadline-rebased I/O timeouts.

Determinism comes from controlling the *wire*, not from sleeping and
hoping: a straggler transport stalls exactly the connections the test
names, the client rollup is primed directly so the hedge trigger is a
known number, and the limiter is occupied by hand where gating is under
test.
"""

import threading
import time

import pytest

from repro.apps.echo import ECHO_NS, ECHO_SERVICE, make_echo_service
from repro.client.config import ClientConfig, build_proxy
from repro.client.proxy import CLIENT_ROLLUP_PREFIX, _wire_timeout
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.errors import SoapFaultError, TransportError
from repro.resilience.hedge import HedgePolicy
from repro.resilience.limiter import AdaptiveLimiter
from repro.resilience.policy import CallPolicy
from repro.server import ServerConfig, build_server
from repro.server.handlers import HandlerChain
from repro.transport.base import Channel, Transport
from repro.transport.chaos import ChaosTransport
from repro.transport.inproc import InProcTransport

STRAGGLE_S = 0.25


class _StragglerChannel(Channel):
    """Delegating channel whose first recv stalls for ``delay_s``."""

    def __init__(self, inner, delay_s):
        self._inner = inner
        self._delay_s = delay_s
        self._stalled = False

    def sendall(self, data):
        self._inner.sendall(data)

    def recv(self, max_bytes=65536):
        if not self._stalled:
            self._stalled = True
            time.sleep(self._delay_s)
        return self._inner.recv(max_bytes)

    def close(self):
        self._inner.close()

    def set_timeout(self, timeout):
        self._inner.set_timeout(timeout)


class StragglerTransport(Transport):
    """Outbound connections whose index is in ``straggle`` stall.

    The server side is untouched, so a hedged retry over a *fresh*
    connection sails past the stall — the tail-at-scale scenario in
    miniature, with no randomness at all.
    """

    def __init__(self, base, *, straggle=frozenset({0}), delay_s=STRAGGLE_S):
        self.base = base
        self.delay_s = delay_s
        self._straggle = set(straggle)
        self._connects = 0
        self._lock = threading.Lock()

    def listen(self, address):
        return self.base.listen(address)

    def connect(self, address, timeout=None):
        channel = self.base.connect(address, timeout)
        with self._lock:
            index = self._connects
            self._connects += 1
        if index in self._straggle:
            return _StragglerChannel(channel, self.delay_s)
        return channel


def start_echo_server(transport):
    server = build_server(ServerConfig(
        services=[make_echo_service()],
        architecture="staged",
        backend="threaded",
        transport=transport,
        address="resilient-client",
        chain=HandlerChain(spi_server_handlers()),
        app_workers=4,
    ))
    address = server.start()
    return server, address


def make_hedging_proxy(base, address, *, client_transport=None, hedge=None,
                       limiter=None, policy=None):
    return build_proxy(ClientConfig(
        client_transport if client_transport is not None else base,
        address,
        namespace=ECHO_NS,
        service_name=ECHO_SERVICE,
        hedge=hedge,
        limiter=limiter,
        policy=policy,
    ))


def prime_rollup(proxy, operation, latency_s=0.005, samples=32):
    """Warm the client rollup so the hedge trigger is a known number."""
    rollup = proxy.metrics.rollup(CLIENT_ROLLUP_PREFIX + ECHO_NS, operation)
    for _ in range(samples):
        rollup.observe(latency_s, None)
    return rollup


FAST_HEDGE = HedgePolicy(quantile=0.5, min_samples=16, min_trigger_s=0.001)


class TestHedgedRequests:
    def test_hedge_fires_and_wins_against_a_straggler(self):
        base = InProcTransport()
        server, address = start_echo_server(base)
        try:
            wire = StragglerTransport(base)
            proxy = make_hedging_proxy(
                base, address, client_transport=wire, hedge=FAST_HEDGE
            )
            prime_rollup(proxy, "echo")
            started = time.perf_counter()
            assert proxy.echo(payload="tail") == "tail"
            elapsed = time.perf_counter() - started
            # the hedge answered long before the straggler's stall ended
            assert elapsed < STRAGGLE_S
            assert proxy.metrics.counter("client.hedges").value == 1
            assert proxy.metrics.counter("client.hedge_wins").value == 1
            assert proxy.connections_opened == 2  # primary + hedge
            proxy.close()
        finally:
            server.stop()

    def test_losers_late_result_is_discarded_from_the_rollup(self):
        base = InProcTransport()
        server, address = start_echo_server(base)
        try:
            wire = StragglerTransport(base)
            proxy = make_hedging_proxy(
                base, address, client_transport=wire, hedge=FAST_HEDGE
            )
            rollup = prime_rollup(proxy, "echo")
            assert proxy.echo(payload="tail") == "tail"
            assert rollup.calls == 33  # 32 primed + the winner
            time.sleep(STRAGGLE_S + 0.1)  # let the abandoned loser finish
            # the loser's stall-inflated latency never lands in the
            # sketch, so it cannot drag the trigger quantile upward
            assert rollup.calls == 33
            proxy.close()
        finally:
            server.stop()

    def test_exhausted_budget_suppresses_the_hedge(self):
        base = InProcTransport()
        server, address = start_echo_server(base)
        try:
            # a bucket holding exactly one token that refills glacially
            stingy = HedgePolicy(
                quantile=0.5, min_samples=16, min_trigger_s=0.001,
                budget_rate=0.001, budget_burst=1.0,
            )
            # stall the two *primaries* (connections 0 and 2); the hedge's
            # own connection 1 stays fast
            wire = StragglerTransport(base, straggle={0, 2})
            proxy = make_hedging_proxy(
                base, address, client_transport=wire, hedge=stingy
            )
            prime_rollup(proxy, "echo")
            assert proxy.echo(payload="one") == "one"  # spends the token
            started = time.perf_counter()
            assert proxy.echo(payload="two") == "two"  # budget empty
            elapsed = time.perf_counter() - started
            assert elapsed >= STRAGGLE_S  # waited out the straggler
            assert proxy.metrics.counter("client.hedges").value == 1
            proxy.close()
        finally:
            server.stop()

    def test_cast_batches_are_never_hedged(self):
        base = InProcTransport()
        server, address = start_echo_server(base)
        try:
            wire = StragglerTransport(base)
            proxy = make_hedging_proxy(
                base, address, client_transport=wire, hedge=FAST_HEDGE
            )
            prime_rollup(proxy, "Parallel_Method")
            batch = PackBatch(proxy)
            batch.call("echo", payload="kept")
            batch.cast("echo", payload="fire-and-forget")
            started = time.perf_counter()
            futures = batch.flush()
            elapsed = time.perf_counter() - started
            assert futures[0].result(timeout=5) == "kept"
            # a duplicate pack would run the cast's side effect twice,
            # so the flush waited out the straggler instead of hedging
            assert elapsed >= STRAGGLE_S
            assert proxy.metrics.counter("client.hedges").value == 0
            proxy.close()
        finally:
            server.stop()


class TestAdaptiveLimiterClient:
    def test_full_window_gates_locally_without_touching_the_wire(self):
        base = InProcTransport()
        server, address = start_echo_server(base)
        try:
            limiter = AdaptiveLimiter(initial=1.0)
            proxy = make_hedging_proxy(base, address, limiter=limiter)
            assert limiter.try_acquire()  # occupy the single slot
            with pytest.raises(SoapFaultError) as excinfo:
                proxy.echo(payload="gated")
            assert excinfo.value.faultcode == "Server.Busy"
            assert excinfo.value.is_retryable()
            assert proxy.metrics.counter("client.limiter.gated").value == 1
            assert proxy.connections_opened == 0  # shed before the wire
            limiter.release("success")
            assert proxy.echo(payload="admitted") == "admitted"
            proxy.close()
        finally:
            server.stop()

    def test_busy_storm_collapses_the_window_then_recovery_reopens_it(self):
        base = InProcTransport()
        server, address = start_echo_server(base)
        try:
            chaos = ChaosTransport(base, busy_rate=1.0, seed=5)
            limiter = AdaptiveLimiter(initial=8.0)
            proxy = make_hedging_proxy(
                base, address, client_transport=chaos, limiter=limiter
            )
            for _ in range(6):
                with pytest.raises(SoapFaultError):
                    proxy.echo(payload="storm")
            collapsed = limiter.limit
            assert collapsed <= 1.0  # halved per shed down to the floor
            assert limiter.snapshot()["overloads"] == 6
            chaos.busy_rate = 0.0  # the server recovers
            for _ in range(8):
                assert proxy.echo(payload="calm") == "calm"
            assert limiter.limit > collapsed
            # the published gauge tracks the live window
            assert proxy.metrics.gauge("client.limiter.limit").value == (
                pytest.approx(limiter.limit)
            )
            proxy.close()
        finally:
            server.stop()


class TestDeadlineRebasedIo:
    def test_wire_timeout_carries_grace_over_the_budget(self):
        assert _wire_timeout(None) is None
        assert _wire_timeout(0.1) == pytest.approx(0.15)  # floor-dominated
        assert _wire_timeout(10.0) == pytest.approx(12.5)  # fraction-dominated

    def test_hung_server_cannot_eat_the_whole_deadline(self):
        # a listener nobody accepts on: connects succeed, recv hangs
        base = InProcTransport()
        listener = base.listen("hung-server")
        try:
            proxy = make_hedging_proxy(base, "hung-server")
            policy = CallPolicy(
                timeout=0.2, deadline=0.4, retries=5,
                backoff_base=0.0, jitter=0.0,
            )
            started = time.perf_counter()
            with pytest.raises(TransportError, match="timed out"):
                proxy.call_with_policy("echo", policy, payload="x")
            elapsed = time.perf_counter() - started
            # attempt 1 gets min(0.2, 0.4) + grace; later attempts only
            # what the whole-call deadline has left — never 6 x 0.2
            assert 0.2 <= elapsed < 1.0
            assert proxy.connections_opened >= 2  # it did rebase and retry
            proxy.close()
        finally:
            listener.close()
