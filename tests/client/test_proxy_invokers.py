"""Integration tests: proxy + serial/threaded invokers against a server."""

import time

import pytest

from repro.errors import InvocationError, SoapFaultError
from repro.client.invoker import Call, SerialInvoker, ThreadedInvoker
from repro.client.proxy import ServiceProxy
from repro.server.service import service_from_functions
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

NS = "urn:svc:echo"


def make_server(transport, address="proxy-server"):
    def echo(payload: str) -> str:
        return payload

    def reverse(payload: str) -> str:
        return payload[::-1]

    def slow(payload: str) -> str:
        time.sleep(0.05)
        return payload

    def fail(reason: str) -> str:
        raise RuntimeError(reason)

    services = [
        service_from_functions(
            "EchoService",
            NS,
            {"echo": echo, "reverse": reverse, "slow": slow, "fail": fail},
        )
    ]
    return build_server(ServerConfig(services=services, architecture="staged", transport=transport, address=address))


@pytest.fixture
def env():
    transport = InProcTransport()
    server = make_server(transport)
    with server.running() as address:
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=NS, service_name="EchoService"
        ))
        yield transport, address, proxy, server
        proxy.close()


class TestServiceProxy:
    def test_call(self, env):
        _, _, proxy, _ = env
        assert proxy.call("echo", payload="hello") == "hello"

    def test_dynamic_attribute_call(self, env):
        _, _, proxy, _ = env
        assert proxy.reverse(payload="abc") == "cba"

    def test_fault_surfaces_as_exception(self, env):
        _, _, proxy, _ = env
        with pytest.raises(SoapFaultError) as excinfo:
            proxy.call("fail", reason="bad day")
        assert "bad day" in str(excinfo.value)

    def test_unknown_operation_faults(self, env):
        _, _, proxy, _ = env
        with pytest.raises(SoapFaultError):
            proxy.call("nothere")

    def test_fresh_connection_per_call_by_default(self, env):
        _, _, proxy, server = env
        for _ in range(3):
            proxy.call("echo", payload="x")
        assert proxy.connections_opened == 3
        assert server.http.connections_accepted == 3

    def test_pooled_connections_reused(self, env):
        transport, address, _, server = env
        before = server.http.connections_accepted
        pooled = build_proxy(ClientConfig(
            transport,
            address,
            namespace=NS,
            service_name="EchoService",
            reuse_connections=True,
        ))
        for _ in range(3):
            pooled.call("echo", payload="x")
        pooled.close()
        assert server.http.connections_accepted - before == 1

    def test_calls_counted(self, env):
        _, _, proxy, _ = env
        proxy.call("echo", payload="1")
        proxy.call("echo", payload="2")
        assert proxy.calls == 2

    def test_fetch_wsdl_and_from_wsdl(self, env):
        transport, address, proxy, _ = env
        document = proxy.fetch_wsdl()
        assert "EchoService" in document
        checked = ServiceProxy.from_wsdl(document, transport, address)
        assert checked.namespace == NS
        assert checked.call("echo", payload="via-wsdl") == "via-wsdl"

    def test_interface_rejects_unknown_operation(self, env):
        transport, address, proxy, _ = env
        checked = ServiceProxy.from_wsdl(proxy.fetch_wsdl(), transport, address)
        with pytest.raises(InvocationError, match="not an operation"):
            checked.call("bogus")

    def test_interface_rejects_wrong_params(self, env):
        transport, address, proxy, _ = env
        checked = ServiceProxy.from_wsdl(proxy.fetch_wsdl(), transport, address)
        with pytest.raises(InvocationError, match="expects parameters"):
            checked.call("echo", wrong="x")


class TestSerialInvoker:
    def test_results_in_order(self, env):
        _, _, proxy, _ = env
        calls = Call.many("echo", [{"payload": f"m{i}"} for i in range(5)])
        results = SerialInvoker(proxy).invoke_all(calls)
        assert results == [f"m{i}" for i in range(5)]

    def test_one_connection_per_call(self, env):
        _, _, proxy, server = env
        SerialInvoker(proxy).invoke_all(Call.many("echo", [{"payload": "x"}] * 4))
        assert server.http.connections_accepted == 4

    def test_failure_recorded_per_future(self, env):
        _, _, proxy, _ = env
        futures = SerialInvoker(proxy).submit_all(
            [Call("echo", {"payload": "ok"}), Call("fail", {"reason": "no"})]
        )
        assert futures[0].result() == "ok"
        assert isinstance(futures[1].exception(), SoapFaultError)

    def test_serial_takes_cumulative_time(self, env):
        _, _, proxy, _ = env
        start = time.monotonic()
        SerialInvoker(proxy).invoke_all(Call.many("slow", [{"payload": "x"}] * 3))
        assert time.monotonic() - start >= 0.15


class TestThreadedInvoker:
    def test_results_in_order(self, env):
        _, _, proxy, _ = env
        calls = Call.many("echo", [{"payload": f"m{i}"} for i in range(6)])
        results = ThreadedInvoker(proxy).invoke_all(calls)
        assert results == [f"m{i}" for i in range(6)]

    def test_overlaps_slow_calls(self, env):
        _, _, proxy, _ = env
        start = time.monotonic()
        ThreadedInvoker(proxy).invoke_all(Call.many("slow", [{"payload": "x"}] * 4))
        elapsed = time.monotonic() - start
        assert elapsed < 0.18  # 4 x 0.05s serial would be >= 0.2

    def test_still_one_message_per_call(self, env):
        _, _, proxy, server = env
        ThreadedInvoker(proxy).invoke_all(Call.many("echo", [{"payload": "x"}] * 5))
        assert server.endpoint.stats.soap_messages == 5
        assert server.http.connections_accepted == 5

    def test_max_threads_cap(self, env):
        _, _, proxy, _ = env
        calls = Call.many("echo", [{"payload": f"{i}"} for i in range(8)])
        results = ThreadedInvoker(proxy, max_threads=2).invoke_all(calls)
        assert results == [f"{i}" for i in range(8)]

    def test_mixed_failures(self, env):
        _, _, proxy, _ = env
        futures = ThreadedInvoker(proxy).submit_all(
            [Call("fail", {"reason": "r"}), Call("echo", {"payload": "fine"})]
        )
        assert isinstance(futures[0].exception(), SoapFaultError)
        assert futures[1].result() == "fine"


class TestKeepAliveSerialInvoker:
    def test_results_in_order(self, env):
        from repro.client.invoker import KeepAliveSerialInvoker

        _, _, proxy, _ = env
        calls = Call.many("echo", [{"payload": f"k{i}"} for i in range(5)])
        results = KeepAliveSerialInvoker(proxy).invoke_all(calls)
        assert results == [f"k{i}" for i in range(5)]

    def test_single_connection_for_all_calls(self, env):
        from repro.client.invoker import KeepAliveSerialInvoker

        _, _, proxy, server = env
        before = server.http.connections_accepted
        KeepAliveSerialInvoker(proxy).invoke_all(
            Call.many("echo", [{"payload": "x"}] * 6)
        )
        assert server.http.connections_accepted - before == 1

    def test_still_m_soap_messages(self, env):
        from repro.client.invoker import KeepAliveSerialInvoker

        _, _, proxy, server = env
        before = server.endpoint.stats.soap_messages
        KeepAliveSerialInvoker(proxy).invoke_all(
            Call.many("echo", [{"payload": "x"}] * 6)
        )
        assert server.endpoint.stats.soap_messages - before == 6

    def test_reuses_already_pooled_proxy(self, env):
        from repro.client.invoker import KeepAliveSerialInvoker

        transport, address, _, _ = env
        pooled = build_proxy(ClientConfig(
            transport, address, namespace=NS, service_name="EchoService",
            reuse_connections=True,
        ))
        invoker = KeepAliveSerialInvoker(pooled)
        assert invoker.proxy is pooled
        assert invoker.invoke_all([Call("echo", {"payload": "y"})]) == ["y"]
        pooled.close()

    def test_failures_recorded_per_future(self, env):
        from repro.client.invoker import KeepAliveSerialInvoker

        _, _, proxy, _ = env
        futures = KeepAliveSerialInvoker(proxy).submit_all(
            [Call("fail", {"reason": "r"}), Call("echo", {"payload": "ok"})]
        )
        assert isinstance(futures[0].exception(), SoapFaultError)
        assert futures[1].result() == "ok"
