"""Unit tests for the client-side parameterized response cache (PR-6)."""

import threading

import pytest

from repro.client.cache import (
    CachePolicy,
    ResponseCache,
    response_cache_key,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def make_cache(policy=None, clock=None):
    return ResponseCache(
        policy or CachePolicy(), clock=clock or FakeClock()
    )


class TestKey:
    def test_param_order_is_insignificant(self):
        a = response_cache_key("ns", "op", {"x": 1, "y": 2})
        b = response_cache_key("ns", "op", {"y": 2, "x": 1})
        assert a == b

    def test_bool_and_int_key_separately(self):
        assert response_cache_key("ns", "op", {"x": 1}) != response_cache_key(
            "ns", "op", {"x": True}
        )

    def test_nested_containers(self):
        a = response_cache_key("ns", "op", {"x": {"b": 2, "a": [1, 2]}})
        b = response_cache_key("ns", "op", {"x": {"a": [1, 2], "b": 2}})
        assert a == b
        assert a != response_cache_key("ns", "op", {"x": {"a": [2, 1], "b": 2}})


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CachePolicy(ttl=0)
        with pytest.raises(ValueError):
            CachePolicy(max_entries=0)

    def test_operation_allowlist(self):
        policy = CachePolicy(operations=frozenset({"read"}))
        assert policy.is_cacheable("read")
        assert not policy.is_cacheable("write")


class TestTtlAndLru:
    def test_hit_within_ttl(self):
        cache = make_cache(CachePolicy(ttl=10))
        key = response_cache_key("ns", "op", {})
        assert cache.get_or_fetch(key, lambda: "v1") == ("v1", False)
        assert cache.get_or_fetch(key, lambda: "v2") == ("v1", True)

    def test_expiry_refetches(self):
        clock = FakeClock()
        cache = make_cache(CachePolicy(ttl=10), clock=clock)
        key = response_cache_key("ns", "op", {})
        cache.get_or_fetch(key, lambda: "v1")
        clock.now += 10
        assert cache.get_or_fetch(key, lambda: "v2") == ("v2", False)
        assert cache.stats().expirations == 1

    def test_ttl_none_never_expires(self):
        clock = FakeClock()
        cache = make_cache(CachePolicy(ttl=None), clock=clock)
        key = response_cache_key("ns", "op", {})
        cache.get_or_fetch(key, lambda: "v1")
        clock.now += 1e9
        assert cache.get_or_fetch(key, lambda: "v2") == ("v1", True)

    def test_lru_eviction(self):
        cache = make_cache(CachePolicy(max_entries=2))
        keys = [response_cache_key("ns", "op", {"i": i}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.get_or_fetch(key, lambda i=i: i)
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        # keys[0] was evicted; keys[2] still present
        assert cache.get_or_fetch(keys[2], lambda: "new") == (2, True)
        assert cache.get_or_fetch(keys[0], lambda: "new") == ("new", False)


class TestInvalidation:
    def test_invalidate_scopes(self):
        cache = make_cache()
        for ns, op in (("a", "x"), ("a", "y"), ("b", "x")):
            cache.get_or_fetch(
                response_cache_key(ns, op, {}), lambda: "v"
            )
        assert cache.invalidate(namespace="a", operation="x") == 1
        assert cache.invalidate(namespace="b") == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_inflight_fetch_cannot_insert_across_invalidation(self):
        cache = make_cache()
        key = response_cache_key("ns", "op", {})

        def fetch():
            # interface changes while this response is in flight
            cache.invalidate()
            return "stale"

        value, was_hit = cache.get_or_fetch(key, fetch)
        assert (value, was_hit) == ("stale", False)
        assert len(cache) == 0  # never stored
        assert cache.get_or_fetch(key, lambda: "fresh") == ("fresh", False)

    def test_validate_gates_insertion_only(self):
        cache = make_cache()
        key = response_cache_key("ns", "op", {})
        value, was_hit = cache.get_or_fetch(
            key, lambda: b"<Fault/>", validate=lambda body: b"Fault" not in body
        )
        assert value == b"<Fault/>" and not was_hit
        assert len(cache) == 0


class TestSingleFlight:
    def test_concurrent_misses_coalesce(self):
        cache = make_cache()
        key = response_cache_key("ns", "op", {})
        release = threading.Event()
        fetches = []

        def fetch():
            fetches.append(1)
            release.wait(timeout=5)
            return "v"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_fetch(key, fetch))
            )
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        # let followers park on the leader before it completes
        deadline = threading.Event()
        deadline.wait(timeout=0.1)
        release.set()
        for t in threads:
            t.join(timeout=5)
        assert len(fetches) == 1
        assert {value for value, _ in results} == {"v"}
        assert cache.stats().coalesced >= 1

    def test_follower_promotes_when_leader_fails(self):
        cache = make_cache()
        key = response_cache_key("ns", "op", {})
        started = threading.Event()
        fail_leader = threading.Event()

        def failing_fetch():
            started.set()
            fail_leader.wait(timeout=5)
            raise RuntimeError("leader died")

        outcome = {}

        def leader():
            try:
                cache.get_or_fetch(key, failing_fetch)
            except RuntimeError as exc:
                outcome["leader"] = exc

        def follower():
            started.wait(timeout=5)
            outcome["follower"] = cache.get_or_fetch(key, lambda: "recovered")

        t1 = threading.Thread(target=leader)
        t2 = threading.Thread(target=follower)
        t1.start()
        t2.start()
        started.wait(timeout=5)
        # give the follower a moment to park, then fail the leader
        pause = threading.Event()
        pause.wait(timeout=0.1)
        fail_leader.set()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert isinstance(outcome["leader"], RuntimeError)
        assert outcome["follower"] == ("recovered", False)
