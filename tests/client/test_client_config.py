"""The ClientConfig facade and the legacy ServiceProxy constructor shim."""

import pytest

from repro.client.config import ClientConfig, build_proxy, config_from_legacy
from repro.client.proxy import ServiceProxy
from repro.errors import InvocationError
from repro.resilience.hedge import HedgePolicy
from repro.resilience.limiter import AdaptiveLimiter
from repro.resilience.policy import CallPolicy
from repro.transport.inproc import InProcTransport


class TestClientConfig:
    def test_transport_and_namespace_required(self):
        with pytest.raises(InvocationError, match="transport"):
            ClientConfig(namespace="urn:x")
        with pytest.raises(InvocationError, match="namespace"):
            ClientConfig(InProcTransport(), "addr")

    def test_resilience_knobs_are_type_checked(self):
        transport = InProcTransport()
        with pytest.raises(InvocationError, match="hedge"):
            ClientConfig(transport, "addr", namespace="urn:x", hedge=True)
        with pytest.raises(InvocationError, match="limiter"):
            ClientConfig(transport, "addr", namespace="urn:x", limiter=32)

    def test_replace_is_a_frozen_copy(self):
        base = ClientConfig(InProcTransport(), "addr", namespace="urn:x")
        pooled = base.replace(reuse_connections=True)
        assert not base.reuse_connections and pooled.reuse_connections
        assert pooled.namespace == "urn:x"

    def test_build_proxy_wires_every_knob(self):
        hedge = HedgePolicy(quantile=0.9)
        limiter = AdaptiveLimiter(initial=4.0)
        policy = CallPolicy(retries=2)
        config = ClientConfig(
            InProcTransport(),
            "addr",
            namespace="urn:x",
            service_name="Echo",
            policy=policy,
            hedge=hedge,
            limiter=limiter,
        )
        proxy = build_proxy(config)
        assert isinstance(proxy, ServiceProxy)
        assert proxy.config is config
        assert proxy.namespace == "urn:x"
        assert proxy.service_name == "Echo"
        assert proxy.policy is policy
        assert proxy.hedge is hedge
        assert proxy.limiter is limiter


class TestLegacyShim:
    def test_legacy_constructor_warns_and_builds_the_same_config(self):
        transport = InProcTransport()
        with pytest.warns(DeprecationWarning, match="build_proxy"):
            proxy = ServiceProxy(
                transport, "addr", namespace="urn:x", reuse_connections=True
            )
        assert proxy.config == ClientConfig(
            transport, "addr", namespace="urn:x", reuse_connections=True
        )
        proxy.close()

    def test_config_plus_legacy_arguments_rejected(self):
        config = ClientConfig(InProcTransport(), "addr", namespace="urn:x")
        with pytest.raises(InvocationError, match="legacy"):
            ServiceProxy(InProcTransport(), config=config)
        with pytest.raises(InvocationError, match="legacy"):
            ServiceProxy(config=config, namespace="urn:y")

    def test_unknown_legacy_keyword_rejected(self):
        with pytest.raises(TypeError, match="unexpected"):
            config_from_legacy(InProcTransport(), "addr", {"namespce": "urn:x"})

    def test_legacy_shim_accepts_the_new_knobs(self):
        hedge = HedgePolicy()
        config = config_from_legacy(
            InProcTransport(), "addr", {"namespace": "urn:x", "hedge": hedge}
        )
        assert config.hedge is hedge
