"""The unified parse facade and the deprecated alias layer.

The redesign collapses entry points to ``repro.xmlcore.parse`` and
``Envelope.parse``; the historical names stay as thin aliases that
behave identically but announce themselves with a DeprecationWarning
exactly once per call site (Python's default warning filter dedups on
location, so a loop over a deprecated alias warns once, not N times).
"""

import warnings

import pytest

from repro import xmlcore
from repro.soap.envelope import Envelope
from repro.xmlcore import parser
from repro.xmlcore.cursor import XmlCursor
from repro.xmlcore.tree import Element

DOC = b'<root a="1"><child>text</child></root>'

ENVELOPE = (
    b'<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">'
    b"<soap:Header><h:Hint xmlns:h=\"urn:h\">x</h:Hint></soap:Header>"
    b'<soap:Body><m:Echo xmlns:m="urn:m"><payload>hi</payload></m:Echo></soap:Body>'
    b"</soap:Envelope>"
)


class TestParseFacade:
    def test_tree_mode_is_default(self):
        tree = xmlcore.parse(DOC)
        assert isinstance(tree, Element)
        assert tree.tag == "root"
        assert tree.get("a") == "1"

    def test_cursor_mode_returns_cursor(self):
        cursor = xmlcore.parse(DOC, mode="cursor")
        assert isinstance(cursor, XmlCursor)
        start = cursor.root()
        assert start.name == "root"
        cursor.skip(start)
        cursor.finish()

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown parse mode 'sax'"):
            xmlcore.parse(DOC, mode="sax")

    def test_envelope_parse_skips_headers_by_default(self):
        envelope = Envelope.parse(ENVELOPE)
        assert envelope.header_entries == []
        assert envelope.first_body_entry().qname.local == "Echo"

    def test_envelope_parse_server_materializes_headers(self):
        envelope = Envelope.parse(ENVELOPE, server=True)
        assert [h.qname.local for h in envelope.header_entries] == ["Hint"]


class TestDeprecatedAliases:
    def test_parser_parse_still_works_and_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tree = parser.parse(DOC)  # repro: disable=no-deprecated-api — the alias under test
        assert tree.structurally_equal(xmlcore.parse(DOC))
        assert len(caught) == 1
        assert caught[0].category is DeprecationWarning
        assert "repro.xmlcore.parse" in str(caught[0].message)

    @pytest.mark.parametrize(
        "alias, server",
        [("from_string", True), ("from_string_pull", False), ("from_string_server", True)],
    )
    def test_envelope_aliases_match_parse(self, alias, server):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            envelope = getattr(Envelope, alias)(ENVELOPE)
        assert len(caught) == 1
        assert caught[0].category is DeprecationWarning
        assert "Envelope.parse" in str(caught[0].message)
        reference = Envelope.parse(ENVELOPE, server=server)
        assert envelope.first_body_entry().structurally_equal(
            reference.first_body_entry()
        )
        assert len(envelope.header_entries) == len(reference.header_entries)

    def test_element_attributes_view_works_and_warns(self):
        element = Element("e", {"a": "1"})
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            view = element.attributes
            view["b"] = "2"
            assert view["a"] == "1"
        assert element.get("b") == "2"
        assert all(w.category is DeprecationWarning for w in caught)
        assert caught, "attribute access must warn"

    def test_warning_dedup_is_once_per_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(5):
                parser.parse(DOC)  # one call site, five calls  # repro: disable=no-deprecated-api
        assert len(caught) == 1
