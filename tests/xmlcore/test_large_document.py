"""Large-document regression tests for the lexer fast path.

The seed lexer advanced a (line, column) pair character-by-character for
every token, which made lexing cost grow with document size twice over:
once to scan and once to track positions nobody asked for.  These tests
pin the replacement behavior: positions are computed lazily (only when a
caller reads ``token.line``/``token.column`` or an error is raised) and a
100k-token document lexes in time proportional to its size.
"""

import time

import pytest

from repro.errors import XmlWellFormednessError
from repro.xmlcore.lexer import (
    EndTagToken,
    StartTagToken,
    TextToken,
    position_at,
    tokenize,
)


def _large_document(entries: int = 20_000) -> str:
    parts = ["<root>"]
    for i in range(entries):
        parts.append(f'<item id="{i}">value-{i}</item>\n')
    parts.append("</root>")
    return "".join(parts)


class TestLazyPositions:
    def test_positions_not_computed_during_lexing(self):
        # Draining the token stream must never trigger line counting;
        # the lazy cache slot stays at its 0 sentinel until read.
        tokens = list(tokenize("<a>\n<b x='1'/>\ntext</a>"))
        assert all(token._line == 0 for token in tokens)

    def test_positions_correct_on_demand(self):
        tokens = list(tokenize("<a>\n  <b/>\n</a>"))
        by_kind = {}
        for token in tokens:
            by_kind.setdefault(type(token), token)
        start = by_kind[StartTagToken]
        assert (start.line, start.column) == (1, 1)
        end = by_kind[EndTagToken]  # <b/> self-closes, so this is </a>
        assert (end.line, end.column) == (3, 1)
        text = by_kind[TextToken]  # starts right after <a>, before the newline
        assert text.line == 1

    def test_position_at_matches_naive_count(self):
        src = "ab\ncd\n\nxyz"
        for offset in range(len(src)):
            prefix = src[:offset]
            line = prefix.count("\n") + 1
            column = offset - (prefix.rfind("\n") + 1) + 1
            assert position_at(src, offset) == (line, column)

    def test_error_still_carries_line_and_column(self):
        document = "<root>\n  <a>\n    <oops\n</root>"
        with pytest.raises(XmlWellFormednessError) as excinfo:
            list(tokenize(document))
        message = str(excinfo.value)
        assert "line 3" in message

    def test_error_deep_in_large_document(self):
        # Lazy tracking must still localize an error thousands of lines
        # in: each item line ends with \n, so a tag broken after N items
        # sits on line N + 1 (line 1 is "<root><item...").
        entries = 5_000
        broken = _large_document(entries)[: -len("</root>")] + "<oops"
        with pytest.raises(XmlWellFormednessError) as excinfo:
            list(tokenize(broken))
        assert f"line {entries + 1}" in str(excinfo.value)


class TestLargeDocumentThroughput:
    def test_lexing_scales_linearly_enough(self):
        # Regression guard for the O(tokens × position-tracking) seed
        # behavior: 20k elements (~60k tokens) must lex fast in absolute
        # terms.  The seed implementation took multiple seconds here;
        # the bulk-scanning lexer takes well under half a second even on
        # a loaded CI box, so a 2 s bound has huge margin without being
        # flaky.
        document = _large_document()
        start = time.perf_counter()
        count = sum(1 for _ in tokenize(document))
        elapsed = time.perf_counter() - start
        assert count > 40_000
        assert elapsed < 2.0, f"lexing took {elapsed:.2f}s for {count} tokens"

    def test_token_count_and_fidelity(self):
        document = _large_document(1_000)
        starts = ends = texts = 0
        for token in tokenize(document):
            if isinstance(token, StartTagToken):
                starts += 1
                if token.name == "item":
                    assert token.attributes and token.attributes[0][0] == "id"
            elif isinstance(token, EndTagToken):
                ends += 1
            elif isinstance(token, TextToken):
                texts += 1
        assert starts == ends == 1_001
        assert texts >= 1_000
