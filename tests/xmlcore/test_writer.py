"""Unit tests for serialization and the streaming writer."""

import pytest

from repro.errors import XmlNamespaceError
from repro.xmlcore import parse
from repro.xmlcore.tree import Element
from repro.xmlcore.writer import StreamingWriter, serialize, serialize_bytes


class TestSerializeTree:
    def test_leaf(self):
        assert serialize(Element("a")) == "<a/>"

    def test_text(self):
        e = Element("a")
        e.append("hi")
        assert serialize(e) == "<a>hi</a>"

    def test_attributes(self):
        e = Element("a", {"x": "1"})
        assert serialize(e) == '<a x="1"/>'

    def test_text_escaped(self):
        e = Element("a")
        e.append("a<b&c")
        assert serialize(e) == "<a>a&lt;b&amp;c</a>"

    def test_attribute_escaped(self):
        e = Element("a", {"x": 'say "hi"'})
        assert serialize(e) == '<a x="say &quot;hi&quot;"/>'

    def test_declaration(self):
        out = serialize(Element("a"), declaration=True)
        assert out.startswith('<?xml version="1.0" encoding="UTF-8"?>')

    def test_serialize_bytes_utf8(self):
        e = Element("a")
        e.append("北京")
        data = serialize_bytes(e)
        assert isinstance(data, bytes)
        assert "北京".encode("utf-8") in data

    def test_namespace_with_preferred_prefix(self):
        e = Element("{http://s}a", nsmap={"s": "http://s"})
        assert serialize(e) == '<s:a xmlns:s="http://s"/>'

    def test_namespace_generated_prefix(self):
        out = serialize(Element("{http://s}a"))
        assert out == '<ns0:a xmlns:ns0="http://s"/>'

    def test_default_namespace(self):
        e = Element("{http://s}a", nsmap={"": "http://s"})
        assert serialize(e) == '<a xmlns="http://s"/>'

    def test_child_reuses_parent_prefix(self):
        e = Element("{http://s}a", nsmap={"s": "http://s"})
        e.subelement("{http://s}b")
        assert serialize(e) == '<s:a xmlns:s="http://s"><s:b/></s:a>'

    def test_attribute_never_uses_default_prefix(self):
        e = Element("{http://s}a", {"{http://s}id": "1"}, nsmap={"": "http://s"})
        out = serialize(e)
        # the attribute must get a real prefix even though '' maps to the uri
        assert 'ns0:id="1"' in out
        assert 'xmlns:ns0="http://s"' in out

    def test_unprefixed_element_under_default_ns_redeclares(self):
        e = Element("{http://s}a", nsmap={"": "http://s"})
        e.subelement("plain")
        out = serialize(e)
        assert '<plain xmlns=""' in out


class TestRoundTrip:
    @pytest.mark.parametrize(
        "doc",
        [
            "<a/>",
            "<a>text</a>",
            '<a x="1"><b y="2">t</b>tail</a>',
            '<s:Envelope xmlns:s="http://se"><s:Body><m:op xmlns:m="urn:m"><p>v</p></m:op></s:Body></s:Envelope>',
            "<a>one<b/>two<c/>three</a>",
        ],
    )
    def test_parse_serialize_parse(self, doc):
        first = parse(doc)
        second = parse(serialize(first))
        assert first.structurally_equal(second)


class TestStreamingWriter:
    def test_manual_events(self):
        w = StreamingWriter()
        w.start("a", {"x": "1"})
        w.characters("hi")
        w.start("b")
        w.end()
        w.end()
        assert w.getvalue() == '<a x="1">hi<b/></a>'

    def test_element_convenience(self):
        w = StreamingWriter()
        w.start("root")
        w.element("leaf", "v")
        w.end()
        assert w.getvalue() == "<root><leaf>v</leaf></root>"

    def test_raw_splice(self):
        w = StreamingWriter()
        w.start("a")
        w.raw("<pre-rendered/>")
        w.end()
        assert w.getvalue() == "<a><pre-rendered/></a>"

    def test_declaration(self):
        w = StreamingWriter(declaration=True)
        w.start("a")
        w.end()
        assert w.getvalue().startswith("<?xml")

    def test_unbalanced_end_raises(self):
        w = StreamingWriter()
        with pytest.raises(XmlNamespaceError):
            w.end()

    def test_getvalue_with_open_element_raises(self):
        w = StreamingWriter()
        w.start("a")
        with pytest.raises(XmlNamespaceError):
            w.getvalue()

    def test_namespaced_stream(self):
        w = StreamingWriter()
        w.start("{http://s}Envelope", nsmap={"soap": "http://s"})
        w.start("{http://s}Body")
        w.end()
        w.end()
        assert (
            w.getvalue()
            == '<soap:Envelope xmlns:soap="http://s"><soap:Body/></soap:Envelope>'
        )

    def test_generated_prefixes_do_not_collide(self):
        w = StreamingWriter()
        w.start("{http://a}root", nsmap={"ns0": "http://a"})
        w.start("{http://b}child")
        w.end()
        w.end()
        out = w.getvalue()
        root = parse(out)
        child = root.element_children()[0]
        assert child.tag == "{http://b}child"


class TestCommentsAndPIs:
    def test_comment(self):
        w = StreamingWriter()
        w.start("a")
        w.comment(" note ")
        w.end()
        assert w.getvalue() == "<a><!-- note --></a>"

    def test_comment_round_trips_through_parser(self):
        w = StreamingWriter()
        w.start("a")
        w.comment("x")
        w.element("b", "v")
        w.end()
        root = parse(w.getvalue())
        assert root.findtext("b") == "v"

    def test_comment_double_dash_rejected(self):
        w = StreamingWriter()
        w.start("a")
        with pytest.raises(XmlNamespaceError):
            w.comment("a -- b")

    def test_comment_trailing_dash_rejected(self):
        w = StreamingWriter()
        w.start("a")
        with pytest.raises(XmlNamespaceError):
            w.comment("ends with -")

    def test_processing_instruction(self):
        w = StreamingWriter()
        w.processing_instruction("stylesheet", 'href="x.xsl"')
        w.start("a")
        w.end()
        assert w.getvalue() == '<?stylesheet href="x.xsl"?><a/>'

    def test_pi_without_data(self):
        w = StreamingWriter()
        w.start("a")
        w.processing_instruction("marker")
        w.end()
        assert w.getvalue() == "<a><?marker?></a>"

    def test_pi_reserved_target_rejected(self):
        w = StreamingWriter()
        with pytest.raises(XmlNamespaceError):
            w.processing_instruction("XML", "data")

    def test_pi_terminator_in_data_rejected(self):
        w = StreamingWriter()
        with pytest.raises(XmlNamespaceError):
            w.processing_instruction("t", "bad ?> data")
