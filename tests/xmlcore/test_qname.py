"""Unit tests for QName and NamespaceScope."""

import pytest

from repro.errors import XmlNamespaceError
from repro.xmlcore.qname import (
    XML_NS,
    NamespaceScope,
    QName,
    is_ncname,
    split_prefixed,
)


class TestNCName:
    @pytest.mark.parametrize("name", ["a", "_x", "soap-env", "Body", "a.b", "tag1", "元素"])
    def test_valid(self, name):
        assert is_ncname(name)

    @pytest.mark.parametrize("name", ["", "1abc", "-a", ".a", "a b", "a:b"])
    def test_invalid(self, name):
        assert not is_ncname(name)


class TestSplitPrefixed:
    def test_no_prefix(self):
        assert split_prefixed("Body") == ("", "Body")

    def test_with_prefix(self):
        assert split_prefixed("soap:Body") == ("soap", "Body")

    def test_two_colons_raises(self):
        with pytest.raises(XmlNamespaceError):
            split_prefixed("a:b:c")

    def test_empty_local_raises(self):
        with pytest.raises(XmlNamespaceError):
            split_prefixed("soap:")

    def test_empty_prefix_raises(self):
        with pytest.raises(XmlNamespaceError):
            split_prefixed(":Body")


class TestQName:
    def test_str_with_uri(self):
        assert str(QName("http://example.org", "Body")) == "{http://example.org}Body"

    def test_str_without_uri(self):
        assert str(QName("", "Body")) == "Body"

    def test_parse_clark(self):
        q = QName.parse("{http://example.org}Body")
        assert q.uri == "http://example.org"
        assert q.local == "Body"

    def test_parse_plain(self):
        q = QName.parse("Body")
        assert q.uri == ""
        assert q.local == "Body"

    def test_parse_unterminated_raises(self):
        with pytest.raises(XmlNamespaceError):
            QName.parse("{http://example.org")

    def test_invalid_local_raises(self):
        with pytest.raises(XmlNamespaceError):
            QName("http://example.org", "bad name")

    def test_equality_and_hash(self):
        a = QName("u", "n")
        b = QName("u", "n")
        assert a == b
        assert hash(a) == hash(b)
        assert a != QName("u", "m")

    def test_round_trip(self):
        q = QName("http://schemas.xmlsoap.org/soap/envelope/", "Envelope")
        assert QName.parse(str(q)) == q


class TestNamespaceScope:
    def test_xml_prefix_prebound(self):
        scope = NamespaceScope()
        assert scope.resolve("xml") == XML_NS

    def test_default_namespace_empty_initially(self):
        scope = NamespaceScope()
        assert scope.resolve("") == ""

    def test_declare_and_resolve(self):
        scope = NamespaceScope()
        scope.push({"soap": "http://soap"})
        assert scope.resolve("soap") == "http://soap"

    def test_undeclared_prefix_raises(self):
        scope = NamespaceScope()
        with pytest.raises(XmlNamespaceError):
            scope.resolve("nope")

    def test_inner_shadows_outer(self):
        scope = NamespaceScope()
        scope.push({"p": "outer"})
        scope.push({"p": "inner"})
        assert scope.resolve("p") == "inner"
        scope.pop()
        assert scope.resolve("p") == "outer"

    def test_pop_restores(self):
        scope = NamespaceScope()
        scope.push({"p": "uri"})
        scope.pop()
        with pytest.raises(XmlNamespaceError):
            scope.resolve("p")

    def test_pop_underflow_raises(self):
        scope = NamespaceScope()
        with pytest.raises(XmlNamespaceError):
            scope.pop()

    def test_default_namespace_declaration(self):
        scope = NamespaceScope()
        scope.push({"": "http://default"})
        assert scope.resolve("") == "http://default"

    def test_resolve_name_element_uses_default(self):
        scope = NamespaceScope()
        scope.push({"": "http://default"})
        assert scope.resolve_name("Body") == QName("http://default", "Body")

    def test_resolve_name_attribute_ignores_default(self):
        scope = NamespaceScope()
        scope.push({"": "http://default"})
        assert scope.resolve_name("id", is_attribute=True) == QName("", "id")

    def test_resolve_name_with_prefix(self):
        scope = NamespaceScope()
        scope.push({"s": "http://s"})
        assert scope.resolve_name("s:Body") == QName("http://s", "Body")

    def test_prefix_for_finds_innermost(self):
        scope = NamespaceScope()
        scope.push({"a": "http://u"})
        scope.push({"b": "http://u"})
        assert scope.prefix_for("http://u") in ("a", "b")

    def test_prefix_for_shadowed_prefix_skipped(self):
        scope = NamespaceScope()
        scope.push({"p": "http://old"})
        scope.push({"p": "http://new"})
        assert scope.prefix_for("http://old") is None

    def test_prefix_for_missing_returns_none(self):
        scope = NamespaceScope()
        assert scope.prefix_for("http://nowhere") is None

    def test_cannot_rebind_xml(self):
        scope = NamespaceScope()
        with pytest.raises(XmlNamespaceError):
            scope.push({"xml": "http://other"})

    def test_cannot_declare_xmlns(self):
        scope = NamespaceScope()
        with pytest.raises(XmlNamespaceError):
            scope.push({"xmlns": "http://other"})

    def test_prefix_to_empty_uri_raises(self):
        scope = NamespaceScope()
        with pytest.raises(XmlNamespaceError):
            scope.push({"p": ""})

    def test_depth(self):
        scope = NamespaceScope()
        assert scope.depth() == 0
        scope.push()
        scope.push()
        assert scope.depth() == 2
