"""Tests for pretty-printing and path lookup."""

import pytest

from repro.errors import XmlError
from repro.xmlcore import parse
from repro.xmlcore.pretty import find_path, find_path_text, pretty_print
from repro.xmlcore.tree import Element


@pytest.fixture
def tree():
    return parse(
        "<root><section><item id='1'>one</item><item id='2'>two</item></section>"
        "<empty/></root>"
    )


class TestPrettyPrint:
    def test_indentation(self, tree):
        out = pretty_print(tree)
        assert "\n  <section>" in out
        assert "\n    <item" in out

    def test_round_trips_structurally(self, tree):
        reparsed = parse(pretty_print(tree))
        # drop the introduced whitespace text nodes before comparing
        def strip_ws(element):
            element.children = [
                c for c in element.children
                if not (isinstance(c, str) and not c.strip())
            ]
            for child in element.element_children():
                strip_ws(child)
            return element

        assert strip_ws(reparsed).structurally_equal(tree)

    def test_leaf_with_text_stays_inline(self, tree):
        out = pretty_print(tree)
        assert '<item id="1">one</item>' in out

    def test_mixed_content_not_mangled(self):
        mixed = parse("<p>before <b>bold</b> after</p>")
        out = pretty_print(mixed)
        assert out == "<p>before <b>bold</b> after</p>"

    def test_empty_element(self):
        assert pretty_print(Element("a")) == "<a/>"

    def test_custom_indent(self, tree):
        out = pretty_print(tree, indent="\t")
        assert "\n\t<section>" in out

    def test_soap_envelope_readable(self):
        from repro.apps.weather import figure4_envelope

        out = pretty_print(figure4_envelope().to_element())
        assert out.count("\n") > 5
        assert parse(out) is not None


class TestFindPath:
    def test_walk(self, tree):
        assert find_path(tree, "section/item").get("id") == "1"

    def test_text(self, tree):
        assert find_path_text(tree, "section/item") == "one"

    def test_single_step(self, tree):
        assert find_path(tree, "empty").local_name == "empty"

    def test_missing_step_names_position(self, tree):
        with pytest.raises(XmlError, match="no <nothere> under <section>"):
            find_path(tree, "section/nothere")

    def test_empty_step_raises(self, tree):
        with pytest.raises(XmlError, match="empty step"):
            find_path(tree, "section//item")

    def test_clark_step(self):
        root = parse('<a xmlns="urn:x"><b>v</b></a>')
        assert find_path_text(root, "{urn:x}b") == "v"
