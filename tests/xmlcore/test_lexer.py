"""Unit tests for the XML tokenizer."""

import pytest

from repro.errors import XmlWellFormednessError
from repro.xmlcore.lexer import (
    CDataToken,
    CommentToken,
    EndTagToken,
    PIToken,
    StartTagToken,
    TextToken,
    XmlDeclToken,
    tokenize,
)


def toks(src):
    return list(tokenize(src))


class TestBasicTokens:
    def test_simple_element(self):
        t = toks("<a>text</a>")
        assert isinstance(t[0], StartTagToken) and t[0].name == "a"
        assert isinstance(t[1], TextToken) and t[1].text == "text"
        assert isinstance(t[2], EndTagToken) and t[2].name == "a"

    def test_self_closing(self):
        (t,) = toks("<a/>")
        assert isinstance(t, StartTagToken)
        assert t.self_closing

    def test_self_closing_with_space(self):
        (t,) = toks("<a />")
        assert t.self_closing

    def test_attributes_double_quoted(self):
        (t,) = toks('<a x="1" y="two"/>')
        assert t.attributes == [("x", "1"), ("y", "two")]

    def test_attributes_single_quoted(self):
        (t,) = toks("<a x='1'/>")
        assert t.attributes == [("x", "1")]

    def test_attribute_whitespace_around_equals(self):
        (t,) = toks('<a x = "1"/>')
        assert t.attributes == [("x", "1")]

    def test_attribute_entity_unescaped(self):
        (t,) = toks('<a x="&lt;&amp;&gt;"/>')
        assert t.attributes == [("x", "<&>")]

    def test_text_entities_unescaped(self):
        t = toks("<a>&amp;&#65;</a>")
        assert t[1].text == "&A"

    def test_end_tag_trailing_space(self):
        t = toks("<a>x</a >")
        assert isinstance(t[2], EndTagToken)


class TestDeclAndMisc:
    def test_xml_declaration(self):
        t = toks('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert isinstance(t[0], XmlDeclToken)
        assert t[0].version == "1.0"
        assert t[0].encoding == "UTF-8"

    def test_declaration_not_first_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks('<a/><?xml version="1.0"?>')

    def test_unsupported_version_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks('<?xml version="2.0"?><a/>')

    def test_processing_instruction(self):
        t = toks("<?target some data?><a/>")
        assert isinstance(t[0], PIToken)
        assert t[0].target == "target"
        assert t[0].data == "some data"

    def test_pi_reserved_target_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks("<a/><?xMl oops?>")

    def test_comment(self):
        t = toks("<a><!-- hi --></a>")
        assert isinstance(t[1], CommentToken)
        assert t[1].text == " hi "

    def test_comment_double_dash_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks("<a><!-- a -- b --></a>")

    def test_cdata(self):
        t = toks("<a><![CDATA[<raw>&stuff]]></a>")
        assert isinstance(t[1], CDataToken)
        assert t[1].text == "<raw>&stuff"

    def test_doctype_rejected(self):
        with pytest.raises(XmlWellFormednessError):
            toks("<!DOCTYPE foo []><a/>")


class TestErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "<a",  # unterminated start tag
            "<a>text</a",  # unterminated end tag
            "<a x=1/>",  # unquoted attribute
            "<a x/>",  # attribute without value
            '<a x="1/>',  # unterminated attribute value
            "<>",  # empty tag name
            "<a><!-- unterminated</a>",
            "<a><![CDATA[ unterminated</a>",
            "<?pi unterminated",
        ],
    )
    def test_malformed_raises(self, src):
        with pytest.raises(XmlWellFormednessError):
            toks(src)

    def test_lt_in_attribute_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks('<a x="<"/>')

    def test_cdata_close_in_text_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks("<a>bad ]]> text</a>")

    def test_illegal_control_char_raises(self):
        with pytest.raises(XmlWellFormednessError):
            toks("<a>\x00</a>")


class TestPositions:
    def test_line_tracking(self):
        t = toks("<a>\n  <b/>\n</a>")
        b = t[2]
        assert isinstance(b, StartTagToken) and b.name == "b"
        assert b.line == 2
        assert b.column == 3

    def test_error_carries_position(self):
        with pytest.raises(XmlWellFormednessError) as exc:
            toks("<a>\n<b x=bad/></a>")
        assert exc.value.line == 2
