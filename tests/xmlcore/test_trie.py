"""Unit tests for the tag trie and its linear baseline."""

import pytest

from repro.xmlcore.trie import LinearTagMatcher, TagTrie


@pytest.fixture(params=[TagTrie, LinearTagMatcher])
def matcher(request):
    return request.param()


class TestCommonBehaviour:
    def test_insert_lookup(self, matcher):
        matcher.insert("Envelope", 1)
        assert matcher.lookup("Envelope") == 1

    def test_missing_returns_none(self, matcher):
        assert matcher.lookup("nope") is None

    def test_contains(self, matcher):
        matcher.insert("Body", "b")
        assert "Body" in matcher
        assert "Bod" not in matcher

    def test_replace(self, matcher):
        matcher.insert("k", 1)
        matcher.insert("k", 2)
        assert matcher.lookup("k") == 2
        assert len(matcher) == 1

    def test_len(self, matcher):
        for i, key in enumerate(["a", "ab", "abc", "b"]):
            matcher.insert(key, i)
        assert len(matcher) == 4

    def test_prefix_not_terminal(self, matcher):
        matcher.insert("GetWeather", 1)
        assert matcher.lookup("Get") is None

    def test_soap_tags(self, matcher):
        tags = ["Envelope", "Header", "Body", "Fault", "faultcode", "faultstring"]
        for i, t in enumerate(tags):
            matcher.insert(t, i)
        for i, t in enumerate(tags):
            assert matcher.lookup(t) == i


class TestTrieSpecific:
    def test_longest_prefix(self):
        t = TagTrie()
        t.insert("http://schemas.xmlsoap.org/", "soap")
        t.insert("http://schemas.xmlsoap.org/soap/envelope/", "env")
        match = t.longest_prefix("http://schemas.xmlsoap.org/soap/envelope/Body")
        assert match == ("http://schemas.xmlsoap.org/soap/envelope/", "env")

    def test_longest_prefix_none(self):
        t = TagTrie()
        t.insert("abc", 1)
        assert t.longest_prefix("xyz") is None

    def test_longest_prefix_partial(self):
        t = TagTrie()
        t.insert("ab", 1)
        t.insert("abcd", 2)
        assert t.longest_prefix("abc") == ("ab", 1)

    def test_keys_sorted(self):
        t = TagTrie()
        for key in ["b", "a", "ab"]:
            t.insert(key, None)
        assert list(t.keys()) == ["a", "ab", "b"]

    def test_empty_key(self):
        t = TagTrie()
        t.insert("", "root")
        assert t.lookup("") == "root"
        assert "" in t
