"""Unit tests for the namespace-aware tree parser."""

import pytest

from repro.errors import XmlNamespaceError, XmlWellFormednessError
from repro.xmlcore import parse
from repro.xmlcore.treebuilder import decode_document


class TestBasicParsing:
    def test_single_element(self):
        root = parse("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_text_content(self):
        root = parse("<a>hello</a>")
        assert root.text == "hello"

    def test_nested(self):
        root = parse("<a><b><c>x</c></b></a>")
        assert root.require("b").require("c").text == "x"

    def test_attributes(self):
        root = parse('<a x="1" y="2"/>')
        assert root.get("x") == "1"
        assert root.get("y") == "2"

    def test_mixed_content_preserved(self):
        root = parse("<a>one<b/>two</a>")
        assert root.children[0] == "one"
        assert root.children[2] == "two"

    def test_cdata_becomes_text(self):
        root = parse("<a><![CDATA[<not-a-tag>]]></a>")
        assert root.text == "<not-a-tag>"

    def test_comments_skipped(self):
        root = parse("<a><!-- note --><b/></a>")
        assert len(root.element_children()) == 1

    def test_declaration_accepted(self):
        root = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert root.tag == "a"

    def test_whitespace_outside_root_ok(self):
        assert parse("  <a/>  \n").tag == "a"

    def test_bytes_input(self):
        assert parse(b"<a>x</a>").text == "x"


class TestNamespaces:
    def test_default_namespace(self):
        root = parse('<a xmlns="http://u"><b/></a>')
        assert root.tag == "{http://u}a"
        assert root.element_children()[0].tag == "{http://u}b"

    def test_prefixed(self):
        root = parse('<s:a xmlns:s="http://s"/>')
        assert root.tag == "{http://s}a"

    def test_attribute_no_default_namespace(self):
        root = parse('<a xmlns="http://u" id="7"/>')
        assert root.get("id") == "7"

    def test_prefixed_attribute(self):
        root = parse('<a xmlns:p="http://p" p:id="7"/>')
        assert root.get("{http://p}id") == "7"

    def test_undeclared_prefix_raises(self):
        with pytest.raises(XmlNamespaceError):
            parse("<p:a/>")

    def test_scope_ends_with_element(self):
        with pytest.raises(XmlNamespaceError):
            parse('<a><b xmlns:p="http://p"/><p:c/></a>')

    def test_duplicate_expanded_attribute_raises(self):
        with pytest.raises(XmlWellFormednessError):
            parse('<a xmlns:p="http://u" xmlns:q="http://u" p:x="1" q:x="2"/>')

    def test_nsmap_recorded(self):
        root = parse('<a xmlns:s="http://s"/>')
        assert root.nsmap == {"s": "http://s"}

    def test_soap_envelope_shape(self):
        doc = (
            '<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/">'
            "<SOAP-ENV:Body><m:echo xmlns:m='urn:svc'><payload>hi</payload></m:echo>"
            "</SOAP-ENV:Body></SOAP-ENV:Envelope>"
        )
        root = parse(doc)
        assert root.tag == "{http://schemas.xmlsoap.org/soap/envelope/}Envelope"
        body = root.element_children()[0]
        echo = body.element_children()[0]
        assert echo.tag == "{urn:svc}echo"
        assert echo.require("payload").text == "hi"


class TestWellFormedness:
    @pytest.mark.parametrize(
        "src",
        [
            "",  # empty document
            "   ",  # whitespace only
            "<a></b>",  # mismatched tags
            "<a>",  # unclosed
            "<a/><b/>",  # two roots
            "text<a/>",  # text before root
            "<a/>trailing",  # text after root
            "</a>",  # end tag first
            '<a x="1" x="2"/>',  # duplicate attribute
        ],
    )
    def test_rejected(self, src):
        with pytest.raises(XmlWellFormednessError):
            parse(src)

    def test_mismatch_across_namespaces_rejected(self):
        with pytest.raises(XmlWellFormednessError):
            parse('<p:a xmlns:p="http://u" xmlns:q="http://v"></q:a>')

    def test_same_expanded_name_different_prefix_ok(self):
        root = parse('<p:a xmlns:p="http://u" xmlns:q="http://u"></q:a>')
        assert root.tag == "{http://u}a"


class TestDecodeDocument:
    def test_utf8_plain(self):
        assert decode_document("<a>北京</a>".encode("utf-8")) == "<a>北京</a>"

    def test_utf8_bom(self):
        assert decode_document(b"\xef\xbb\xbf<a/>") == "<a/>"

    def test_utf16_le_bom(self):
        data = ("\ufeff" + "<a>x</a>").encode("utf-16-le")
        assert decode_document(data) == "<a>x</a>"

    def test_utf16_be_bom(self):
        data = ("\ufeff" + "<a>x</a>").encode("utf-16-be")
        assert decode_document(data) == "<a>x</a>"

    def test_declared_encoding(self):
        doc = '<?xml version="1.0" encoding="latin-1"?><a>caf\xe9</a>'
        assert decode_document(doc.encode("latin-1")) == doc

    def test_bogus_declared_encoding_is_xml_error(self):
        doc = b'<?xml version="1.0" encoding="no-such-codec"?><a/>'
        with pytest.raises(XmlWellFormednessError, match="undecodable"):
            decode_document(doc)

    def test_malformed_utf8_is_xml_error(self):
        with pytest.raises(XmlWellFormednessError, match="undecodable"):
            decode_document(b"<a>\xff\xfa</a>")
