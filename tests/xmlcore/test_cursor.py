"""Tests for the pull cursor and the envelope scan fast path."""

import pytest

from repro.errors import SoapError, XmlWellFormednessError
from repro.soap.constants import SOAP_ENV_NS
from repro.soap.envelope import Envelope, iter_body_entries
from repro.xmlcore.cursor import XmlCursor
from repro.xmlcore import parse
from repro.xmlcore.writer import serialize

ENV = (
    f'<soapenv:Envelope xmlns:soapenv="{SOAP_ENV_NS}">'
    "<soapenv:Header><h:token xmlns:h=\"urn:h\">secret</h:token></soapenv:Header>"
    "<soapenv:Body>"
    '<op:echo xmlns:op="urn:op"><payload>hi</payload></op:echo>'
    '<op:echo xmlns:op="urn:op"><payload>there</payload></op:echo>'
    "</soapenv:Body>"
    "</soapenv:Envelope>"
)


class TestXmlCursor:
    def test_root_skips_prolog(self):
        cursor = XmlCursor('<?xml version="1.0"?><!-- c --><r/>')
        assert cursor.root().name == "r"

    def test_enter_and_children(self):
        cursor = XmlCursor("<r><a/><b>t</b></r>")
        root = cursor.enter(cursor.root())
        assert root.tag == "r"
        first = cursor.next_child()
        assert first.name == "a"
        cursor.skip(first)
        second = cursor.next_child()
        assert second.name == "b"
        cursor.skip(second)
        assert cursor.next_child() is None

    def test_read_element_matches_tree_parser(self):
        document = '<r xmlns="urn:d"><a x="1">text<b/></a></r>'
        cursor = XmlCursor(document)
        cursor.enter(cursor.root())
        subtree = cursor.read_element(cursor.next_child())
        expected = parse(document).element_children()[0]
        assert subtree.structurally_equal(expected)

    def test_skip_does_not_expand_namespaces(self):
        # The skipped subtree uses an undeclared prefix: the tree parser
        # rejects the document, the cursor never looks at it.
        document = "<r><junk><bad:x>1</bad:x></junk><keep/></r>"
        cursor = XmlCursor(document)
        cursor.enter(cursor.root())
        cursor.skip(cursor.next_child())
        assert cursor.next_child().name == "keep"

    def test_mismatched_end_tag_raises(self):
        cursor = XmlCursor("<r><a></b></r>")
        cursor.enter(cursor.root())
        with pytest.raises(XmlWellFormednessError):
            cursor.read_element(cursor.next_child())

    def test_unclosed_document_raises(self):
        cursor = XmlCursor("<r><a>")
        cursor.enter(cursor.root())
        with pytest.raises(XmlWellFormednessError):
            cursor.read_element(cursor.next_child())

    def test_finish_rejects_second_root(self):
        cursor = XmlCursor("<r/><r2/>")
        cursor.enter(cursor.root())
        assert cursor.next_child() is None
        with pytest.raises(XmlWellFormednessError):
            cursor.finish()


class TestIterBodyEntries:
    def test_yields_body_entries(self):
        entries = list(iter_body_entries(ENV))
        assert [e.local_name for e in entries] == ["echo", "echo"]
        assert entries[0].findtext("payload") == "hi"

    def test_matches_tree_parse(self):
        pulled = list(iter_body_entries(ENV))
        full = Envelope.parse(ENV, server=True).body_entries
        assert len(pulled) == len(full)
        for a, b in zip(pulled, full):
            assert a.structurally_equal(b)

    def test_header_with_undeclared_prefix_is_skipped(self):
        # Token-level skipping means header contents are never expanded.
        document = ENV.replace("<h:token xmlns:h=\"urn:h\">", "<h:token>")
        with pytest.raises(Exception):
            Envelope.parse(document, server=True)
        assert [e.local_name for e in iter_body_entries(document)] == ["echo", "echo"]

    def test_wrong_namespace(self):
        document = '<Envelope xmlns="urn:nope"><Body><a/></Body></Envelope>'
        with pytest.raises(SoapError, match="unsupported SOAP envelope namespace"):
            list(iter_body_entries(document))

    def test_not_an_envelope(self):
        with pytest.raises(SoapError, match="not a SOAP Envelope"):
            list(iter_body_entries("<r/>"))

    def test_no_body(self):
        document = f'<e:Envelope xmlns:e="{SOAP_ENV_NS}"><e:Header/></e:Envelope>'
        with pytest.raises(SoapError, match="no Body"):
            list(iter_body_entries(document))

    def test_empty_body(self):
        document = f'<e:Envelope xmlns:e="{SOAP_ENV_NS}"><e:Body/></e:Envelope>'
        with pytest.raises(SoapError, match="Body is empty"):
            list(iter_body_entries(document))

    def test_elements_after_body(self):
        document = (
            f'<e:Envelope xmlns:e="{SOAP_ENV_NS}">'
            "<e:Body><a/></e:Body><stray/></e:Envelope>"
        )
        with pytest.raises(SoapError, match="after SOAP Body"):
            list(iter_body_entries(document))

    def test_parse_default_skips_headers(self):
        envelope = Envelope.parse(ENV)
        assert envelope.header_entries == []
        assert len(envelope.body_entries) == 2
        # round-trips through the writer like a tree-parsed envelope
        assert serialize(envelope.body_entries[0]).startswith("<")

    def test_accepts_bytes(self):
        entries = list(iter_body_entries(ENV.encode("utf-8")))
        assert len(entries) == 2
