"""Unit tests for the SAX-style push/pull parsers."""

import pytest

from repro.errors import XmlWellFormednessError
from repro.xmlcore.qname import QName
from repro.xmlcore.sax import (
    ContentHandler,
    EndEvent,
    PullParser,
    StartEvent,
    TextEvent,
    iterate_events,
    sax_parse,
)


class Recorder(ContentHandler):
    def __init__(self):
        self.events = []

    def start_document(self):
        self.events.append(("startdoc",))

    def end_document(self):
        self.events.append(("enddoc",))

    def start_element(self, name, attributes):
        self.events.append(("start", str(name), dict(attributes)))

    def end_element(self, name):
        self.events.append(("end", str(name)))

    def characters(self, text):
        self.events.append(("chars", text))


class TestSaxParse:
    def test_event_sequence(self):
        rec = Recorder()
        sax_parse('<a x="1">hi<b/></a>', rec)
        assert rec.events == [
            ("startdoc",),
            ("start", "a", {"x": "1"}),
            ("chars", "hi"),
            ("start", "b", {}),
            ("end", "b"),
            ("end", "a"),
            ("enddoc",),
        ]

    def test_namespace_expansion(self):
        rec = Recorder()
        sax_parse('<s:a xmlns:s="http://s"/>', rec)
        assert rec.events[1] == ("start", "{http://s}a", {})

    def test_default_handler_methods_are_noops(self):
        sax_parse("<a>x</a>", ContentHandler())

    def test_malformed_raises(self):
        with pytest.raises(XmlWellFormednessError):
            sax_parse("<a><b></a>", Recorder())


class TestIterateEvents:
    def test_depths(self):
        events = list(iterate_events("<a><b>t</b></a>"))
        a_start, b_start, text, b_end, a_end = events
        assert isinstance(a_start, StartEvent) and a_start.depth == 0
        assert isinstance(b_start, StartEvent) and b_start.depth == 1
        assert isinstance(text, TextEvent) and text.depth == 2
        assert isinstance(b_end, EndEvent) and b_end.depth == 1
        assert isinstance(a_end, EndEvent) and a_end.depth == 0

    def test_self_closing_emits_both(self):
        events = list(iterate_events("<a/>"))
        assert isinstance(events[0], StartEvent)
        assert isinstance(events[1], EndEvent)
        assert events[0].name == events[1].name == QName("", "a")

    def test_two_roots_raise(self):
        with pytest.raises(XmlWellFormednessError):
            list(iterate_events("<a/><b/>"))

    def test_unclosed_raises(self):
        with pytest.raises(XmlWellFormednessError):
            list(iterate_events("<a><b></b>"))

    def test_empty_raises(self):
        with pytest.raises(XmlWellFormednessError):
            list(iterate_events("   "))

    def test_bytes_input(self):
        events = list(iterate_events(b"<a>x</a>"))
        assert any(isinstance(e, TextEvent) and e.text == "x" for e in events)


class TestPullParser:
    def test_iteration(self):
        pp = PullParser("<a><b/></a>")
        names = [e.name.local for e in pp if isinstance(e, StartEvent)]
        assert names == ["a", "b"]

    def test_push_back(self):
        pp = PullParser("<a/>")
        first = next(pp)
        pp.push_back(first)
        assert next(pp) is first

    def test_skip_subtree(self):
        pp = PullParser("<root><skip><deep><deeper/></deep></skip><keep/></root>")
        next(pp)  # <root>
        skip_start = next(pp)
        assert isinstance(skip_start, StartEvent) and skip_start.name.local == "skip"
        pp.skip_subtree(skip_start)
        nxt = next(pp)
        assert isinstance(nxt, StartEvent) and nxt.name.local == "keep"

    def test_skip_subtree_then_exhaust(self):
        pp = PullParser("<root><a><b/></a></root>")
        next(pp)
        a = next(pp)
        pp.skip_subtree(a)
        remaining = list(pp)
        assert len(remaining) == 1
        assert isinstance(remaining[0], EndEvent)
        assert remaining[0].name.local == "root"


class TestProcessingInstructions:
    def test_pi_event_delivered(self):
        from repro.xmlcore.sax import PIEvent

        events = list(iterate_events("<a><?target some data?></a>"))
        pis = [e for e in events if isinstance(e, PIEvent)]
        assert len(pis) == 1
        assert pis[0].target == "target"
        assert pis[0].data == "some data"
        assert pis[0].depth == 1

    def test_handler_callback_invoked(self):
        class PIRecorder(ContentHandler):
            def __init__(self):
                self.pis = []

            def processing_instruction(self, target, data):
                self.pis.append((target, data))

        recorder = PIRecorder()
        sax_parse("<?style sheet?><a><?inner x?></a>", recorder)
        assert recorder.pis == [("style", "sheet"), ("inner", "x")]

    def test_pull_parser_skip_subtree_ignores_pis(self):
        pp = PullParser("<root><skip><?pi here?></skip><keep/></root>")
        next(pp)
        skip = next(pp)
        pp.skip_subtree(skip)
        nxt = next(pp)
        assert isinstance(nxt, StartEvent) and nxt.name.local == "keep"
