"""Unit tests for XML entity escaping/unescaping."""

import pytest

from repro.errors import XmlWellFormednessError
from repro.xmlcore.escape import (
    escape_attribute,
    escape_text,
    is_xml_char,
    unescape,
)


class TestEscapeText:
    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"

    def test_ampersand(self):
        assert escape_text("a & b") == "a &amp; b"

    def test_angle_brackets(self):
        assert escape_text("<tag>") == "&lt;tag&gt;"

    def test_quotes_not_escaped_in_text(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_empty(self):
        assert escape_text("") == ""

    def test_mixed(self):
        assert escape_text("1 < 2 && 3 > 2") == "1 &lt; 2 &amp;&amp; 3 &gt; 2"


class TestEscapeAttribute:
    def test_double_quote_escaped(self):
        assert escape_attribute('a"b') == "a&quot;b"

    def test_single_quote_escaped(self):
        assert escape_attribute("a'b") == "a&apos;b"

    def test_angle_and_amp(self):
        assert escape_attribute("<&>") == "&lt;&amp;&gt;"

    def test_plain_unchanged(self):
        assert escape_attribute("Beijing, China") == "Beijing, China"


class TestUnescape:
    def test_named_entities(self):
        assert unescape("&lt;&gt;&amp;&quot;&apos;") == "<>&\"'"

    def test_decimal_reference(self):
        assert unescape("&#65;&#66;") == "AB"

    def test_hex_reference(self):
        assert unescape("&#x41;&#x6a;") == "Aj"

    def test_hex_uppercase_x(self):
        assert unescape("&#X41;") == "A"

    def test_unicode_reference(self):
        assert unescape("&#x5317;&#x4eac;") == "北京"

    def test_no_entities_fast_path(self):
        s = "no entities here"
        assert unescape(s) is s

    def test_unterminated_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("a &amp b")

    def test_unknown_entity_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("&nbsp;")

    def test_empty_entity_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("&;")

    def test_bad_decimal_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("&#1f;")

    def test_bad_hex_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("&#xzz;")

    def test_illegal_char_reference_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("&#0;")

    def test_surrogate_reference_raises(self):
        with pytest.raises(XmlWellFormednessError):
            unescape("&#xD800;")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        ["", "plain", "<>&\"'", "tab\tnewline\n", "中文 text", "a&b<c>d", "&#fake;"],
    )
    def test_text_round_trip(self, value):
        assert unescape(escape_text(value)) == value

    @pytest.mark.parametrize("value", ["", "a\"b'c", "<&>", "x &amp; y"])
    def test_attribute_round_trip(self, value):
        assert unescape(escape_attribute(value)) == value


class TestIsXmlChar:
    def test_control_chars_rejected(self):
        assert not is_xml_char(0x0)
        assert not is_xml_char(0x8)
        assert not is_xml_char(0x1F)

    def test_whitespace_allowed(self):
        assert is_xml_char(0x9)
        assert is_xml_char(0xA)
        assert is_xml_char(0xD)

    def test_bmp_allowed(self):
        assert is_xml_char(ord("a"))
        assert is_xml_char(0x4E2D)  # 中

    def test_surrogates_rejected(self):
        assert not is_xml_char(0xD800)
        assert not is_xml_char(0xDFFF)

    def test_ffff_rejected(self):
        assert not is_xml_char(0xFFFE)
        assert not is_xml_char(0xFFFF)

    def test_astral_allowed(self):
        assert is_xml_char(0x1F600)
        assert is_xml_char(0x10FFFF)
        assert not is_xml_char(0x110000)
