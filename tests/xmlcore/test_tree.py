"""Unit tests for the element tree model."""

import pytest

from repro.errors import XmlError
from repro.xmlcore.qname import QName
from repro.xmlcore.tree import Element


@pytest.fixture
def envelope():
    env = Element("{http://soap}Envelope")
    body = env.subelement("{http://soap}Body")
    req = body.subelement("{http://svc}echo")
    req.subelement("payload", text="hello")
    return env


class TestConstruction:
    def test_tag_from_qname(self):
        e = Element(QName("http://u", "n"))
        assert e.tag == "{http://u}n"

    def test_append_text_and_element(self):
        e = Element("root")
        e.append("text")
        e.append(Element("child"))
        assert len(e.children) == 2

    def test_append_bad_type_raises(self):
        e = Element("root")
        with pytest.raises(XmlError):
            e.append(42)

    def test_subelement_with_text(self):
        e = Element("root")
        child = e.subelement("item", {"id": "1"}, text="v")
        assert child.text == "v"
        assert child.get("id") == "1"
        assert e.children == [child]

    def test_extend(self):
        e = Element("root")
        e.extend([Element("a"), "txt", Element("b")])
        assert len(e.children) == 3

    def test_set_get(self):
        e = Element("root")
        e.set(QName("http://a", "attr"), "v")
        assert e.get("{http://a}attr") == "v"
        assert e.get("missing") is None
        assert e.get("missing", "dflt") == "dflt"


class TestInspection:
    def test_qname_parts(self):
        e = Element("{http://u}local")
        assert e.namespace == "http://u"
        assert e.local_name == "local"

    def test_text_direct_only(self):
        e = Element("root")
        e.append("a")
        child = e.subelement("c", text="inner")
        e.append("b")
        assert e.text == "ab"
        assert e.full_text() == "ainnerb"
        assert child.text == "inner"

    def test_element_children_filters_text(self):
        e = Element("root")
        e.append("txt")
        c = e.subelement("c")
        assert e.element_children() == [c]

    def test_iter_preorder(self, envelope):
        tags = [el.local_name for el in envelope.iter()]
        assert tags == ["Envelope", "Body", "echo", "payload"]

    def test_find_by_local_name(self, envelope):
        assert envelope.find("Body") is not None

    def test_find_by_clark_name(self, envelope):
        assert envelope.find("{http://soap}Body") is not None
        assert envelope.find("{http://wrong}Body") is None

    def test_findall(self):
        e = Element("root")
        e.subelement("item")
        e.subelement("item")
        e.subelement("other")
        assert len(e.findall("item")) == 2

    def test_findtext(self):
        e = Element("root")
        e.subelement("name", text="value")
        assert e.findtext("name") == "value"
        assert e.findtext("missing") is None
        assert e.findtext("missing", "d") == "d"

    def test_require_present(self, envelope):
        assert envelope.require("Body").local_name == "Body"

    def test_require_missing_raises(self, envelope):
        with pytest.raises(XmlError):
            envelope.require("Header")


class TestEqualityAndCopy:
    def test_structural_equality(self, envelope):
        assert envelope.structurally_equal(envelope.copy())

    def test_adjacent_text_merged_for_equality(self):
        a = Element("r")
        a.append("he")
        a.append("llo")
        b = Element("r")
        b.append("hello")
        assert a.structurally_equal(b)

    def test_empty_text_ignored_for_equality(self):
        a = Element("r")
        a.append("")
        b = Element("r")
        assert a.structurally_equal(b)

    def test_different_attrs_not_equal(self):
        a = Element("r", {"x": "1"})
        b = Element("r", {"x": "2"})
        assert not a.structurally_equal(b)

    def test_different_tag_not_equal(self):
        assert not Element("a").structurally_equal(Element("b"))

    def test_different_child_count_not_equal(self):
        a = Element("r")
        a.subelement("c")
        assert not a.structurally_equal(Element("r"))

    def test_text_vs_element_child_not_equal(self):
        a = Element("r")
        a.append("c")
        b = Element("r")
        b.subelement("c")
        assert not a.structurally_equal(b)

    def test_copy_is_deep(self, envelope):
        clone = envelope.copy()
        clone.require("Body").require("echo").set("new", "attr")
        assert envelope.require("Body").require("echo").get("new") is None
