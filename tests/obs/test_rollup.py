"""Ewma and ObsRollup under an injected monotonic clock: convergence,
fault-class accounting, and registry integration — all deterministic."""

import pytest

from repro.obs import MetricsRegistry, ObsRollup, rollup_key
from repro.obs.rollup import Ewma


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestEwma:
    def test_first_observation_seeds(self):
        ewma = Ewma(half_life_s=30.0)
        assert not ewma.seeded
        assert ewma.update(0.25, now=10.0) == 0.25
        assert ewma.seeded and ewma.value == 0.25

    def test_one_half_life_moves_halfway(self):
        ewma = Ewma(half_life_s=10.0)
        ewma.update(0.0, now=0.0)
        ewma.update(1.0, now=10.0)  # exactly one half-life later
        assert ewma.value == pytest.approx(0.5)

    def test_converges_to_constant_input(self):
        ewma = Ewma(half_life_s=5.0)
        now = 0.0
        for _ in range(50):
            ewma.update(0.125, now)
            now += 1.0
        assert ewma.value == pytest.approx(0.125)

    def test_step_change_decays_deterministically(self):
        ewma = Ewma(half_life_s=10.0)
        ewma.update(1.0, now=0.0)
        # after three half-lives of zeros the residue is 1/8
        for i in (10.0, 20.0, 30.0):
            ewma.update(0.0, now=i)
        assert ewma.value == pytest.approx(1.0 / 8.0)

    def test_zero_dt_burst_still_moves(self):
        ewma = Ewma(half_life_s=30.0)
        ewma.update(0.0, now=5.0)
        before = ewma.value
        ewma.update(1.0, now=5.0)  # same instant: gain floored at 1/64
        assert ewma.value == pytest.approx(before + (1.0 - before) / 64.0)

    def test_rejects_nonpositive_half_life(self):
        with pytest.raises(ValueError):
            Ewma(half_life_s=0.0)


class TestObsRollup:
    def make(self, half_life=10.0):
        clock = FakeClock()
        rollup = ObsRollup("urn:svc", "op", half_life_s=half_life, clock=clock)
        return rollup, clock

    def test_latency_ewma_is_deterministic_under_injected_clock(self):
        rollup, clock = self.make()
        rollup.observe(0.100)
        clock.advance(10.0)
        rollup.observe(0.300)  # one half-life: halfway from 0.1 to 0.3
        assert rollup.latency_s() == pytest.approx(0.200)
        snap = rollup.snapshot()
        assert snap["latency_ewma_s"] == pytest.approx(0.200)
        assert snap["calls"] == 2 and snap["faults"] == 0

    def test_error_rate_splits_by_fault_class(self):
        rollup, clock = self.make()
        rollup.observe(0.01)  # success seeds every EWMA at 0
        clock.advance(10.0)
        rollup.observe(0.01, "shed")  # one half-life: each rate moves to 0.5
        snap = rollup.snapshot()
        assert snap["error_rate"] == pytest.approx(0.5)
        assert snap["error_rate_by_class"]["shed"] == pytest.approx(0.5)
        # sheds are retryable by definition; timeouts did not happen
        assert snap["error_rate_by_class"]["retryable"] == pytest.approx(0.5)
        assert snap["error_rate_by_class"]["timeout"] == pytest.approx(0.0)
        assert snap["faults"] == 1

    def test_fatal_faults_count_overall_but_not_retryable(self):
        rollup, clock = self.make()
        rollup.observe(0.01, "fatal")
        snap = rollup.snapshot()
        assert snap["error_rate"] == pytest.approx(1.0)
        assert snap["error_rate_by_class"]["retryable"] == pytest.approx(0.0)

    def test_in_flight_gauge_brackets(self):
        rollup, _ = self.make()
        rollup.begin()
        rollup.begin()
        assert rollup.in_flight == 2
        rollup.done()
        assert rollup.in_flight == 1
        assert rollup.snapshot()["in_flight"] == 1

    def test_latency_quantiles_come_from_the_sketch(self):
        rollup, clock = self.make()
        for ms in range(1, 101):
            rollup.observe(ms / 1000.0)
            clock.advance(0.5)
        assert rollup.latency_quantile(0.5) == pytest.approx(0.050, rel=0.02)
        assert rollup.snapshot()["latency_p99_s"] == pytest.approx(0.100, rel=0.02)


class TestRegistryIntegration:
    def test_rollup_is_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.rollup("urn:svc", "op")
        assert registry.rollup("urn:svc", "op") is a
        assert registry.rollup("urn:svc", "other") is not a

    def test_snapshot_carries_rollups_keyed_by_target(self):
        registry = MetricsRegistry()
        registry.rollup("urn:svc", "op").observe(0.05)
        snap = registry.snapshot()
        key = rollup_key("urn:svc", "op")
        assert key == "urn:svc#op"
        doc = snap["rollups"][key]
        assert doc["service"] == "urn:svc" and doc["operation"] == "op"
        assert doc["calls"] == 1
