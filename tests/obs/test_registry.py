"""Unit tests for the unified metrics registry."""

import threading

import pytest

from repro.obs.registry import (
    DEFAULT_BOUNDS,
    LATENCY_BOUNDS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        c = Counter()
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("inflight")
        g.set(3.0)
        g.add(2.0)
        g.add(-1.0)
        assert g.value == 4.0
        assert g.snapshot() == 4.0


class TestHistogram:
    def test_inclusive_upper_bounds(self):
        h = Histogram(bounds=(1, 2, 4))
        for v in (0, 1):
            h.record(v)
        h.record(2)
        h.record(3)
        h.record(4)
        h.record(5)
        snap = h.snapshot()
        assert snap["buckets"] == {"<=1": 2, "<=2": 1, "<=4": 2, ">4": 1}
        assert snap["total"] == 6

    def test_bisect_matches_linear_scan_on_every_boundary(self):
        h = Histogram(bounds=DEFAULT_BOUNDS)
        # every boundary, one below, one above, plus far overflow
        values = []
        for bound in DEFAULT_BOUNDS:
            values += [bound - 0.5, bound, bound + 0.5]
        values.append(10_000)
        for v in values:
            h.record(v)

        def linear_bucket(value):
            for i, bound in enumerate(DEFAULT_BOUNDS):
                if value <= bound:
                    return i
            return None  # overflow

        expected = [0] * len(DEFAULT_BOUNDS)
        overflow = 0
        for v in values:
            i = linear_bucket(v)
            if i is None:
                overflow += 1
            else:
                expected[i] += 1
        assert h.counts == expected
        assert h.overflow == overflow

    def test_float_bounds_render_without_trailing_zeroes(self):
        h = Histogram(bounds=LATENCY_BOUNDS_S)
        h.record(0.0002)
        snap = h.snapshot()
        assert "<=0.00025" in snap["buckets"]
        assert snap["buckets"]["<=0.00025"] == 1
        # integer bounds keep their integer labels
        assert "<=1" in snap["buckets"]

    def test_mean_and_sum(self):
        h = Histogram(bounds=(10,))
        h.record(2)
        h.record(4)
        assert h.mean == 3.0
        assert h.snapshot()["mean"] == 3.0
        assert Histogram(bounds=(1,)).mean == 0.0

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(4, 2, 1))


class TestMetricsRegistry:
    def test_instruments_are_created_once(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        # bounds apply only on first creation
        h = reg.histogram("d", (1, 2))
        assert reg.histogram("d", (9, 99)) is h
        assert h.bounds == (1, 2)

    def test_snapshot_groups_by_kind_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc()
        reg.counter("a.count").inc(2)
        reg.gauge("depth").set(7)
        reg.histogram("lat", (1,)).record(0.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["counters"]["a.count"] == 2
        assert snap["gauges"]["depth"] == 7
        assert snap["histograms"]["lat"]["total"] == 1
