"""Integration: the queryable span store over real servers — trace
trees for packed calls, the /trace and /traces routes, and tail
sampling retaining every fault/shed trace in a seeded chaos run."""

import json
import random

import pytest

from repro.bench.workloads import echo_calls, echo_testbed, make_invoker
from repro.core.batch import PackBatch
from repro.errors import SoapFaultError
from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs import FLAG_FAULT, FLAG_SHED, Observability, SpanStore
from repro.resilience.policy import CallPolicy


@pytest.fixture(params=["threaded", "evented"])
def backend(request):
    """The span store is fed by both protocol backends; the evented
    loop needs real sockets, so it runs on the loopback profile."""
    return request.param


def bed_kwargs(backend):
    """echo_testbed keyword arguments for the given protocol backend."""
    profile = "inproc" if backend == "threaded" else "loopback"
    return {"profile": profile, "backend": backend}


def store_testbed(**store_kwargs):
    store = SpanStore(rng=random.Random(7), **store_kwargs)
    obs = Observability(span_store=store)
    return store, obs


def count_name(node, name):
    return (node["name"] == name) + sum(
        count_name(child, name) for child in node["children"]
    )


class TestPackedTraceTree:
    @pytest.mark.parametrize("architecture", ["staged", "common"])
    def test_trace_route_returns_one_execute_child_per_pack_entry(
        self, architecture, backend
    ):
        """A packed Parallel_Method call renders as a ``server.handle``
        tree carrying one ``execute`` child span per pack entry."""
        store, obs = store_testbed(sample_rate=1.0)
        m = 8
        with echo_testbed(
            architecture=architecture, observability=obs, **bed_kwargs(backend)
        ) as bed:
            proxy = bed.make_proxy()
            invoker = make_invoker("our-approach", proxy)
            results = invoker.invoke_all(echo_calls(m, 10), CallPolicy(timeout=60))
            trace_id = proxy.last_trace_id
            with HttpConnection(bed.transport, bed.address) as conn:
                response = conn.request(
                    HttpRequest(
                        "GET", f"/trace/{trace_id}", Headers({"Host": "t"})
                    )
                )
            proxy.close()
        assert len(results) == m
        assert response.status == 200
        assert response.headers.get("Content-Type") == "application/json"
        tree = json.loads(response.body)
        assert tree["trace_id"] == trace_id

        roots = {node["name"]: node for node in tree["roots"]}
        handle = roots["server.handle"]
        # every pack entry executed as a child span of the request tree
        children = [c["name"] for c in handle["children"]]
        assert children.count("execute") == m
        # the SOAP phases nest under the same root
        for phase in ("soap.parse", "spi.unpack", "spi.pack", "soap.serialize"):
            assert count_name(handle, phase) == 1, phase
        # execute children carry the operation name
        executes = [c for c in handle["children"] if c["name"] == "execute"]
        assert all(c["detail"] == "echo" for c in executes)

    def test_traces_route_lists_slowest_with_stats(self, backend):
        store, obs = store_testbed(sample_rate=1.0)
        with echo_testbed(observability=obs, **bed_kwargs(backend)) as bed:
            proxy = bed.make_proxy()
            invoker = make_invoker("our-approach", proxy)
            invoker.invoke_all(echo_calls(4, 10), CallPolicy(timeout=60))
            with HttpConnection(bed.transport, bed.address) as conn:
                listing = conn.request(
                    HttpRequest(
                        "GET", "/traces?slowest=2", Headers({"Host": "t"})
                    )
                )
                missing = conn.request(
                    HttpRequest("GET", "/trace/feedfacedeadbeef", Headers({"Host": "t"}))
                )
            proxy.close()
        assert listing.status == 200
        doc = json.loads(listing.body)
        assert len(doc["traces"]) >= 1
        assert {"trace_id", "duration_s", "spans", "flags"} <= set(doc["traces"][0])
        assert doc["stats"]["kept"] >= 1
        assert missing.status == 404

    def test_routes_404_without_a_store(self, backend):
        obs = Observability()  # no span store attached
        with echo_testbed(observability=obs, **bed_kwargs(backend)) as bed:
            with HttpConnection(bed.transport, bed.address) as conn:
                listing = conn.request(
                    HttpRequest("GET", "/traces", Headers({"Host": "t"}))
                )
        assert listing.status == 404


class TestSeededChaosRetention:
    def test_every_fault_trace_survives_sampling(self, backend):
        """With sampling at its harshest (rate 0), a seeded run mixing
        boring echoes with faulting calls retains *every* fault trace."""
        store, obs = store_testbed(sample_rate=0.0)
        fault_ids = []
        with echo_testbed(observability=obs, **bed_kwargs(backend)) as bed:
            proxy = bed.make_proxy()
            for i in range(40):
                proxy.call("echo", payload=f"x{i}")
            for i in range(8):
                with pytest.raises(SoapFaultError):
                    proxy.call("noSuchOperation", payload="boom")
                fault_ids.append(proxy.last_trace_id)
            proxy.close()
        stats = store.stats()
        assert stats["dropped"] > 0, "sampling never engaged — test is vacuous"
        assert set(fault_ids) <= set(store.flagged_ids([FLAG_FAULT]))

    def test_shed_pack_entries_flag_the_trace_under_overload(self, backend):
        """Partial-success packs answer HTTP 200; the per-entry
        Server.Busy faults must still flag the trace for retention."""
        store, obs = store_testbed(sample_rate=0.0)
        with echo_testbed(
            app_workers=1,
            app_queue_limit=2,
            observability=obs,
            **bed_kwargs(backend),
        ) as bed:
            proxy = bed.make_proxy()
            batch = PackBatch(proxy)
            futures = [
                batch.call("delayedEcho", payload=f"s{i}", delay_ms=40)
                for i in range(16)
            ]
            batch.flush()
            errors = [f.exception(timeout=30) for f in futures]
            trace_id = proxy.last_trace_id
            proxy.close()
        shed = sum(
            1
            for e in errors
            if isinstance(e, SoapFaultError) and e.faultcode == "Server.Busy"
        )
        assert shed > 0, "overload did not shed — test is vacuous"
        assert trace_id in store.flagged_ids([FLAG_SHED])
        tree = store.get(trace_id)
        assert FLAG_SHED in tree["flags"]
