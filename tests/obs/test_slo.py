"""SLO checker: budget evaluation over bench trajectories and live
snapshots, plus the CLI's exit-code contract."""

import json

import pytest

from repro.obs.slo import (
    evaluate_bench,
    evaluate_snapshot,
    main,
    pick_entry,
    summarize,
)

CONFIG = {
    "bench": {
        "fig7": {
            "overhead_pct": {"max": 5.0},
            "wire_saved_pct": {"min": 90.0},
        }
    },
    "live": {
        "targets": {
            "urn:svc#op": {
                "latency_p99_s": {"max": 0.25},
                "error_rate_by_class.shed": {"max": 0.2},
            }
        },
        "sketches": {"span.execute.seconds": {"quantiles.p99": {"max": 0.1}}},
    },
}


def trajectory(overhead=3.0, saved=95.0):
    return {
        "entries": [
            {"label": "PR-6", "results": {"fig7": {"overhead_pct": 1.0}}},
            {
                "label": "PR-7",
                "results": {
                    "fig7": {"overhead_pct": overhead, "wire_saved_pct": saved}
                },
            },
        ]
    }


class TestPickEntry:
    def test_default_is_latest(self):
        assert pick_entry(trajectory())["label"] == "PR-7"

    def test_by_label(self):
        assert pick_entry(trajectory(), "PR-6")["label"] == "PR-6"

    def test_missing_label_and_empty(self):
        assert pick_entry(trajectory(), "PR-99") is None
        assert pick_entry({"entries": []}) is None


class TestEvaluateBench:
    def test_within_budget_passes(self):
        checks = evaluate_bench(CONFIG, trajectory())
        assert all(c.ok for c in checks)
        assert {c.kind for c in checks} == {"max", "min"}

    def test_bust_fails_the_right_check(self):
        checks = evaluate_bench(CONFIG, trajectory(overhead=9.9))
        failed = [c for c in checks if not c.ok]
        assert [c.metric for c in failed] == ["overhead_pct"]
        assert failed[0].value == 9.9 and failed[0].bound == 5.0

    def test_min_budget_direction(self):
        checks = evaluate_bench(CONFIG, trajectory(saved=50.0))
        failed = [c for c in checks if not c.ok]
        assert [c.metric for c in failed] == ["wire_saved_pct"]

    def test_absent_metric_is_skipped_not_failed(self):
        checks = evaluate_bench(CONFIG, trajectory(), label="PR-6")
        skipped = [c for c in checks if c.skipped]
        assert [c.metric for c in skipped] == ["wire_saved_pct"]
        assert all(c.ok for c in checks)


class TestEvaluateSnapshot:
    def snapshot(self, p99=0.1, shed=0.05):
        return {
            "rollups": {
                "urn:svc#op": {
                    "latency_p99_s": p99,
                    "error_rate_by_class": {"shed": shed},
                }
            },
            "sketches": {
                "span.execute.seconds": {"quantiles": {"p99": 0.01}}
            },
        }

    def test_within_budget_passes(self):
        checks = evaluate_snapshot(CONFIG, self.snapshot())
        assert len(checks) == 3 and all(c.ok for c in checks)

    def test_dotted_path_reaches_nested_class_rates(self):
        checks = evaluate_snapshot(CONFIG, self.snapshot(shed=0.9))
        failed = [c for c in checks if not c.ok]
        assert [c.metric for c in failed] == ["error_rate_by_class.shed"]

    def test_missing_target_skips_every_budget(self):
        checks = evaluate_snapshot(CONFIG, {"rollups": {}, "sketches": {}})
        assert all(c.skipped for c in checks)


class TestSummarize:
    def test_strict_turns_skips_into_a_bust(self):
        checks = evaluate_snapshot(CONFIG, {"rollups": {}, "sketches": {}})
        assert summarize(checks)["ok"] is True
        assert summarize(checks, strict=True)["ok"] is False

    def test_document_shape(self):
        doc = summarize(evaluate_bench(CONFIG, trajectory()))
        assert doc["failed"] == 0 and doc["checks"] == len(doc["results"])
        assert {"subject", "metric", "value", "bound", "kind", "ok", "skipped"} <= set(
            doc["results"][0]
        )


class TestCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_passing_bench_gate_exits_zero(self, tmp_path, capsys):
        config = self.write(tmp_path, "slo.json", CONFIG)
        bench = self.write(tmp_path, "bench.json", trajectory())
        assert main(["check", "--config", config, "--bench", bench]) == 0
        out = capsys.readouterr().out
        assert "-> OK" in out and "[ok  ]" in out

    def test_bust_exits_one(self, tmp_path, capsys):
        config = self.write(tmp_path, "slo.json", CONFIG)
        bench = self.write(tmp_path, "bench.json", trajectory(overhead=50.0))
        assert main(["check", "--config", config, "--bench", bench]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_label_selects_the_gated_entry(self, tmp_path):
        config = self.write(tmp_path, "slo.json", CONFIG)
        bench = self.write(tmp_path, "bench.json", trajectory(overhead=50.0))
        # PR-6 recorded 1.0% overhead; gating that entry passes
        assert main(
            ["check", "--config", config, "--bench", bench, "--label", "PR-6"]
        ) == 0

    def test_strict_fails_on_skips(self, tmp_path):
        config = self.write(tmp_path, "slo.json", CONFIG)
        bench = self.write(tmp_path, "bench.json", trajectory())
        snapshot = self.write(tmp_path, "snap.json", {"rollups": {}, "sketches": {}})
        args = ["check", "--config", config, "--bench", bench, "--snapshot", snapshot]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 1

    def test_usage_errors_exit_two(self, tmp_path):
        config = self.write(tmp_path, "slo.json", CONFIG)
        assert main(["check", "--config", str(tmp_path / "nope.json")]) == 2
        assert main(["check", "--config", config]) == 2  # nothing to evaluate

    def test_repo_slo_config_gates_the_committed_trajectory(self):
        # the committed slo.json + BENCH_e2e.json must stay green — this
        # is exactly what the CI obs-slo job runs
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        assert main(
            [
                "check",
                "--config", str(root / "slo.json"),
                "--bench", str(root / "BENCH_e2e.json"),
            ]
        ) == 0
