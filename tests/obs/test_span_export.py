"""JSONL span export: every finished span becomes one JSON line."""

import io
import json

from repro.obs import Observability
from repro.obs.trace import Tracer


class TestJsonlSink:
    def test_finished_spans_are_written_as_json_lines(self):
        sink = io.StringIO()
        tracer = Tracer(export_sink=sink)
        with tracer.span("soap.parse", "abc123", detail="100B"):
            pass
        tracer.record_span("execute", "abc123", 1.0, 1.5, detail="echo")

        lines = sink.getvalue().strip().split("\n")
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["name"] == "soap.parse"
        assert first["trace_id"] == "abc123"
        assert first["detail"] == "100B"
        assert first["duration_s"] >= 0
        assert second["name"] == "execute"
        assert second["duration_s"] == 0.5

    def test_sink_lines_match_span_ring(self):
        sink = io.StringIO()
        tracer = Tracer(export_sink=sink)
        for index in range(5):
            with tracer.span(f"phase{index}", "t1"):
                pass
        exported = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert [e["name"] for e in exported] == [s.name for s in tracer.spans()]

    def test_no_sink_means_no_export(self):
        tracer = Tracer()
        with tracer.span("x", "t"):
            pass
        assert tracer.export_sink is None  # and nothing crashed

    def test_broken_sink_is_detached_not_fatal(self):
        class Broken:
            def write(self, data):
                raise OSError("disk full")

        tracer = Tracer(export_sink=Broken())
        with tracer.span("x", "t"):
            pass  # must not raise
        assert tracer.export_sink is None
        with tracer.span("y", "t"):
            pass  # still records into the ring
        assert [s.name for s in tracer.spans()] == ["x", "y"]

    def test_observability_plumbs_span_sink(self):
        sink = io.StringIO()
        obs = Observability(span_sink=sink)
        with obs.tracer.span("client.call", "t9"):
            pass
        record = json.loads(sink.getvalue())
        assert record["name"] == "client.call"
        # the registry feed still works alongside the sink
        assert obs.registry.snapshot()["sketches"][
            "span.client.call.seconds"
        ]["count"] == 1
