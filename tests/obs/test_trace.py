"""Unit tests for trace ids, spans, the tracer, and ambient context."""

import re

from repro.obs.trace import (
    NULL_SPAN,
    Observability,
    Tracer,
    activate,
    current,
    current_trace_id,
    deactivate,
    new_trace_id,
    span,
    span_in,
)


class TestTraceIds:
    def test_64_bit_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            assert re.fullmatch(r"[0-9a-f]{16}", tid)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


class TestTracer:
    def test_span_context_manager_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("phase", "t1", detail="d") as s:
            pass
        assert s.start == 0.5 and s.end == 1.0
        assert s.duration_s == 0.5
        [recorded] = tracer.spans("t1")
        assert recorded is s
        assert recorded.name == "phase" and recorded.detail == "d"

    def test_record_span_post_hoc(self):
        tracer = Tracer()
        s = tracer.record_span("http.parse", "t2", 1.0, 1.25, detail="/x")
        assert s.duration_s == 0.25
        assert tracer.spans("t2") == [s]

    def test_span_durations_feed_registry_sketches(self):
        obs = Observability()
        with obs.tracer.span("soap.parse", "t3"):
            pass
        snap = obs.registry.snapshot()
        assert snap["sketches"]["span.soap.parse.seconds"]["count"] == 1

    def test_ring_capacity_bounds_memory(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record_span("s", f"t{i}", 0.0, 1.0)
        assert len(tracer) == 4
        assert tracer.trace_ids() == ["t6", "t7", "t8", "t9"]

    def test_spans_filters_by_trace(self):
        tracer = Tracer()
        tracer.record_span("a", "t1", 0, 1)
        tracer.record_span("b", "t2", 0, 1)
        assert [s.name for s in tracer.spans("t1")] == ["a"]
        assert len(tracer.spans()) == 2

    def test_as_dict_is_json_friendly(self):
        tracer = Tracer()
        s = tracer.record_span("a", "t1", 1.0, 3.0, detail="x")
        doc = s.as_dict()
        span_id = doc.pop("span_id")
        assert span_id and doc.pop("parent_id") == ""
        assert doc == {
            "trace_id": "t1",
            "name": "a",
            "detail": "x",
            "start_s": 1.0,
            "duration_s": 2.0,
        }


class TestAmbientContext:
    def teardown_method(self):
        deactivate()

    def test_inactive_thread_gets_the_shared_null_span(self):
        deactivate()
        assert span("anything") is NULL_SPAN
        assert current() is None
        assert current_trace_id() is None
        # the guard swallows detail writes and nests as a context manager
        with span("x") as s:
            s.detail = "ignored"
        assert not hasattr(NULL_SPAN, "detail")

    def test_active_thread_records_into_the_bound_trace(self):
        tracer = Tracer()
        activate(tracer, "tid")
        # no ambient span open, so the captured parent id is empty
        assert current() == (tracer, "tid", "")
        assert current_trace_id() == "tid"
        with span("work", detail="d"):
            pass
        deactivate()
        [s] = tracer.spans("tid")
        assert (s.name, s.detail) == ("work", "d")
        assert span("after") is NULL_SPAN

    def test_span_in_carries_context_across_threads(self):
        import threading

        tracer = Tracer()
        activate(tracer, "tid")
        ctx = current()
        deactivate()

        def worker():
            # this thread has no ambient context ...
            assert span("ambient") is NULL_SPAN
            # ... but the captured one still routes to the right trace
            with span_in(ctx, "execute", detail="entry"):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        [s] = tracer.spans("tid")
        assert s.name == "execute"
        assert span_in(None, "x") is NULL_SPAN


class TestObservability:
    def test_metrics_snapshot_shape(self):
        obs = Observability()
        obs.registry.counter("c").inc()
        with obs.tracer.span("p", "t1"):
            pass
        snap = obs.metrics_snapshot()
        for key in ("uptime_s", "spans_recorded", "traces", "counters", "gauges", "histograms"):
            assert key in snap
        assert snap["spans_recorded"] == 1
        assert snap["traces"] == 1

    def test_iter_traces(self):
        obs = Observability()
        obs.tracer.record_span("a", "t1", 0, 1)
        obs.tracer.record_span("b", "t2", 0, 1)
        pairs = list(obs.iter_traces())
        assert [tid for tid, _ in pairs] == ["t1", "t2"]
        assert [s.name for _, spans in pairs for s in spans] == ["a", "b"]
