"""Prometheus text exposition: renderer unit tests + the admin route."""

from repro.bench.workloads import echo_testbed, make_invoker, echo_calls
from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs import MetricsRegistry, Observability
from repro.obs.prometheus import CONTENT_TYPE, render_prometheus, sanitize_name
from repro.resilience.policy import CallPolicy


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("http.requests") == "http_requests"

    def test_span_names_with_dashes(self):
        assert sanitize_name("span.http-send.seconds") == "span_http_send_seconds"

    def test_leading_digit_is_prefixed(self):
        assert sanitize_name("95th.latency") == "_95th_latency"


class TestRenderFormat:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("http.requests").inc(3)
        text = render_prometheus(registry)
        assert "# TYPE http_requests counter\nhttp_requests 3" in text

    def test_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.gauge("queue.depth").set(2.5)
        text = render_prometheus(registry)
        assert "# TYPE queue_depth gauge\nqueue_depth 2.5" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("pack.degree", (1, 2, 4))
        for value in (1, 1, 2, 3, 9):
            histogram.record(value)
        text = render_prometheus(registry)
        assert "# TYPE pack_degree histogram" in text
        # per-bucket counts are 2/1/1 (+1 overflow); exposition must be
        # cumulative: 2, 3, 4, and le="+Inf" equals the total count
        assert 'pack_degree_bucket{le="1"} 2' in text
        assert 'pack_degree_bucket{le="2"} 3' in text
        assert 'pack_degree_bucket{le="4"} 4' in text
        assert 'pack_degree_bucket{le="+Inf"} 5' in text
        assert "pack_degree_sum 16.0" in text
        assert "pack_degree_count 5" in text

    def test_float_bucket_labels(self):
        registry = MetricsRegistry()
        registry.histogram("span.parse.seconds", (0.0001, 0.005)).record(0.002)
        text = render_prometheus(registry)
        assert 'span_parse_seconds_bucket{le="0.0001"} 0' in text
        assert 'span_parse_seconds_bucket{le="0.005"} 1' in text

    def test_empty_registry_renders_to_empty_document(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_every_line_is_wellformed(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("c.d").set(1)
        registry.histogram("e.f", (1, 2)).record(1)
        for line in render_prometheus(registry).strip().split("\n"):
            assert line.startswith("# TYPE ") or " " in line


class TestAdminRoute:
    def test_metrics_format_prometheus(self):
        obs = Observability()
        with echo_testbed(profile="inproc", observability=obs) as bed:
            proxy = bed.make_proxy()
            invoker = make_invoker("our-approach", proxy)
            invoker.invoke_all(echo_calls(4, 10), CallPolicy(timeout=60))
            proxy.close()
            with HttpConnection(bed.transport, bed.address) as conn:
                response = conn.request(
                    HttpRequest(
                        "GET", "/metrics?format=prometheus", Headers({"Host": "t"})
                    )
                )
        assert response.status == 200
        assert response.headers.get("Content-Type") == CONTENT_TYPE
        text = response.body.decode("utf-8")
        assert "# TYPE http_requests counter" in text
        # span latencies are summaries (sketch quantiles) now
        assert "# TYPE span_execute_seconds summary" in text
        assert 'span_execute_seconds{quantile="0.99"}' in text
        assert "span_execute_seconds_count 4" in text
        # per-target rollup series carry service/operation labels
        assert (
            'repro_rollup_calls{service="urn:repro:echo",operation="echo"} 4'
            in text
        )

    def test_metrics_without_format_still_json(self):
        import json

        obs = Observability()
        with echo_testbed(profile="inproc", observability=obs) as bed:
            with HttpConnection(bed.transport, bed.address) as conn:
                response = conn.request(
                    HttpRequest("GET", "/metrics", Headers({"Host": "t"}))
                )
        assert response.headers.get("Content-Type") == "application/json"
        assert "counters" in json.loads(response.body)
