"""SpanStore: tail-sampling retention policy, bounds under concurrent
writers, span-tree assembly, and retry merging."""

import random
import threading

from repro.obs import FLAG_DEADLINE, FLAG_FAULT, FLAG_SHED, SpanStore
from repro.obs.trace import Span


def make_span(trace_id, name="work", start=0.0, end=0.001, parent_id="", detail=""):
    span = Span(trace_id, name, detail, parent_id=parent_id)
    span.start = start
    span.end = end
    return span


def complete_boring(store, trace_id, duration=0.001):
    store.ingest(make_span(trace_id, end=duration))
    return store.complete(trace_id, http_status=200)


class TestTailSampling:
    def test_cold_start_keeps_everything(self):
        store = SpanStore(sample_rate=0.0, rng=random.Random(1))
        for i in range(10):
            assert complete_boring(store, f"t{i}")
        assert store.stats()["dropped"] == 0

    def test_boring_traces_drop_once_history_exists(self):
        store = SpanStore(sample_rate=0.0, rng=random.Random(1))
        # varied durations so most fall below the keep percentile
        for i in range(40):
            complete_boring(store, f"t{i}", duration=0.001 * (i % 10 + 1))
        stats = store.stats()
        assert stats["dropped"] > 0
        assert stats["kept"] + stats["dropped"] == stats["completed"]

    def test_flagged_traces_always_survive(self):
        store = SpanStore(sample_rate=0.0, rng=random.Random(1))
        for i in range(30):
            complete_boring(store, f"boring{i}")
        flagged = []
        for i, flag in enumerate((FLAG_FAULT, FLAG_SHED, FLAG_DEADLINE) * 3):
            trace_id = f"bad{i}"
            store.ingest(make_span(trace_id))
            store.mark(trace_id, flag)
            assert store.complete(trace_id, http_status=200)
            flagged.append(trace_id)
        assert set(flagged) <= set(store.flagged_ids())

    def test_http_status_maps_to_flags(self):
        store = SpanStore(sample_rate=1.0, rng=random.Random(1))
        for trace_id, status, flag in (
            ("shed", 503, FLAG_SHED),
            ("late", 504, FLAG_DEADLINE),
            ("bad", 500, FLAG_FAULT),
        ):
            store.ingest(make_span(trace_id))
            store.complete(trace_id, http_status=status)
            assert store.get(trace_id)["flags"] == [flag]

    def test_slow_traces_survive_without_flags(self):
        store = SpanStore(sample_rate=0.0, rng=random.Random(1))
        for i in range(30):
            complete_boring(store, f"fast{i}", duration=0.001)
        store.ingest(make_span("slow", end=1.0))
        assert store.complete("slow", http_status=200)
        assert store.stats()["kept_slow"] >= 1

    def test_mark_before_any_span_is_not_lost(self):
        store = SpanStore(sample_rate=0.0, rng=random.Random(1))
        store.mark("early", FLAG_SHED)
        store.ingest(make_span("early"))
        assert store.complete("early", http_status=200)
        assert "early" in store.flagged_ids([FLAG_SHED])


class TestBounds:
    def test_trace_count_bound_evicts_oldest_boring(self):
        store = SpanStore(max_traces=4, sample_rate=1.0, rng=random.Random(1))
        store.ingest(make_span("flagged"))
        store.mark("flagged", FLAG_FAULT)
        store.complete("flagged", http_status=200)
        for i in range(10):
            complete_boring(store, f"t{i}")
        assert len(store) <= 4
        # the flagged record outlives every boring one
        assert "flagged" in store.trace_ids()

    def test_byte_bound_is_enforced(self):
        store = SpanStore(
            max_traces=10_000, max_bytes=5_000, sample_rate=1.0,
            rng=random.Random(1),
        )
        for i in range(50):
            store.ingest(make_span(f"t{i}", detail="x" * 200))
            store.complete(f"t{i}", http_status=200)
        assert store.size_bytes <= 5_000
        assert store.stats()["evicted"] > 0

    def test_per_trace_span_bound_counts_drops(self):
        store = SpanStore(max_spans_per_trace=5, sample_rate=1.0, rng=random.Random(1))
        for _ in range(8):
            store.ingest(make_span("big"))
        store.complete("big", http_status=200)
        tree = store.get("big")
        assert tree["dropped_spans"] == 3

    def test_pending_bound_evicts_oldest_slot(self):
        store = SpanStore(max_pending=3, sample_rate=1.0, rng=random.Random(1))
        for i in range(6):
            store.ingest(make_span(f"t{i}"))
        assert store.stats()["pending"] <= 3
        assert store.stats()["pending_evicted"] == 3

    def test_bounds_hold_under_concurrent_writers(self):
        store = SpanStore(
            max_traces=16, max_bytes=20_000, max_pending=32,
            sample_rate=1.0, rng=random.Random(1),
        )
        per_thread = 200

        def writer(worker):
            for i in range(per_thread):
                trace_id = f"w{worker}-{i}"
                store.ingest(make_span(trace_id, detail="y" * 50))
                if i % 7 == 0:
                    store.mark(trace_id, FLAG_FAULT)
                store.complete(trace_id, http_status=200)
                assert len(store) <= 16
                assert store.size_bytes <= 20_000

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = store.stats()
        assert stats["retained"] <= 16
        assert stats["retained_bytes"] <= 20_000
        assert stats["pending"] <= 32
        assert stats["completed"] == 8 * per_thread


class TestTreesAndRetries:
    def test_tree_nests_children_under_parents(self):
        store = SpanStore(sample_rate=1.0, rng=random.Random(1))
        root = make_span("t", name="server.handle", start=0.0, end=1.0)
        child_a = make_span("t", name="execute", start=0.1, end=0.4,
                            parent_id=root.span_id)
        child_b = make_span("t", name="execute", start=0.5, end=0.9,
                            parent_id=root.span_id)
        orphan = make_span("t", name="http.parse", start=0.0, end=0.05)
        for span in (root, child_a, child_b, orphan):
            store.ingest(span)
        store.complete("t", http_status=200)
        tree = store.get("t")
        roots = {node["name"]: node for node in tree["roots"]}
        assert set(roots) == {"server.handle", "http.parse"}
        children = roots["server.handle"]["children"]
        assert [c["name"] for c in children] == ["execute", "execute"]
        # children are ordered by start time
        assert children[0]["start_s"] < children[1]["start_s"]

    def test_retry_reusing_the_id_merges_into_one_record(self):
        store = SpanStore(sample_rate=1.0, rng=random.Random(1))
        store.ingest(make_span("t", name="attempt1", end=0.2))
        store.complete("t", http_status=503)
        store.ingest(make_span("t", name="attempt2", start=0.3, end=0.5))
        assert store.complete("t", http_status=200)
        tree = store.get("t")
        names = {root["name"] for root in tree["roots"]}
        assert names == {"attempt1", "attempt2"}
        assert tree["flags"] == [FLAG_SHED]
        summary = store.slowest(1)[0]
        assert summary["completions"] == 2

    def test_completing_unknown_trace_is_a_noop(self):
        store = SpanStore(rng=random.Random(1))
        assert store.complete("ghost", http_status=200) is False

    def test_slowest_orders_by_duration(self):
        store = SpanStore(sample_rate=1.0, rng=random.Random(1))
        for trace_id, duration in (("a", 0.1), ("b", 0.5), ("c", 0.3)):
            store.ingest(make_span(trace_id, end=duration))
            store.complete(trace_id, http_status=200)
        assert [row["trace_id"] for row in store.slowest(2)] == ["b", "c"]
