"""QuantileSketch: relative-error property tests against a sorted
oracle, merge semantics, bucket bounds, and thread safety."""

import random
import threading

import pytest

from repro.obs import QuantileSketch

PROBE_QUANTILES = (0.5, 0.9, 0.95, 0.99)

#: Acceptance bound: reported quantiles within 2% of the exact oracle
#: (the sketch's own guarantee is alpha=1%; 2% leaves room for the
#: oracle's nearest-rank discretization on finite samples).
MAX_RELATIVE_ERROR = 0.02


def oracle_quantile(values, q):
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


def assert_quantiles_close(sketch, values):
    for q in PROBE_QUANTILES:
        truth = oracle_quantile(values, q)
        estimate = sketch.quantile(q)
        assert estimate == pytest.approx(truth, rel=MAX_RELATIVE_ERROR), (
            f"q={q}: sketch {estimate} vs oracle {truth}"
        )


class TestRelativeErrorProperty:
    def test_bimodal_distribution(self):
        rng = random.Random(42)
        values = [
            rng.gauss(0.002, 0.0002) if rng.random() < 0.7 else rng.gauss(0.5, 0.05)
            for _ in range(20_000)
        ]
        values = [abs(v) + 1e-9 for v in values]
        sketch = QuantileSketch()
        for v in values:
            sketch.record(v)
        assert_quantiles_close(sketch, values)

    def test_heavy_tail_lognormal(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(-6.0, 2.0) for _ in range(20_000)]
        sketch = QuantileSketch()
        for v in values:
            sketch.record(v)
        assert_quantiles_close(sketch, values)

    def test_constant_distribution(self):
        values = [0.125] * 5_000
        sketch = QuantileSketch()
        for v in values:
            sketch.record(v)
        for q in PROBE_QUANTILES:
            assert sketch.quantile(q) == pytest.approx(0.125, rel=MAX_RELATIVE_ERROR)

    def test_uniform_sweep(self):
        rng = random.Random(3)
        values = [rng.uniform(1e-4, 10.0) for _ in range(20_000)]
        sketch = QuantileSketch()
        for v in values:
            sketch.record(v)
        assert_quantiles_close(sketch, values)


class TestMerge:
    def test_merge_equals_union_stream(self):
        rng = random.Random(11)
        left = [rng.lognormvariate(-5.0, 1.5) for _ in range(5_000)]
        right = [rng.lognormvariate(-3.0, 1.0) for _ in range(5_000)]
        a, b = QuantileSketch(), QuantileSketch()
        for v in left:
            a.record(v)
        for v in right:
            b.record(v)
        a.merge(b)
        assert a.count == 10_000
        assert a.sum == pytest.approx(sum(left) + sum(right))
        assert_quantiles_close(a, left + right)

    def test_merge_rejects_alpha_mismatch(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    def test_merge_tracks_min_max(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.record(0.5)
        b.record(0.001)
        b.record(7.0)
        a.merge(b)
        assert (a.min, a.max) == (0.001, 7.0)


class TestBoundsAndEdges:
    def test_empty_sketch_answers_zero(self):
        sketch = QuantileSketch()
        assert sketch.quantile(0.99) == 0.0
        assert (sketch.count, sketch.sum, sketch.mean) == (0, 0.0, 0.0)
        assert (sketch.min, sketch.max) == (0.0, 0.0)

    def test_rejects_bad_alpha_and_quantile(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(alpha=1.5)
        with pytest.raises(ValueError):
            QuantileSketch().quantile(1.5)

    def test_nonpositive_values_land_in_zero_bucket(self):
        sketch = QuantileSketch()
        for v in (-0.5, 0.0, 0.0):
            sketch.record(v)
        sketch.record(1.0)
        assert sketch.count == 4
        assert sketch.quantile(0.0) == 0.0
        # ranks inside the zero mass answer 0; the top rank is the
        # single positive observation
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(1.0, rel=MAX_RELATIVE_ERROR)

    def test_bucket_count_is_hard_bounded(self):
        sketch = QuantileSketch(max_buckets=16)
        rng = random.Random(5)
        for _ in range(10_000):
            sketch.record(rng.uniform(1e-7, 1e3))
        assert len(sketch._buckets) <= 16
        snap = sketch.snapshot()
        assert snap["collapsed_buckets"] > 0
        # collapsing sacrifices the bottom, never the tail
        values_p99 = sketch.quantile(0.99)
        assert values_p99 > sketch.quantile(0.5)

    def test_snapshot_shape(self):
        sketch = QuantileSketch()
        sketch.record(0.25)
        snap = sketch.snapshot()
        assert snap["count"] == 1 and snap["alpha"] == 0.01
        assert set(snap["quantiles"]) == {"p50", "p90", "p95", "p99"}


class TestThreadSafety:
    def test_concurrent_records_lose_nothing(self):
        sketch = QuantileSketch()
        per_thread = 2_000

        def writer(seed):
            rng = random.Random(seed)
            for _ in range(per_thread):
                sketch.record(rng.uniform(1e-4, 1.0))

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sketch.count == 8 * per_thread
