"""Tests for the text waterfall renderer and phase aggregation."""

from repro.obs.timeline import phase_breakdown, render_all, render_spans, render_timeline
from repro.obs.trace import Tracer


def make_tracer():
    tracer = Tracer()
    tracer.record_span("client.call", "t1", 0.0, 0.010)
    tracer.record_span("soap.parse", "t1", 0.001, 0.004, detail="2KB")
    tracer.record_span("execute", "t1", 0.004, 0.006, detail="echo")
    tracer.record_span("execute", "t1", 0.005, 0.008, detail="echo")
    return tracer


class TestRenderTimeline:
    def test_header_and_one_line_per_span(self):
        out = render_timeline(make_tracer())
        lines = out.splitlines()
        assert lines[0] == "trace t1  4 spans  total 10.000 ms"
        assert len(lines) == 5
        assert "soap.parse[2KB]" in out
        assert "execute[echo]" in out

    def test_bars_are_positioned_on_the_shared_clock(self):
        out = render_timeline(make_tracer(), width=10)
        lines = out.splitlines()
        # client.call spans the whole window
        assert "|##########|" in lines[1]
        # every bar is exactly `width` characters wide
        for line in lines[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 10
            assert set(bar) <= {"-", "#"}

    def test_no_traces_and_no_spans(self):
        assert render_timeline(Tracer()) == "(no traces recorded)"
        assert render_all(Tracer()) == "(no traces recorded)"
        assert "no spans recorded" in render_spans("tx", [])

    def test_explicit_trace_id_and_render_all(self):
        tracer = make_tracer()
        tracer.record_span("client.call", "t2", 0.0, 0.001)
        assert "trace t1" in render_timeline(tracer, "t1")
        both = render_all(tracer)
        assert "trace t1" in both and "trace t2" in both

    def test_zero_duration_spans_still_render(self):
        tracer = Tracer()
        tracer.record_span("instant", "t1", 1.0, 1.0)
        out = render_timeline(tracer)
        assert "instant" in out


class TestPhaseBreakdown:
    def test_aggregates_by_name(self):
        phases = phase_breakdown(make_tracer().spans("t1"))
        assert phases["execute"]["count"] == 2
        assert phases["execute"]["total_ms"] == 5.0
        assert phases["execute"]["mean_ms"] == 2.5
        assert phases["client.call"]["count"] == 1
        assert "soap.parse" in phases

    def test_empty(self):
        assert phase_breakdown([]) == {}
