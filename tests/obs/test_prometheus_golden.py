"""Golden-file test: the whole Prometheus exposition, byte for byte.

A deterministically-populated registry (injected rollup clock, fixed
observation stream) must render exactly ``golden/metrics.prom``.  Any
formatting drift — bucket ordering, float rendering, label escaping,
a renamed series — shows up as a readable diff against the committed
file instead of a scrape that silently stops parsing.

Regenerate after an *intentional* format change by running this file's
``build_registry`` + ``render_prometheus`` and committing the output.
"""

from pathlib import Path

from repro.obs import MetricsRegistry
from repro.obs.prometheus import render_prometheus

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def build_registry() -> MetricsRegistry:
    """One instrument of every kind, fed a fixed observation stream."""
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    registry.counter("http.requests").inc(3)
    registry.gauge("stage.application.queue_depth").set(2)
    registry.histogram("pack.degree", (1, 8, 32)).record(8)
    sketch = registry.sketch("span.execute.seconds")
    for ms in range(1, 101):
        sketch.record(ms / 1000.0)
    rollup = registry.rollup("urn:repro:echo", "echo")
    rollup.begin()
    rollup.observe(0.100)
    clock.now += 30.0  # exactly one default half-life
    rollup.observe(0.300, "shed")
    return registry


def test_exposition_matches_golden_file():
    assert render_prometheus(build_registry()) == GOLDEN.read_text()


def test_golden_file_spot_checks():
    """Independent anchors so a wholesale regen cannot hide a regression."""
    text = GOLDEN.read_text()
    # EWMA moved exactly halfway after one half-life
    assert (
        'repro_rollup_latency_ewma_s{service="urn:repro:echo",operation="echo"} 0.2'
        in text
    )
    # one success + one shed = 50% error rate, all of it retryable
    assert 'operation="echo"} 0.5' in text
    assert 'class="timeout"} 0' in text
    # sketches expose as summaries with a _sum/_count pair
    assert "# TYPE span_execute_seconds summary" in text
    assert "span_execute_seconds_count 100" in text
    # histogram +Inf bucket equals the count
    assert 'pack_degree_bucket{le="+Inf"} 1' in text
