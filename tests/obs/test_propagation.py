"""Integration: trace propagation, admin endpoints, and the obs-off
byte-identical guarantee, end to end over real servers."""

import json

import pytest

from repro.bench.workloads import echo_calls, echo_testbed, make_invoker
from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs import Observability, render_timeline
from repro.obs.trace import TRACE_HEADER_TAG, TRACE_ID_ATTR
from repro.soap.envelope import Envelope
from repro.xmlcore.tree import Element
from repro.resilience.policy import CallPolicy


def packed_round_trip(testbed, m=32, payload=10):
    proxy = testbed.make_proxy()
    invoker = make_invoker("our-approach", proxy)
    results = invoker.invoke_all(echo_calls(m, payload), CallPolicy(timeout=60))
    proxy.close()
    return proxy, results


class TestTracePropagation:
    @pytest.mark.parametrize("architecture", ["staged", "common"])
    def test_one_trace_covers_client_and_all_server_phases(self, architecture):
        obs = Observability()
        with echo_testbed(
            profile="inproc", architecture=architecture, observability=obs
        ) as bed:
            proxy, results = packed_round_trip(bed, m=32)
        assert len(results) == 32

        # the id the client minted is the id the server recorded under
        trace_id = proxy.last_trace_id
        assert trace_id is not None
        spans = obs.tracer.spans(trace_id)
        names = [s.name for s in spans]

        # client span and the per-phase server spans share the trace
        assert "client.call" in names
        for phase in ("http.parse", "soap.parse", "spi.unpack", "spi.pack",
                      "soap.serialize", "http.send"):
            assert phase in names, f"missing {phase} in {sorted(set(names))}"
        # one execute span per packed entry — the id survived packing
        assert names.count("execute") == 32

        # every span of the trace is renderable as one waterfall
        timeline = render_timeline(obs.tracer, trace_id)
        assert f"trace {trace_id}" in timeline
        assert timeline.count("execute[echo]") == 32

    def test_client_call_span_encloses_server_spans(self):
        obs = Observability()
        with echo_testbed(profile="inproc", observability=obs) as bed:
            proxy, _ = packed_round_trip(bed, m=4)
        spans = obs.tracer.spans(proxy.last_trace_id)
        client = next(s for s in spans if s.name == "client.call")
        for s in spans:
            if s.name in ("soap.parse", "execute", "soap.serialize"):
                assert client.start <= s.start and s.end <= client.end

    def test_soap_header_recovers_trace_when_http_header_is_stripped(self):
        """The SOAP-carried id re-homes server spans onto the client's
        trace even when the HTTP header never arrives."""
        obs = Observability()
        carried = "deadbeefcafef00d"
        with echo_testbed(profile="inproc", observability=obs) as bed:
            proxy = bed.make_proxy(tracer=None)  # no HTTP header, no client span
            proxy.extra_headers = [Element(TRACE_HEADER_TAG, {TRACE_ID_ATTR: carried})]
            assert proxy.call("echo", payload="x") == "x"
        names = [s.name for s in obs.tracer.spans(carried)]
        assert "execute" in names and "soap.serialize" in names

    def test_pack_degree_histogram_reaches_metrics(self):
        obs = Observability()
        with echo_testbed(profile="inproc", observability=obs) as bed:
            packed_round_trip(bed, m=32)
        snap = obs.metrics_snapshot()
        assert snap["histograms"]["soap.pack_degree"]["buckets"]["<=32"] == 1
        # handler-chain pack metrics land in the same registry ...
        assert snap["histograms"]["pack.degree"]["total"] == 1
        # ... as do the span-duration and stage-latency sketches
        assert snap["sketches"]["span.execute.seconds"]["count"] == 32
        assert snap["sketches"]["stage.application.service_time_s"]["count"] >= 1


class TestAdminEndpoints:
    def test_metrics_and_healthz_are_well_formed_json(self):
        obs = Observability()
        with echo_testbed(profile="inproc", observability=obs) as bed:
            packed_round_trip(bed, m=8)
            with HttpConnection(bed.transport, bed.address) as conn:
                metrics = conn.request(
                    HttpRequest("GET", "/metrics", Headers({"Host": "t"}))
                )
                health = conn.request(
                    HttpRequest("GET", "/healthz", Headers({"Host": "t"}))
                )
        assert metrics.status == 200
        assert metrics.headers.get("Content-Type") == "application/json"
        m = json.loads(metrics.body)
        for key in ("uptime_s", "spans_recorded", "counters", "histograms"):
            assert key in m
        assert m["counters"]["http.requests"] >= 1

        assert health.status == 200
        h = json.loads(health.body)
        assert h["status"] == "ok"
        assert h["requests_served"] >= 1
        assert h["connections_accepted"] >= 1

    def test_admin_routes_do_not_exist_without_observability(self):
        with echo_testbed(profile="inproc") as bed:
            with HttpConnection(bed.transport, bed.address) as conn:
                response = conn.request(
                    HttpRequest("GET", "/healthz", Headers({"Host": "t"}))
                )
        assert response.status == 404


class TestObsOffIsByteIdentical:
    def test_responses_match_with_and_without_observability(self):
        """Turning obs on must never change a single wire byte of the
        SOAP response (traced requests differ only by the client's own
        trace header)."""
        bodies = {}
        for label, obs in (("off", None), ("on", Observability())):
            with echo_testbed(profile="inproc", observability=obs) as bed:
                proxy = bed.make_proxy(tracer=None)  # identical requests
                envelope = Envelope()
                from repro.soap.serializer import serialize_rpc_request
                from repro.apps.echo import ECHO_NS

                envelope.add_body(
                    serialize_rpc_request(ECHO_NS, "echo", {"payload": "same"})
                )
                bodies[label] = proxy.exchange_raw(envelope, "echo")
                proxy.close()
        assert bodies["off"] == bodies["on"]

    def test_traced_client_gets_identical_response_bytes(self):
        obs = Observability()
        with echo_testbed(profile="inproc") as plain_bed:
            plain_proxy = plain_bed.make_proxy()
            plain = plain_proxy.call("echo", payload="same")
        with echo_testbed(profile="inproc", observability=obs) as traced_bed:
            traced_proxy = traced_bed.make_proxy()
            assert traced_proxy.tracer is obs.tracer
            traced = traced_proxy.call("echo", payload="same")
        assert plain == traced
