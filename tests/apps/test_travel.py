"""Tests for the travel-agent scenario (paper §3.1/§4.3, Figures 3 & 8)."""

import pytest

from repro.apps.travel import (
    AIRLINE_NAMES,
    HOTEL_NAMES,
    TravelAgent,
    airline_ns,
    deploy_travel_system,
    make_airline_service,
    make_credit_card_service,
    make_hotel_service,
    validate_itinerary,
)
from repro.soap.fault import ClientFaultCause


class TestAirlineService:
    @pytest.fixture
    def airline(self):
        return make_airline_service("AirChina", 480)

    def test_query_flights(self, airline):
        flights = airline.invoke(
            "queryFlights", {"origin": "PEK", "destination": "SHA"}
        )
        assert len(flights) == 3
        assert flights[0]["price"] == 480
        assert all(f["airline"] == "AirChina" for f in flights)

    def test_reserve_and_confirm(self, airline):
        reservation = airline.invoke("reserveFlight", {"flightId": "F1"})
        assert reservation.startswith("FL-AirChina-")
        status = airline.invoke(
            "confirmReservation",
            {"reservationId": reservation, "authorizationId": "AUTH-1"},
        )
        assert status == "OK"
        assert airline.reservation_book.confirmed_count() == 1

    def test_confirm_unknown_reservation_faults(self, airline):
        with pytest.raises(ClientFaultCause):
            airline.invoke(
                "confirmReservation",
                {"reservationId": "nope", "authorizationId": "AUTH-1"},
            )

    def test_confirm_without_authorization_faults(self, airline):
        reservation = airline.invoke("reserveFlight", {"flightId": "F1"})
        with pytest.raises(ClientFaultCause):
            airline.invoke(
                "confirmReservation",
                {"reservationId": reservation, "authorizationId": ""},
            )


class TestHotelAndCredit:
    def test_query_rooms(self):
        hotel = make_hotel_service("LakeView", 120)
        rooms = hotel.invoke("queryRooms", {"city": "Beijing"})
        assert len(rooms) == 3
        assert rooms[0]["ratePerNight"] == 120
        assert {r["category"] for r in rooms} == {"standard", "deluxe", "suite"}

    def test_authorize_payment(self):
        credit = make_credit_card_service()
        auth = credit.invoke("authorizePayment", {"account": "ACCT-1", "amount": 500})
        assert auth.startswith("AUTH-")

    def test_bad_account_faults(self):
        credit = make_credit_card_service()
        with pytest.raises(ClientFaultCause):
            credit.invoke("authorizePayment", {"account": "bogus", "amount": 1})

    def test_nonpositive_amount_faults(self):
        credit = make_credit_card_service()
        with pytest.raises(ClientFaultCause):
            credit.invoke("authorizePayment", {"account": "ACCT-1", "amount": 0})


@pytest.fixture
def system():
    with deploy_travel_system() as (sys_, transport):
        yield sys_, transport


class TestTravelAgentEndToEnd:
    @pytest.mark.parametrize("use_packing", [False, True])
    def test_booking_succeeds(self, system, use_packing):
        sys_, transport = system
        agent = TravelAgent(
            transport,
            sys_.airline_address,
            sys_.hotel_address,
            sys_.credit_address,
            use_packing=use_packing,
        )
        itinerary = agent.book_vacation("PEK", "SHA")
        agent.close()
        validate_itinerary(itinerary)
        assert itinerary.flight["price"] == 480  # cheapest airline's cheapest
        assert itinerary.room["ratePerNight"] == 120
        assert itinerary.total_price == 600

    def test_unoptimized_sends_eleven_messages(self, system):
        sys_, transport = system
        agent = TravelAgent(
            transport, sys_.airline_address, sys_.hotel_address, sys_.credit_address
        )
        itinerary = agent.book_vacation("PEK", "SHA")
        agent.close()
        assert itinerary.soap_messages == 11

    def test_packed_sends_seven_messages(self, system):
        """Steps 1 and 3 collapse from three messages to one each."""
        sys_, transport = system
        agent = TravelAgent(
            transport,
            sys_.airline_address,
            sys_.hotel_address,
            sys_.credit_address,
            use_packing=True,
        )
        itinerary = agent.book_vacation("PEK", "SHA")
        agent.close()
        assert itinerary.soap_messages == 7

    def test_server_side_message_counts(self, system):
        sys_, transport = system
        agent = TravelAgent(
            transport,
            sys_.airline_address,
            sys_.hotel_address,
            sys_.credit_address,
            use_packing=True,
        )
        agent.book_vacation("PEK", "SHA")
        agent.close()
        # airline node: 1 packed query + reserve + confirm = 3 messages,
        # but 3 + 2 = 5 operations executed
        assert sys_.airline_server.endpoint.stats.soap_messages == 3
        assert sys_.airline_server.container.stats.entries_executed == 5
        assert sys_.hotel_server.endpoint.stats.soap_messages == 3
        assert sys_.hotel_server.container.stats.entries_executed == 5
        assert sys_.credit_server.endpoint.stats.soap_messages == 1

    def test_both_modes_agree_on_itinerary(self, system):
        sys_, transport = system
        plain = TravelAgent(
            transport, sys_.airline_address, sys_.hotel_address, sys_.credit_address
        )
        packed = TravelAgent(
            transport,
            sys_.airline_address,
            sys_.hotel_address,
            sys_.credit_address,
            use_packing=True,
        )
        a = plain.book_vacation("PEK", "SHA")
        b = packed.book_vacation("PEK", "SHA")
        plain.close()
        packed.close()
        assert a.flight["flightId"] == b.flight["flightId"]
        assert a.room["roomId"] == b.room["roomId"]
        assert a.total_price == b.total_price

    def test_reservations_confirmed_server_side(self, system):
        sys_, transport = system
        agent = TravelAgent(
            transport,
            sys_.airline_address,
            sys_.hotel_address,
            sys_.credit_address,
            use_packing=True,
        )
        itinerary = agent.book_vacation("PEK", "SHA")
        agent.close()
        airline = sys_.airline_server.container.service_for(
            airline_ns(itinerary.flight["airline"])
        )
        assert airline.reservation_book.confirmed_count() == 1


def test_constants_shape():
    assert len(AIRLINE_NAMES) == 3
    assert len(HOTEL_NAMES) == 3
