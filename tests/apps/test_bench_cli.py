"""Tests for the bench harness plumbing and CLI (fast paths only)."""

import json

import pytest

from repro.bench.harness import Measurement, measure, speedup
from repro.bench.report import FigureResult, ScalarResult
from repro.bench.__main__ import main as bench_main


class TestMeasurement:
    def test_measure_runs_warmup_and_repeats(self):
        calls = []
        measurement = measure(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(measurement.samples_s) == 3

    def test_statistics(self):
        m = Measurement("x", [0.010, 0.020, 0.030])
        assert m.best_s == 0.010
        assert m.median_s == 0.020
        assert m.mean_s == pytest.approx(0.020)
        assert m.best_ms == pytest.approx(10.0)
        assert m.stdev_s > 0

    def test_single_sample_stdev_zero(self):
        assert Measurement("x", [0.01]).stdev_s == 0.0

    def test_speedup(self):
        baseline = Measurement("b", [0.100])
        candidate = Measurement("c", [0.020])
        assert speedup(baseline, candidate) == pytest.approx(5.0)

    def test_as_dict(self):
        data = Measurement("lbl", [0.01, 0.02]).as_dict()
        assert data["label"] == "lbl"
        assert data["samples"] == 2


def sample_figure():
    figure = FigureResult("Figure X", "test", 10, [1, 2])
    figure.record("a", 1, Measurement("a/1", [0.001]))
    figure.record("a", 2, Measurement("a/2", [0.002]))
    figure.record("b", 1, Measurement("b/1", [0.004]))
    figure.record("b", 2, Measurement("b/2", [0.004]))
    figure.notes.append("test note")
    return figure


class TestFigureResult:
    def test_speedup_at(self):
        figure = sample_figure()
        assert figure.speedup_at(1, baseline="b", candidate="a") == pytest.approx(4.0)

    def test_table_contains_all_points(self):
        table = sample_figure().to_table()
        assert "Figure X" in table
        assert "1.00" in table
        assert "4.00" in table
        assert "test note" in table

    def test_table_missing_point_rendered_as_dash(self):
        figure = FigureResult("F", "t", 10, [1, 2])
        figure.record("a", 1, Measurement("a/1", [0.001]))
        assert "-" in figure.to_table()

    def test_markdown(self):
        md = sample_figure().to_markdown()
        assert md.startswith("### Figure X")
        assert "| M | a | b |" in md
        assert "| 1 | 1.00 | 4.00 |" in md

    def test_as_dict_round_trips_to_json(self):
        data = sample_figure().as_dict()
        decoded = json.loads(json.dumps(data))
        assert decoded["series"]["a"]["1"] == pytest.approx(1.0)


class TestScalarResult:
    def test_table_and_markdown(self):
        result = ScalarResult("Travel", unit="ms")
        result.add("without", 44.0)
        result.add("with", 30.0)
        result.notes.append("n")
        assert "44.00 ms" in result.to_table()
        md = result.to_markdown()
        assert "| without | 44.00 ms |" in md

    def test_as_dict(self):
        result = ScalarResult("R")
        result.add("x", 1.5)
        assert result.as_dict()["rows"] == {"x": 1.5}


class TestBenchCli:
    def test_relatedwork_json(self, capsys):
        rc = bench_main(["relatedwork", "--fast", "--format", "json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["name"].startswith("Related-work")
        assert "differential serialization" in data[0]["rows"]

    def test_relatedwork_markdown(self, capsys):
        rc = bench_main(["relatedwork", "--fast", "--format", "markdown"])
        assert rc == 0
        assert "| measurement | value |" in capsys.readouterr().out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["not-an-experiment"])


class TestCliEntryPoints:
    """The CLI modules must work as `python -m` entry points."""

    @pytest.mark.parametrize(
        "module", ["repro.bench", "repro.apps.serve", "repro.apps.call"]
    )
    def test_help_exits_zero(self, module):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert b"usage" in result.stdout.lower()

    def test_fig5_fast_inproc_end_to_end(self, capsys):
        rc = bench_main(["fig5", "--fast", "--profile", "inproc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "our-approach" in out

    def test_travel_fast_inproc(self, capsys):
        rc = bench_main(["travel", "--fast", "--profile", "inproc"])
        assert rc == 0
        assert "improvement" in capsys.readouterr().out

    def test_arch_fast_inproc_markdown(self, capsys):
        rc = bench_main(["arch", "--profile", "inproc", "--format", "markdown"])
        assert rc == 0
        assert "| measurement | value |" in capsys.readouterr().out
