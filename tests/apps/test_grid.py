"""Tests for the grid job-manager app."""

import time

import pytest

from repro.apps.grid import (
    CANCELLED,
    DONE,
    GRID_NS,
    GRID_SERVICE,
    QUEUED,
    GridMonitor,
    JobStore,
    expected_digest,
    make_grid_service,
)
from repro.client.proxy import ServiceProxy
from repro.core.dispatcher import spi_server_handlers
from repro.errors import SoapFaultError
from repro.server.handlers import HandlerChain
from repro.soap.fault import ClientFaultCause
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


def wait_done(store, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = store.status(job_id)
        if status["state"] in (DONE, CANCELLED):
            return status
        time.sleep(0.005)
    raise TimeoutError(job_id)


class TestJobStore:
    @pytest.fixture
    def store(self):
        store = JobStore(workers=2, work_units=10)
        yield store
        store.shutdown()

    def test_submit_and_complete(self, store):
        job_id = store.submit("compute alpha", 5)
        assert job_id.startswith("job-")
        status = wait_done(store, job_id)
        assert status["state"] == DONE
        assert status["progress"] == 100

    def test_result_digest_deterministic(self, store):
        job_id = store.submit("compute alpha", 5)
        wait_done(store, job_id)
        result = store.result(job_id)
        assert result["digest"] == expected_digest("compute alpha", 10)

    def test_result_before_done_faults(self, store):
        slow_store = JobStore(workers=1, work_units=100_000)
        try:
            blocker = slow_store.submit("blocker", 1)
            with pytest.raises(ClientFaultCause, match="not available"):
                slow_store.result(blocker)
            slow_store.cancel(blocker)
        finally:
            slow_store.shutdown()

    def test_cancel_queued_job(self):
        store = JobStore(workers=1, work_units=200_000)
        try:
            blocker = store.submit("blocker", 1)
            queued = store.submit("queued", 1)
            assert store.cancel(queued) is True
            assert store.status(queued)["state"] == CANCELLED
            store.cancel(blocker)
        finally:
            store.shutdown()

    def test_cancel_done_job_returns_false(self, store):
        job_id = store.submit("quick", 1)
        wait_done(store, job_id)
        assert store.cancel(job_id) is False

    def test_unknown_job_faults(self, store):
        with pytest.raises(ClientFaultCause, match="unknown job"):
            store.status("job-999")

    def test_validation(self, store):
        with pytest.raises(ClientFaultCause):
            store.submit("", 5)
        with pytest.raises(ClientFaultCause):
            store.submit("x", 11)
        with pytest.raises(ClientFaultCause):
            store.list_ids("EXPLODED")

    def test_list_by_state(self, store):
        ids = [store.submit(f"c{i}", 1) for i in range(3)]
        for job_id in ids:
            wait_done(store, job_id)
        assert store.list_ids(DONE) == sorted(ids)
        assert store.list_ids(QUEUED) == []


@pytest.fixture(scope="module")
def grid_env():
    transport = InProcTransport()
    service = make_grid_service(workers=4, work_units=10)
    server = build_server(ServerConfig(services=[service], architecture="staged", transport=transport, address="grid", chain=HandlerChain(spi_server_handlers())))
    with server.running() as address:
        yield transport, address, server, service
    service.job_store.shutdown()


class TestGridOverSoap:
    def test_full_lifecycle(self, grid_env):
        transport, address, _, _ = grid_env
        proxy = build_proxy(ClientConfig(transport, address, namespace=GRID_NS, service_name=GRID_SERVICE))
        job_id = proxy.call("submitJob", command="lifecycle", priority=3)
        deadline = time.monotonic() + 10
        while proxy.call("queryStatus", jobId=job_id)["state"] != DONE:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        result = proxy.call("fetchResult", jobId=job_id)
        assert result["digest"] == expected_digest("lifecycle", 10)
        proxy.close()

    def test_fault_over_wire(self, grid_env):
        transport, address, _, _ = grid_env
        proxy = build_proxy(ClientConfig(transport, address, namespace=GRID_NS, service_name=GRID_SERVICE))
        with pytest.raises(SoapFaultError, match="unknown job"):
            proxy.call("queryStatus", jobId="job-404")
        proxy.close()


class TestGridMonitor:
    @pytest.mark.parametrize("use_packing", [True, False])
    def test_submit_poll_fetch(self, grid_env, use_packing):
        transport, address, _, _ = grid_env
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=GRID_NS, service_name=GRID_SERVICE,
            reuse_connections=True,
        ))
        monitor = GridMonitor(proxy, use_packing=use_packing)
        commands = [f"task-{use_packing}-{i}" for i in range(6)]
        job_ids = monitor.submit_batch(commands)
        assert len(set(job_ids)) == 6
        statuses, _ = monitor.wait_all_done(job_ids, timeout=20)
        assert all(s["state"] == DONE for s in statuses)
        results = monitor.fetch_results(job_ids)
        for command, result in zip(commands, results):
            assert result["digest"] == expected_digest(command, 10)
        proxy.close()

    def test_packed_monitoring_message_economy(self, grid_env):
        """One poll sweep over N jobs = one SOAP message when packed,
        N messages serially — the grid-portal pattern SPI targets."""
        transport, address, server, _ = grid_env
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=GRID_NS, service_name=GRID_SERVICE,
            reuse_connections=True,
        ))
        packed = GridMonitor(proxy, use_packing=True)
        job_ids = packed.submit_batch([f"mon-{i}" for i in range(8)])
        packed.wait_all_done(job_ids, timeout=20)

        before = server.endpoint.stats.soap_messages
        sample = packed.poll(job_ids)
        assert sample.soap_messages == 1
        assert server.endpoint.stats.soap_messages - before == 1

        serial = GridMonitor(proxy, use_packing=False)
        before = server.endpoint.stats.soap_messages
        sample = serial.poll(job_ids)
        assert sample.soap_messages == 8
        assert server.endpoint.stats.soap_messages - before == 8
        proxy.close()
