"""Tests for the serve/call CLIs (driven in-process, real TCP)."""

import pytest

from repro.apps.call import main as call_main, parse_call, parse_value, split_calls
from repro.apps.serve import build_demo_server
from repro.errors import ReproError
from repro.client.config import ClientConfig, build_proxy


class TestValueParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("-3", -3),
            ("1.5", 1.5),
            ("true", True),
            ("false", False),
            ("hello", "hello"),
            ("str:42", "42"),
            ("str:true", "true"),
        ],
    )
    def test_parse_value(self, text, expected):
        assert parse_value(text) == expected

    def test_parse_call(self):
        op, params = parse_call(["echo", "payload=hi", "n=3"])
        assert op == "echo"
        assert params == {"payload": "hi", "n": 3}

    def test_parse_call_bad_pair_raises(self):
        with pytest.raises(ReproError):
            parse_call(["echo", "notapair"])

    def test_parse_call_empty_raises(self):
        with pytest.raises(ReproError):
            parse_call([])

    def test_split_calls(self):
        assert split_calls(["a", "x=1", "--", "b", "y=2"]) == [
            ["a", "x=1"],
            ["b", "y=2"],
        ]

    def test_split_calls_trailing_separator(self):
        assert split_calls(["a", "--"]) == [["a"]]


@pytest.fixture(scope="module")
def demo_server():
    server, metrics = build_demo_server("127.0.0.1", 0)
    address = server.start()
    yield f"{address[0]}:{address[1]}", server, metrics
    server.stop()


class TestServeAndCall:
    def test_all_demo_services_deployed(self, demo_server):
        _, server, _ = demo_server
        names = {s.name for s in server.container.services()}
        assert "EchoService" in names
        assert "GlobalWeather" in names
        assert "CreditCard" in names
        assert "SpiPlanRunner" in names
        assert len(names) >= 10

    def test_single_call(self, demo_server, capsys):
        address, _, _ = demo_server
        rc = call_main([address, "urn:repro:echo", "echo", "payload=cli-test"])
        assert rc == 0
        assert "'cli-test'" in capsys.readouterr().out

    def test_typed_parameters(self, demo_server, capsys):
        address, _, _ = demo_server
        rc = call_main([address, "urn:repro:echo", "delayedEcho", "payload=x", "delay_ms=1"])
        assert rc == 0
        assert "'x'" in capsys.readouterr().out

    def test_packed_calls(self, demo_server, capsys):
        address, server, metrics = demo_server
        before = metrics.snapshot()["packed_messages"]
        rc = call_main(
            [
                address,
                "urn:repro:weather",
                "--pack",
                "GetWeather", "city=Beijing", "country=China",
                "--",
                "GetWeather", "city=Shanghai", "country=China",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Beijing" in out
        assert "Shanghai" in out
        assert metrics.snapshot()["packed_messages"] == before + 1

    def test_fault_reported_to_stderr(self, demo_server, capsys):
        address, _, _ = demo_server
        rc = call_main([address, "urn:repro:echo", "--pack", "noSuchOp", "a=1"])
        assert rc == 0  # per-entry faults are reported, not fatal
        assert "FAULT" in capsys.readouterr().err

    def test_unpacked_fault_is_fatal(self, demo_server, capsys):
        address, _, _ = demo_server
        rc = call_main([address, "urn:repro:echo", "noSuchOp", "a=1"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_wsdl_served_over_real_http(self, demo_server):
        address, _, _ = demo_server
        from repro.client.proxy import ServiceProxy
        from repro.transport.tcp import TcpTransport

        host, _, port = address.partition(":")
        proxy = build_proxy(ClientConfig(
            TcpTransport(), (host, int(port)),
            namespace="urn:repro:weather", service_name="GlobalWeather",
        ))
        document = proxy.fetch_wsdl()
        assert "GetWeather" in document
