"""Tests for the echo and weather demo services."""

import pytest

from repro.apps.echo import ECHO_NS, make_echo_payload, make_echo_service
from repro.apps.weather import (
    WEATHER_NS,
    figure4_document,
    figure4_envelope,
    make_weather_service,
)
from repro.client.proxy import ServiceProxy
from repro.core.dispatcher import spi_server_handlers
from repro.core.packformat import unpack_parallel_method
from repro.errors import SoapFaultError
from repro.server.handlers import HandlerChain
from repro.soap.envelope import Envelope
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


class TestEchoPayload:
    @pytest.mark.parametrize("size", [0, 1, 10, 1000, 100_000])
    def test_exact_size(self, size):
        assert len(make_echo_payload(size)) == size

    def test_deterministic(self):
        assert make_echo_payload(100) == make_echo_payload(100)

    def test_negative_is_empty(self):
        assert make_echo_payload(-5) == ""


class TestEchoService:
    @pytest.fixture
    def service(self):
        return make_echo_service()

    def test_echo_returns_input(self, service):
        payload = make_echo_payload(1000)
        assert service.invoke("echo", {"payload": payload}) == payload

    def test_echo_length(self, service):
        assert service.invoke("echoLength", {"payload": "abcd"}) == 4

    def test_delayed_echo(self, service):
        assert service.invoke("delayedEcho", {"payload": "x", "delay_ms": 1}) == "x"

    def test_namespace(self, service):
        assert service.namespace == ECHO_NS


class TestWeatherService:
    @pytest.fixture
    def service(self):
        return make_weather_service()

    def test_beijing(self, service):
        report = service.invoke(
            "GetWeather", {"city": "Beijing", "country": "China"}
        )
        assert report.startswith("Beijing, China:")

    def test_unknown_city_faults(self, service):
        from repro.soap.fault import ClientFaultCause

        with pytest.raises(ClientFaultCause):
            service.invoke("GetWeather", {"city": "Atlantis", "country": "Nowhere"})

    def test_cities_by_country(self, service):
        cities = service.invoke("GetCitiesByCountry", {"country": "China"})
        assert cities == ["Beijing", "Guangzhou", "Shanghai"]


class TestFigure4:
    def test_figure4_shape_matches_paper(self):
        """'The SOAP body contains Parallel_Method element.  This element
        has two child elements that are packed into two service requests
        respectively.'"""
        envelope = figure4_envelope()
        wrapper = envelope.first_body_entry()
        entries = unpack_parallel_method(wrapper)
        assert len(entries) == 2
        assert entries[0].require("city").text == "Beijing"
        assert entries[1].require("city").text == "Shanghai"

    def test_figure4_document_is_valid_soap(self):
        document = figure4_document()
        assert "Parallel_Method" in document
        reparsed = Envelope.parse(document, server=True)
        assert len(unpack_parallel_method(reparsed.first_body_entry())) == 2

    def test_figure4_executes_against_weather_server(self):
        transport = InProcTransport()
        server = build_server(ServerConfig(services=[make_weather_service()], architecture="staged", transport=transport, address="weather", chain=HandlerChain(spi_server_handlers())))
        with server.running() as address:
            proxy = build_proxy(ClientConfig(
                transport, address, namespace=WEATHER_NS, service_name="GlobalWeather"
            ))
            response = proxy.exchange(figure4_envelope())
        results = unpack_parallel_method(response.first_body_entry())
        texts = [r.require("return").text for r in results]
        assert "Beijing" in texts[0]
        assert "Shanghai" in texts[1]


class TestWeatherOverHttp:
    def test_end_to_end_call(self):
        transport = InProcTransport()
        server = build_server(ServerConfig(services=[make_weather_service()], architecture="staged", transport=transport, address="weather-http"))
        with server.running() as address:
            proxy = build_proxy(ClientConfig(
                transport, address, namespace=WEATHER_NS, service_name="GlobalWeather"
            ))
            report = proxy.call("GetWeather", city="Honolulu", country="USA")
            assert "Honolulu" in report
            with pytest.raises(SoapFaultError):
                proxy.call("GetWeather", city="Nowhere", country="X")
