"""Meta-tests enforcing deliverable (e): documentation on every public item.

Walks every module under ``repro`` and asserts docstrings on modules,
public classes, public functions and public methods.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        names.append(info.name)
    return sorted(names)


MODULES = all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


def public_members():
    seen = set()
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            home = getattr(member, "__module__", "")
            if not home.startswith("repro"):
                continue  # re-exported stdlib etc.
            key = f"{home}.{member.__qualname__}"
            if key in seen:
                continue
            seen.add(key)
            yield key, member
    assert seen


@pytest.mark.parametrize(
    "qualname,member", list(public_members()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_public_item_has_docstring(qualname, member):
    assert inspect.getdoc(member), f"{qualname} lacks a docstring"


def test_public_methods_have_docstrings():
    undocumented = []
    for qualname, member in public_members():
        if not inspect.isclass(member):
            continue
        for name, method in vars(member).items():
            if name.startswith("_") or not inspect.isfunction(method):
                continue
            if not inspect.getdoc(method):
                undocumented.append(f"{qualname}.{name}")
    allowance = 0
    assert len(undocumented) <= allowance, (
        f"{len(undocumented)} undocumented public methods "
        f"(allowance {allowance}):\n" + "\n".join(sorted(undocumented)[:50])
    )


def test_markdown_documents_exist():
    root = pathlib.Path(repro.__file__).resolve().parents[2]
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "PROTOCOL.md"):
        document = root / name
        assert document.exists(), f"{name} missing at repo root"
        assert document.stat().st_size > 1000, f"{name} is stub-sized"
