"""Tests for automatic packing (the paper's future-work feature)."""

import threading
import time

import pytest

from repro.client.proxy import ServiceProxy
from repro.core.autopack import AutoPacker
from repro.core.dispatcher import spi_server_handlers
from repro.errors import PackError, SoapFaultError
from repro.server.handlers import HandlerChain
from repro.server.service import service_from_functions
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

NS = "urn:svc:echo"


@pytest.fixture
def env():
    transport = InProcTransport()

    def echo(payload: str) -> str:
        return payload

    def fail(reason: str) -> str:
        raise RuntimeError(reason)

    server = build_server(ServerConfig(services=[service_from_functions("EchoService", NS, {"echo": echo, "fail": fail})], architecture="staged", transport=transport, address="autopack", chain=HandlerChain(spi_server_handlers())))
    with server.running() as address:
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=NS, service_name="EchoService",
            reuse_connections=True,
        ))
        yield proxy, server
        proxy.close()


class TestAutoPacker:
    def test_single_call_completes(self, env):
        proxy, _ = env
        with AutoPacker(proxy, max_delay=0.005) as packer:
            assert packer.call("echo", payload="solo") == "solo"

    def test_window_batches_concurrent_callers(self, env):
        proxy, server = env
        results = {}
        lock = threading.Lock()
        with AutoPacker(proxy, max_batch=64, max_delay=0.05) as packer:
            barrier = threading.Barrier(8, timeout=5)

            def caller(i):
                barrier.wait()
                value = packer.call("echo", payload=f"m{i}")
                with lock:
                    results[i] = value

            threads = [threading.Thread(target=caller, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)

        assert results == {i: f"m{i}" for i in range(8)}
        # all 8 calls should have shared very few SOAP messages
        assert server.endpoint.stats.soap_messages <= 3
        assert packer.stats.calls == 8
        assert packer.stats.mean_batch_size >= 2

    def test_max_batch_triggers_early_flush(self, env):
        proxy, server = env
        with AutoPacker(proxy, max_batch=2, max_delay=10.0) as packer:
            f1 = packer.submit("echo", payload="a")
            f2 = packer.submit("echo", payload="b")
            assert f1.result(timeout=5) == "a"
            assert f2.result(timeout=5) == "b"
        assert server.endpoint.stats.soap_messages >= 1

    def test_manual_flush(self, env):
        proxy, _ = env
        packer = AutoPacker(proxy, max_batch=100, max_delay=60.0)
        future = packer.submit("echo", payload="manual")
        packer.flush()
        assert future.result(timeout=5) == "manual"
        packer.close()

    def test_fault_propagates_to_caller(self, env):
        proxy, _ = env
        with AutoPacker(proxy, max_delay=0.005) as packer:
            with pytest.raises(SoapFaultError):
                packer.call("fail", reason="bad")

    def test_submit_after_close_raises(self, env):
        proxy, _ = env
        packer = AutoPacker(proxy)
        packer.close()
        with pytest.raises(PackError, match="closed"):
            packer.submit("echo", payload="x")

    def test_close_flushes_pending(self, env):
        proxy, _ = env
        packer = AutoPacker(proxy, max_batch=100, max_delay=60.0)
        future = packer.submit("echo", payload="pending")
        packer.close()
        assert future.result(timeout=5) == "pending"

    def test_invalid_config_raises(self, env):
        proxy, _ = env
        with pytest.raises(PackError):
            AutoPacker(proxy, max_batch=0)
        with pytest.raises(PackError):
            AutoPacker(proxy, max_delay=-1)

    def test_stats_counts_flushes(self, env):
        proxy, _ = env
        with AutoPacker(proxy, max_batch=1) as packer:
            packer.call("echo", payload="a")
            packer.call("echo", payload="b")
        assert packer.stats.flushes >= 2
        assert packer.stats.packed_calls == 2

    def test_latency_bounded_by_window(self, env):
        proxy, _ = env
        with AutoPacker(proxy, max_batch=1000, max_delay=0.02) as packer:
            start = time.monotonic()
            packer.call("echo", payload="bounded")
            elapsed = time.monotonic() - start
        assert elapsed < 1.0
