"""Tests for the SPI remote-execution interface (operation pipelines)."""

import pytest

from repro.client.proxy import ServiceProxy
from repro.core.remote_exec import (
    REMOTE_EXEC_NS,
    REMOTE_EXEC_SERVICE,
    ExecutionPlan,
    PlanRunner,
    RemoteExecutor,
    make_plan_runner_service,
)
from repro.errors import PackError, SoapFaultError
from repro.server.container import ServiceContainer
from repro.server.service import service_from_functions
from repro.soap.fault import ClientFaultCause
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

CALC_NS = "urn:svc:calc"
TEXT_NS = "urn:svc:text"


def calc_services():
    return [
        service_from_functions(
            "Calc",
            CALC_NS,
            {"add": lambda a, b: a + b, "double": lambda x: x * 2},
        ),
        service_from_functions(
            "Text",
            TEXT_NS,
            {"fmt": lambda template, value: template.replace("{}", str(value))},
        ),
    ]


class TestExecutionPlan:
    def test_step_returns_index(self):
        plan = ExecutionPlan()
        assert plan.step(CALC_NS, "add", {"a": 1, "b": 2}) == 0
        assert plan.step(CALC_NS, "double", bindings={"x": 0}) == 1

    def test_forward_binding_rejected(self):
        plan = ExecutionPlan()
        with pytest.raises(PackError, match="earlier step"):
            plan.step(CALC_NS, "double", bindings={"x": 0})

    def test_self_binding_rejected(self):
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 1, "b": 2})
        with pytest.raises(PackError):
            plan.step(CALC_NS, "double", bindings={"x": 1})

    def test_wire_round_trip(self):
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 1, "b": 2})
        plan.step(CALC_NS, "double", bindings={"x": 0})
        restored = ExecutionPlan.from_wire(plan.to_wire())
        assert restored.steps == plan.steps

    def test_from_wire_bad_shapes(self):
        with pytest.raises(ClientFaultCause):
            ExecutionPlan.from_wire("not a list")
        with pytest.raises(ClientFaultCause):
            ExecutionPlan.from_wire(["not a struct"])
        with pytest.raises(ClientFaultCause):
            ExecutionPlan.from_wire([{"operation": "x"}])  # missing namespace


class TestPlanRunner:
    @pytest.fixture
    def runner(self):
        return PlanRunner(ServiceContainer(calc_services()))

    def test_independent_steps(self, runner):
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 1, "b": 2})
        plan.step(CALC_NS, "add", {"a": 10, "b": 20})
        assert runner.execute(plan) == [3, 30]

    def test_dependent_pipeline(self, runner):
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 3, "b": 4})          # -> 7
        plan.step(CALC_NS, "double", bindings={"x": 0})      # -> 14
        plan.step(
            TEXT_NS, "fmt", {"template": "result={}"}, bindings={"value": 1}
        )                                                     # -> "result=14"
        assert runner.execute(plan) == [7, 14, "result=14"]

    def test_empty_plan_rejected(self, runner):
        with pytest.raises(ClientFaultCause, match="empty"):
            runner.execute(ExecutionPlan())

    def test_stats(self, runner):
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 1, "b": 1})
        runner.execute(plan)
        runner.execute(plan)
        assert runner.plans_executed == 2
        assert runner.steps_executed == 2


class TestEndToEnd:
    @pytest.fixture
    def env(self):
        transport = InProcTransport()
        server = build_server(ServerConfig(services=calc_services(), architecture="staged", transport=transport, address="remote-exec"))
        # the runner executes against the server's own container, so
        # plans can reach every co-deployed service
        server.container.deploy(make_plan_runner_service(server.container))
        with server.running() as address:
            yield transport, address

    def test_remote_pipeline_one_round_trip(self, env):
        transport, address = env
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=REMOTE_EXEC_NS, service_name=REMOTE_EXEC_SERVICE
        ))
        executor = RemoteExecutor(proxy)
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 2, "b": 3})
        plan.step(CALC_NS, "double", bindings={"x": 0})
        results = executor.execute(plan)
        assert results == [5, 10]

    def test_remote_fault_for_bad_plan(self, env):
        transport, address = env
        executor = RemoteExecutor(
            build_proxy(ClientConfig(transport, address, namespace=REMOTE_EXEC_NS))
        )
        plan = ExecutionPlan()
        plan.step("urn:nowhere", "nothing", {})
        with pytest.raises(SoapFaultError):
            executor.execute(plan)

    def test_executor_rewraps_foreign_proxy(self, env):
        transport, address = env
        foreign = build_proxy(ClientConfig(transport, address, namespace=CALC_NS, service_name="Calc"))
        executor = RemoteExecutor(foreign)
        plan = ExecutionPlan()
        plan.step(CALC_NS, "add", {"a": 1, "b": 1})
        assert executor.execute(plan) == [2]
