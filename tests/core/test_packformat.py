"""Unit tests for the Parallel_Method pack format (paper Fig. 4)."""

import pytest

from repro.core import packformat
from repro.errors import PackError
from repro.soap.constants import PARALLEL_METHOD, REQUEST_ID_ATTR, SPI_NS
from repro.soap.serializer import serialize_rpc_request
from repro.xmlcore import parse
from repro.xmlcore.writer import serialize

WEATHER_NS = "urn:svc:weather"


def weather_requests():
    return [
        serialize_rpc_request(WEATHER_NS, "GetWeather", {"city": "Beijing", "country": "China"}),
        serialize_rpc_request(WEATHER_NS, "GetWeather", {"city": "Shanghai", "country": "China"}),
    ]


class TestBuild:
    def test_figure4_shape(self):
        """Two GetWeather requests under one Parallel_Method — Fig. 4."""
        wrapper = packformat.build_parallel_method(weather_requests())
        assert wrapper.tag == PARALLEL_METHOD
        children = wrapper.element_children()
        assert len(children) == 2
        assert all(c.local_name == "GetWeather" for c in children)
        cities = [c.require("city").text for c in children]
        assert cities == ["Beijing", "Shanghai"]

    def test_sequential_ids_assigned(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        ids = [c.get(REQUEST_ID_ATTR) for c in wrapper.element_children()]
        assert ids == ["r0", "r1"]

    def test_no_id_assignment_when_disabled(self):
        entries = weather_requests()
        entries[0].set(REQUEST_ID_ATTR, "existing")
        entries[1].set(REQUEST_ID_ATTR, "kept")
        wrapper = packformat.build_parallel_method(entries, assign_ids=False)
        ids = [c.get(REQUEST_ID_ATTR) for c in wrapper.element_children()]
        assert ids == ["existing", "kept"]

    def test_empty_batch_raises(self):
        with pytest.raises(PackError, match="empty"):
            packformat.build_parallel_method([])

    def test_oversized_batch_raises(self):
        from repro.xmlcore.tree import Element

        entries = [Element("op") for _ in range(packformat.MAX_PACKED_REQUESTS + 1)]
        with pytest.raises(PackError, match="limit"):
            packformat.build_parallel_method(entries)

    def test_spi_namespace_on_wire(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        document = serialize(wrapper)
        assert SPI_NS in document
        assert "Parallel_Method" in document


class TestUnpack:
    def test_round_trip_through_wire(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        reparsed = parse(serialize(wrapper))
        entries = packformat.unpack_parallel_method(reparsed)
        assert [e.get(REQUEST_ID_ATTR) for e in entries] == ["r0", "r1"]
        assert entries[0].require("city").text == "Beijing"

    def test_is_parallel_method(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        assert packformat.is_parallel_method(wrapper)
        assert not packformat.is_parallel_method(weather_requests()[0])

    def test_wrong_element_raises(self):
        with pytest.raises(PackError, match="not a Parallel_Method"):
            packformat.unpack_parallel_method(weather_requests()[0])

    def test_empty_wrapper_raises(self):
        from repro.xmlcore.tree import Element

        with pytest.raises(PackError, match="no requests"):
            packformat.unpack_parallel_method(Element(PARALLEL_METHOD))

    def test_missing_request_id_raises(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        wrapper.element_children()[1].pop_attribute(REQUEST_ID_ATTR)
        with pytest.raises(PackError, match="no requestID"):
            packformat.unpack_parallel_method(wrapper)

    def test_duplicate_request_id_raises(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        wrapper.element_children()[1].set(REQUEST_ID_ATTR, "r0")
        with pytest.raises(PackError, match="duplicate"):
            packformat.unpack_parallel_method(wrapper)

    def test_stray_text_raises(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        wrapper.children.insert(1, "junk")
        with pytest.raises(PackError, match="stray"):
            packformat.unpack_parallel_method(wrapper)

    def test_whitespace_tolerated(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        wrapper.children.insert(1, "\n  ")
        assert len(packformat.unpack_parallel_method(wrapper)) == 2


class TestCorrelate:
    def test_mapping(self):
        wrapper = packformat.build_parallel_method(weather_requests())
        mapping = packformat.correlate(wrapper.element_children())
        assert set(mapping) == {"r0", "r1"}
        assert mapping["r1"].require("city").text == "Shanghai"
