"""Unit tests for CallPolicy, Deadline and the retry state machine."""

import random

import pytest

from repro.errors import (
    HttpError,
    InvocationError,
    SoapFaultError,
    TransportError,
)
from repro.resilience.hedge import HedgePolicy
from repro.resilience.policy import (
    CallPolicy,
    DEFAULT_POLICY,
    Deadline,
    RetryState,
    execute_with_policy,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadline:
    def test_never_expires(self):
        deadline = Deadline.never()
        assert not deadline.bounded
        assert deadline.remaining() is None
        assert not deadline.expired()

    def test_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(0.4)
        assert deadline.remaining() == pytest.approx(0.6)
        assert not deadline.expired()
        clock.advance(0.6)
        assert deadline.expired()

    def test_remaining_goes_negative(self):
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(2.0)
        assert deadline.remaining() == pytest.approx(-1.5)
        assert deadline.expired()


class TestCallPolicyValidation:
    def test_default_is_seed_behaviour(self):
        assert DEFAULT_POLICY.timeout is None
        assert DEFAULT_POLICY.retries == 0
        assert not DEFAULT_POLICY.start().bounded

    def test_negative_retries_rejected(self):
        with pytest.raises(InvocationError):
            CallPolicy(retries=-1)

    def test_hedging_bool_is_deprecated_alias(self):
        with pytest.warns(DeprecationWarning, match="hedging"):
            policy = CallPolicy(hedging=True)
        assert policy.hedge_policy == HedgePolicy()

    def test_hedging_accepts_policy(self):
        hedge = HedgePolicy(quantile=0.9, budget_rate=0.02)
        policy = CallPolicy(hedging=hedge)
        assert policy.hedge_policy is hedge
        assert CallPolicy().hedge_policy is None

    def test_hedging_rejects_other_types(self):
        with pytest.raises(InvocationError, match="hedging"):
            CallPolicy(hedging="yes")

    def test_hedge_policy_validation(self):
        with pytest.raises(InvocationError, match="quantile"):
            HedgePolicy(quantile=1.0)
        with pytest.raises(InvocationError, match="quantile"):
            HedgePolicy(quantile=0.0)
        with pytest.raises(InvocationError, match="budget_rate"):
            HedgePolicy(budget_rate=0.0)
        with pytest.raises(InvocationError, match="max_hedges"):
            HedgePolicy(max_hedges=2)
        with pytest.raises(InvocationError, match="budget_burst"):
            HedgePolicy(budget_burst=0.5)

    def test_jitter_range(self):
        with pytest.raises(InvocationError):
            CallPolicy(jitter=1.5)

    def test_with_overrides_is_a_copy(self):
        base = CallPolicy(retries=1)
        bumped = base.with_overrides(retries=3)
        assert base.retries == 1 and bumped.retries == 3

    def test_from_legacy_timeout(self):
        assert CallPolicy.from_legacy_timeout(30).timeout == 30


class TestRetryability:
    def test_busy_and_timeout_faults_retryable(self):
        policy = CallPolicy()
        assert policy.is_retryable(SoapFaultError("Server.Busy", "shed"))
        assert policy.is_retryable(SoapFaultError("SOAP-ENV:Server.Timeout", "late"))

    def test_plain_faults_not_retryable(self):
        policy = CallPolicy()
        assert not policy.is_retryable(SoapFaultError("Server", "boom"))
        assert not policy.is_retryable(SoapFaultError("Client", "bad request"))

    def test_transport_errors_follow_flag(self):
        assert CallPolicy().is_retryable(TransportError("reset"))
        assert not CallPolicy(retry_transport_errors=False).is_retryable(
            TransportError("reset")
        )

    def test_http_503_retryable_others_not(self):
        policy = CallPolicy()
        assert policy.is_retryable(HttpError("busy", status=503))
        assert not policy.is_retryable(HttpError("nope", status=404))

    def test_custom_faultcode_set(self):
        policy = CallPolicy(retryable_faultcodes=frozenset({"Server"}))
        assert policy.is_retryable(SoapFaultError("Server", "boom"))
        assert not policy.is_retryable(SoapFaultError("Server.Busy", "shed"))


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = CallPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_max=0.5, jitter=0.0
        )
        delays = [policy.backoff_delay(i) for i in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_full_jitter_stays_under_cap_and_is_seeded(self):
        policy = CallPolicy(backoff_base=0.1, jitter=1.0)
        a = [policy.backoff_delay(i, rng=random.Random(7)) for i in range(8)]
        b = [policy.backoff_delay(i, rng=random.Random(7)) for i in range(8)]
        assert a == b  # deterministic under a seeded rng
        assert all(0.0 <= d <= policy.backoff_max for d in a)


class TestExecuteWithPolicy:
    def test_success_first_try(self):
        state = RetryState()
        result = execute_with_policy(lambda d: "ok", CallPolicy(), state=state)
        assert result == "ok"
        assert state.attempts == 1 and state.retries == 0

    def test_converges_after_retryable_failures(self):
        failures = [TransportError("drop"), TransportError("drop")]

        def attempt(deadline):
            if failures:
                raise failures.pop(0)
            return "recovered"

        slept = []
        state = RetryState()
        result = execute_with_policy(
            attempt,
            CallPolicy(retries=3, jitter=0.0, backoff_base=0.01),
            sleep=slept.append,
            state=state,
        )
        assert result == "recovered"
        assert state.attempts == 3 and state.retries == 2
        assert slept == pytest.approx([0.01, 0.02])

    def test_budget_exhaustion_reraises_last_error(self):
        def attempt(deadline):
            raise SoapFaultError("Server.Busy", "still shedding")

        with pytest.raises(SoapFaultError, match="still shedding"):
            execute_with_policy(
                attempt, CallPolicy(retries=2, jitter=0.0), sleep=lambda s: None
            )

    def test_non_retryable_raises_immediately(self):
        calls = []

        def attempt(deadline):
            calls.append(1)
            raise SoapFaultError("Client", "your fault")

        with pytest.raises(SoapFaultError):
            execute_with_policy(attempt, CallPolicy(retries=5), sleep=lambda s: None)
        assert len(calls) == 1

    def test_deadline_cuts_retries_short(self):
        # 10ms whole-call budget but the first backoff alone is 50ms:
        # the loop must give up instead of sleeping past the deadline
        def attempt(deadline):
            raise TransportError("drop")

        state = RetryState()
        with pytest.raises(TransportError):
            execute_with_policy(
                attempt,
                CallPolicy(retries=5, deadline=0.01, backoff_base=0.05, jitter=0.0),
                sleep=lambda s: None,
                state=state,
            )
        assert state.attempts == 1

    def test_on_retry_callback_sees_each_retry(self):
        failures = [TransportError("a"), TransportError("b")]

        def attempt(deadline):
            if failures:
                raise failures.pop(0)
            return True

        seen = []
        execute_with_policy(
            attempt,
            CallPolicy(retries=2, jitter=0.0, backoff_base=0.0),
            sleep=lambda s: None,
            on_retry=lambda i, exc, delay: seen.append((i, str(exc))),
        )
        assert seen == [(0, "a"), (1, "b")]
