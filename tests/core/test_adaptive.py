"""Tests for adaptive automatic packing."""

import threading

import pytest

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.adaptive import AdaptiveAutoPacker, WindowController
from repro.core.dispatcher import spi_server_handlers
from repro.errors import PackError
from repro.server.handlers import HandlerChain
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


class TestWindowController:
    def test_initial_delay(self):
        controller = WindowController(initial_delay=0.004)
        assert controller.delay == 0.004

    def test_solo_flush_shrinks(self):
        controller = WindowController(initial_delay=0.004, min_delay=0.001)
        assert controller.note_flush(1) == 0.002
        assert controller.note_flush(1) == 0.001

    def test_shrink_clamped_at_min(self):
        controller = WindowController(initial_delay=0.001, min_delay=0.001)
        assert controller.note_flush(1) == 0.001

    def test_batched_flush_grows(self):
        controller = WindowController(initial_delay=0.004, max_delay=0.01)
        assert controller.note_flush(4) == pytest.approx(0.005)

    def test_growth_clamped_at_max(self):
        controller = WindowController(initial_delay=0.01, max_delay=0.01)
        assert controller.note_flush(8) == 0.01

    def test_solo_rate(self):
        controller = WindowController()
        controller.note_flush(1)
        controller.note_flush(4)
        controller.note_flush(1)
        assert controller.solo_rate == pytest.approx(2 / 3)

    def test_converges_down_under_solo_traffic(self):
        controller = WindowController(
            initial_delay=0.02, min_delay=0.0005, max_delay=0.05
        )
        for _ in range(20):
            controller.note_flush(1)
        assert controller.delay == controller.min_delay

    def test_converges_up_under_batched_traffic(self):
        controller = WindowController(
            initial_delay=0.001, min_delay=0.0005, max_delay=0.05
        )
        for _ in range(40):
            controller.note_flush(8)
        assert controller.delay == controller.max_delay

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_delay": 0.0},
            {"min_delay": 0.01, "initial_delay": 0.005},
            {"initial_delay": 0.2, "max_delay": 0.1},
            {"grow_factor": 1.0},
            {"shrink_factor": 1.0},
            {"shrink_factor": 0.0},
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(PackError):
            WindowController(**kwargs)

    def test_zero_flush_size_raises(self):
        with pytest.raises(PackError):
            WindowController().note_flush(0)


@pytest.fixture
def proxy():
    transport = InProcTransport()
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="adaptive", chain=HandlerChain(spi_server_handlers())))
    with server.running() as address:
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
            reuse_connections=True,
        ))
        yield proxy
        proxy.close()


class TestAdaptiveAutoPacker:
    def test_calls_complete(self, proxy):
        with AdaptiveAutoPacker(proxy) as packer:
            assert packer.call("echo", payload="a") == "a"
            assert packer.call("echo", payload="b") == "b"

    def test_window_shrinks_under_solo_traffic(self, proxy):
        controller = WindowController(
            initial_delay=0.01, min_delay=0.0005, max_delay=0.05
        )
        with AdaptiveAutoPacker(proxy, controller=controller) as packer:
            for i in range(5):
                packer.call("echo", payload=str(i))  # blocking => solo flushes
            assert packer.current_window < 0.01
            assert controller.solo_rate == 1.0

    def test_window_grows_under_concurrent_traffic(self, proxy):
        controller = WindowController(
            initial_delay=0.005, min_delay=0.0005, max_delay=0.05
        )
        with AdaptiveAutoPacker(proxy, max_batch=64, controller=controller) as packer:
            for _ in range(4):
                barrier = threading.Barrier(6, timeout=5)
                threads = []

                def caller(j):
                    barrier.wait()
                    packer.call("echo", payload=str(j))

                for j in range(6):
                    thread = threading.Thread(target=caller, args=(j,))
                    thread.start()
                    threads.append(thread)
                for thread in threads:
                    thread.join(timeout=10)
            assert controller.flushes >= 1
            assert packer.current_window > 0.005 * 0.9  # grew or held, never collapsed

    def test_stats_still_tracked(self, proxy):
        with AdaptiveAutoPacker(proxy) as packer:
            packer.call("echo", payload="x")
        assert packer.stats.calls == 1
        assert packer.stats.flushes >= 1
