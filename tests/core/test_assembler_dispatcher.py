"""Unit tests for SPI assemblers and dispatchers (paper §3.4–3.5)."""

import pytest

from repro.client.futures import InvocationFuture
from repro.core.assembler import PACKED_FLAG_PROPERTY, ClientAssembler, ServerAssembler
from repro.core.dispatcher import ClientDispatcher, ServerDispatcher, spi_server_handlers
from repro.core.packformat import build_parallel_method, is_parallel_method
from repro.errors import PackError, SoapFaultError
from repro.server.handlers import HandlerChain, MessageContext
from repro.soap.constants import FAULT_SERVER, REQUEST_ID_ATTR
from repro.soap.envelope import Envelope
from repro.soap.fault import SoapFault
from repro.soap.serializer import (
    build_fault_envelope,
    serialize_rpc_request,
    serialize_rpc_response,
)

NS = "urn:svc:echo"


class TestClientAssembler:
    def test_add_call_returns_future_with_id(self):
        assembler = ClientAssembler(NS)
        f0 = assembler.add_call("echo", {"payload": "a"})
        f1 = assembler.add_call("echo", {"payload": "b"})
        assert (f0.request_id, f1.request_id) == ("r0", "r1")
        assert len(assembler) == 2

    def test_assemble_builds_packed_envelope(self):
        assembler = ClientAssembler(NS)
        assembler.add_call("echo", {"payload": "a"})
        assembler.add_call("reverse", {"payload": "b"})
        envelope = assembler.assemble()
        entry = envelope.first_body_entry()
        assert is_parallel_method(entry)
        ops = [c.local_name for c in entry.element_children()]
        assert ops == ["echo", "reverse"]

    def test_envelope_ids_match_future_ids(self):
        assembler = ClientAssembler(NS)
        futures = [assembler.add_call("echo", {"payload": str(i)}) for i in range(3)]
        envelope = assembler.assemble()
        wire_ids = [
            c.get(REQUEST_ID_ATTR)
            for c in envelope.first_body_entry().element_children()
        ]
        assert wire_ids == [f.request_id for f in futures]

    def test_assemble_with_headers(self):
        from repro.xmlcore.tree import Element

        assembler = ClientAssembler(NS)
        assembler.add_call("echo", {"payload": "x"})
        envelope = assembler.assemble(headers=[Element("{urn:h}tok")])
        assert len(envelope.header_entries) == 1

    def test_assemble_empty_raises(self):
        with pytest.raises(PackError):
            ClientAssembler(NS).assemble()


def packed_context(*entries):
    envelope = Envelope()
    envelope.add_body(build_parallel_method(list(entries)))
    return MessageContext.for_envelope(envelope)


def plain_context(entry):
    envelope = Envelope()
    envelope.add_body(entry)
    return MessageContext.for_envelope(envelope)


class TestServerDispatcher:
    def test_unpacks_parallel_method(self):
        context = packed_context(
            serialize_rpc_request(NS, "echo", {"payload": "a"}),
            serialize_rpc_request(NS, "echo", {"payload": "b"}),
        )
        dispatcher = ServerDispatcher()
        dispatcher.invoke_request(context)
        assert len(context.request_entries) == 2
        assert context.packed
        assert context.properties[PACKED_FLAG_PROPERTY]
        assert dispatcher.packed_messages == 1
        assert dispatcher.unpacked_requests == 2

    def test_plain_message_untouched(self):
        context = plain_context(serialize_rpc_request(NS, "echo", {"payload": "a"}))
        dispatcher = ServerDispatcher()
        dispatcher.invoke_request(context)
        assert len(context.request_entries) == 1
        assert not context.packed
        assert dispatcher.packed_messages == 0

    def test_multi_entry_non_packed_untouched(self):
        envelope = Envelope()
        envelope.add_body(serialize_rpc_request(NS, "echo", {"payload": "a"}))
        envelope.add_body(serialize_rpc_request(NS, "echo", {"payload": "b"}))
        context = MessageContext.for_envelope(envelope)
        ServerDispatcher().invoke_request(context)
        assert not context.packed

    def test_malformed_pack_raises(self):
        wrapper = build_parallel_method(
            [serialize_rpc_request(NS, "echo", {"payload": "a"})]
        )
        wrapper.element_children()[0].pop_attribute(REQUEST_ID_ATTR)
        context = plain_context(wrapper)
        with pytest.raises(PackError):
            ServerDispatcher().invoke_request(context)


class TestServerAssembler:
    def test_packs_responses_when_flagged(self):
        context = packed_context(serialize_rpc_request(NS, "echo", {"payload": "a"}))
        context.properties[PACKED_FLAG_PROPERTY] = True
        r0 = serialize_rpc_response(NS, "echo", "a")
        r0.set(REQUEST_ID_ATTR, "r0")
        r1 = serialize_rpc_response(NS, "echo", "b")
        r1.set(REQUEST_ID_ATTR, "r1")
        context.response_entries = [r0, r1]
        ServerAssembler().invoke_response(context)
        assert len(context.response_entries) == 1
        assert is_parallel_method(context.response_entries[0])

    def test_skips_unpacked_exchanges(self):
        context = plain_context(serialize_rpc_request(NS, "echo", {"payload": "a"}))
        response = serialize_rpc_response(NS, "echo", "a")
        context.response_entries = [response]
        ServerAssembler().invoke_response(context)
        assert context.response_entries == [response]


class TestHandlerPairThroughChain:
    def test_full_request_response_cycle(self):
        chain = HandlerChain(spi_server_handlers())
        context = packed_context(
            serialize_rpc_request(NS, "echo", {"payload": "a"}),
            serialize_rpc_request(NS, "echo", {"payload": "b"}),
        )
        chain.run_request(context)
        assert len(context.request_entries) == 2
        # emulate the executor: respond to each, copying ids
        responses = []
        for entry in context.request_entries:
            response = serialize_rpc_response(NS, "echo", entry.require("payload").text)
            response.set(REQUEST_ID_ATTR, entry.get(REQUEST_ID_ATTR))
            responses.append(response)
        context.response_entries = responses
        chain.run_response(context)
        assert len(context.response_entries) == 1
        assert is_parallel_method(context.response_entries[0])


def packed_response_envelope(*pairs):
    """pairs: (request_id, element)"""
    entries = []
    for rid, element in pairs:
        element.set(REQUEST_ID_ATTR, rid)
        entries.append(element)
    envelope = Envelope()
    envelope.add_body(build_parallel_method(entries, assign_ids=False))
    return envelope


class TestClientDispatcher:
    def test_resolves_in_request_order_despite_wire_order(self):
        f0 = InvocationFuture("echo", request_id="r0")
        f1 = InvocationFuture("echo", request_id="r1")
        envelope = packed_response_envelope(
            ("r1", serialize_rpc_response(NS, "echo", "second")),
            ("r0", serialize_rpc_response(NS, "echo", "first")),
        )
        ClientDispatcher().dispatch(envelope, [f0, f1])
        assert f0.result(timeout=0) == "first"
        assert f1.result(timeout=0) == "second"

    def test_per_request_fault_fails_only_that_future(self):
        f0 = InvocationFuture("echo", request_id="r0")
        f1 = InvocationFuture("echo", request_id="r1")
        envelope = packed_response_envelope(
            ("r0", serialize_rpc_response(NS, "echo", "good")),
            ("r1", SoapFault(FAULT_SERVER, "bad").to_element()),
        )
        ClientDispatcher().dispatch(envelope, [f0, f1])
        assert f0.result(timeout=0) == "good"
        assert isinstance(f1.exception(timeout=0), SoapFaultError)

    def test_missing_response_fails_future(self):
        f0 = InvocationFuture("echo", request_id="r0")
        f1 = InvocationFuture("echo", request_id="r1")
        envelope = packed_response_envelope(
            ("r0", serialize_rpc_response(NS, "echo", "only")),
        )
        ClientDispatcher().dispatch(envelope, [f0, f1])
        assert f0.result(timeout=0) == "only"
        assert isinstance(f1.exception(timeout=0), PackError)

    def test_envelope_fault_fails_all(self):
        f0 = InvocationFuture("echo", request_id="r0")
        f1 = InvocationFuture("echo", request_id="r1")
        envelope = build_fault_envelope(SoapFault(FAULT_SERVER, "total failure"))
        ClientDispatcher().dispatch(envelope, [f0, f1])
        assert isinstance(f0.exception(timeout=0), SoapFaultError)
        assert isinstance(f1.exception(timeout=0), SoapFaultError)

    def test_non_packed_response_fails_all_with_pack_error(self):
        f0 = InvocationFuture("echo", request_id="r0")
        envelope = Envelope()
        envelope.add_body(serialize_rpc_response(NS, "echo", "naked"))
        ClientDispatcher().dispatch(envelope, [f0])
        assert isinstance(f0.exception(timeout=0), PackError)
