"""Integration tests: PackBatch / PackedInvoker / SPI facade end to end."""

import time

import pytest

from repro.client.invoker import Call
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch, PackedInvoker
from repro.core.dispatcher import spi_server_handlers
from repro.core.spi import connect
from repro.errors import PackError, SoapFaultError
from repro.server.handlers import HandlerChain
from repro.server.service import service_from_functions
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

NS = "urn:svc:echo"


def make_server(transport, address="spi-server"):
    def echo(payload: str) -> str:
        return payload

    def slow(payload: str) -> str:
        time.sleep(0.05)
        return payload

    def fail(reason: str) -> str:
        raise RuntimeError(reason)

    services = [
        service_from_functions("EchoService", NS, {"echo": echo, "slow": slow, "fail": fail})
    ]
    return build_server(ServerConfig(services=services, architecture="staged", transport=transport, address=address, chain=HandlerChain(spi_server_handlers())))


@pytest.fixture
def env():
    transport = InProcTransport()
    server = make_server(transport)
    with server.running() as address:
        proxy = build_proxy(ClientConfig(transport, address, namespace=NS, service_name="EchoService"))
        yield transport, address, proxy, server
        proxy.close()


class TestPackBatch:
    def test_basic_pack(self, env):
        _, _, proxy, _ = env
        batch = PackBatch(proxy)
        futures = [batch.call("echo", payload=f"m{i}") for i in range(4)]
        batch.flush()
        assert [f.result(timeout=5) for f in futures] == ["m0", "m1", "m2", "m3"]

    def test_one_soap_message_for_m_calls(self, env):
        _, _, proxy, server = env
        batch = PackBatch(proxy)
        for i in range(8):
            batch.call("echo", payload=str(i))
        batch.flush()
        assert server.endpoint.stats.soap_messages == 1
        assert server.container.stats.entries_executed == 8
        assert server.http.connections_accepted == 1

    def test_context_manager_flushes(self, env):
        _, _, proxy, _ = env
        with PackBatch(proxy) as batch:
            future = batch.call("echo", payload="auto")
        assert future.result(timeout=5) == "auto"

    def test_context_manager_exception_fails_futures(self, env):
        _, _, proxy, server = env
        with pytest.raises(ValueError):
            with PackBatch(proxy) as batch:
                future = batch.call("echo", payload="doomed")
                raise ValueError("user error")
        assert isinstance(future.exception(timeout=0), PackError)
        assert server.endpoint.stats.soap_messages == 0

    def test_double_flush_raises(self, env):
        _, _, proxy, _ = env
        batch = PackBatch(proxy)
        batch.call("echo", payload="x")
        batch.flush()
        with pytest.raises(PackError, match="already flushed"):
            batch.flush()

    def test_call_after_flush_raises(self, env):
        _, _, proxy, _ = env
        batch = PackBatch(proxy)
        batch.call("echo", payload="x")
        batch.flush()
        with pytest.raises(PackError):
            batch.call("echo", payload="y")

    def test_empty_batch_flush_is_noop(self, env):
        _, _, proxy, server = env
        assert PackBatch(proxy).flush() == []
        assert server.endpoint.stats.soap_messages == 0

    def test_mixed_results_and_faults(self, env):
        _, _, proxy, _ = env
        batch = PackBatch(proxy)
        ok = batch.call("echo", payload="fine")
        bad = batch.call("fail", reason="oops")
        also_ok = batch.call("echo", payload="fine2")
        batch.flush()
        assert ok.result(timeout=5) == "fine"
        assert also_ok.result(timeout=5) == "fine2"
        error = bad.exception(timeout=5)
        assert isinstance(error, SoapFaultError)
        assert "oops" in str(error)

    def test_transport_failure_fails_all_futures(self):
        transport = InProcTransport()
        server = make_server(transport, address="dies")
        with server.running() as address:
            proxy = build_proxy(ClientConfig(transport, address, namespace=NS, service_name="EchoService"))
        # server now stopped; listener gone
        batch = PackBatch(proxy)
        futures = [batch.call("echo", payload="x"), batch.call("echo", payload="y")]
        batch.flush()
        for future in futures:
            assert future.exception(timeout=0) is not None

    def test_packed_slow_calls_execute_concurrently(self, env):
        _, _, proxy, _ = env
        batch = PackBatch(proxy)
        futures = [batch.call("slow", payload=str(i)) for i in range(6)]
        start = time.monotonic()
        batch.flush()
        results = [f.result(timeout=5) for f in futures]
        elapsed = time.monotonic() - start
        assert results == [str(i) for i in range(6)]
        assert elapsed < 0.25  # serial would be >= 0.3


class TestPackedInvoker:
    def test_invoke_all(self, env):
        _, _, proxy, server = env
        calls = Call.many("echo", [{"payload": f"p{i}"} for i in range(5)])
        results = PackedInvoker(proxy).invoke_all(calls)
        assert results == [f"p{i}" for i in range(5)]
        assert server.endpoint.stats.soap_messages == 1

    def test_name(self, env):
        _, _, proxy, _ = env
        assert PackedInvoker(proxy).name == "packed"


class TestSpiFacade:
    def test_connect_and_call(self, env):
        transport, address, _, _ = env
        with connect(
            transport, address, namespace=NS, service_name="EchoService"
        ) as client:
            assert client.call("echo", payload="plain") == "plain"

    def test_pack_through_facade(self, env):
        transport, address, _, server = env
        before = server.endpoint.stats.soap_messages
        with connect(transport, address, namespace=NS, service_name="EchoService") as client:
            with client.pack() as batch:
                futures = [batch.call("echo", payload=f"f{i}") for i in range(3)]
            assert [f.result(timeout=5) for f in futures] == ["f0", "f1", "f2"]
        assert server.endpoint.stats.soap_messages - before == 1

    def test_facade_uses_pooled_connections(self, env):
        transport, address, _, server = env
        with connect(transport, address, namespace=NS, service_name="EchoService") as client:
            client.call("echo", payload="a")
            client.call("echo", payload="b")
        assert server.http.connections_accepted == 1


class TestServerWithoutSpiHandlers:
    def test_packed_message_against_plain_server_faults_cleanly(self):
        """A Parallel_Method sent to a server without the SPI handlers is
        an unknown operation -> per-entry Client fault, surfaced on all
        futures (endpoint treats the single entry normally)."""
        transport = InProcTransport()

        def echo(payload: str) -> str:
            return payload

        server = build_server(ServerConfig(services=[service_from_functions("EchoService", NS, {"echo": echo})], architecture="staged", transport=transport, address="nospi"))
        with server.running() as address:
            proxy = build_proxy(ClientConfig(transport, address, namespace=NS, service_name="EchoService"))
            batch = PackBatch(proxy)
            futures = [batch.call("echo", payload="x")]
            batch.flush()
        error = futures[0].exception(timeout=5)
        assert error is not None
