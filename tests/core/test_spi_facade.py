"""Tests for the SpiClient facade: every SPI interface from one handle."""

import pytest

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.core.remote_exec import make_plan_runner_service
from repro.core.spi import SpiClient, connect
from repro.core.dispatcher import spi_server_handlers
from repro.server.handlers import HandlerChain
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server


@pytest.fixture(scope="module")
def env():
    transport = InProcTransport()
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="facade", chain=HandlerChain(spi_server_handlers())))
    server.container.deploy(make_plan_runner_service(server.container))
    with server.running() as address:
        yield transport, address, server


@pytest.fixture
def client(env):
    transport, address, _ = env
    with connect(
        transport, address, namespace=ECHO_NS, service_name="EchoService"
    ) as spi_client:
        yield spi_client


class TestFacade:
    def test_classic_call(self, client):
        assert client.call("echo", payload="plain rpc") == "plain rpc"

    def test_pack_interface(self, client):
        with client.pack() as batch:
            futures = [batch.call("echo", payload=f"f{i}") for i in range(3)]
        assert [f.result(timeout=10) for f in futures] == ["f0", "f1", "f2"]

    def test_auto_interface(self, client):
        with client.auto(max_delay=0.005) as packer:
            assert packer.call("echo", payload="via-auto") == "via-auto"

    def test_plan_and_remote_execute(self, client):
        plan = client.plan()
        first = plan.step(ECHO_NS, "echo", {"payload": "seed"})
        plan.step(ECHO_NS, "echo", bindings={"payload": first})
        results = client.remote_execute(plan)
        assert results == ["seed", "seed"]

    def test_context_manager_closes(self, env):
        transport, address, _ = env
        spi_client = connect(transport, address, namespace=ECHO_NS, service_name="EchoService")
        with spi_client:
            spi_client.call("echo", payload="x")
        # pool is closed; a fresh call re-opens transparently? No — the
        # proxy's pool is closed, but acquire() creates new connections,
        # so calls still work.  What must hold: close() is idempotent.
        spi_client.close()

    def test_connect_defaults_to_pooled(self, env):
        transport, address, server = env
        before = server.http.connections_accepted
        with connect(transport, address, namespace=ECHO_NS, service_name="EchoService") as c:
            c.call("echo", payload="a")
            c.call("echo", payload="b")
            c.call("echo", payload="c")
        assert server.http.connections_accepted - before == 1

    def test_connect_can_disable_pooling(self, env):
        transport, address, server = env
        before = server.http.connections_accepted
        with connect(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
            reuse_connections=False,
        ) as c:
            c.call("echo", payload="a")
            c.call("echo", payload="b")
        assert server.http.connections_accepted - before == 2


class TestMessageStats:
    def test_counters(self):
        from repro.soap.message import MessageStats

        stats = MessageStats()
        stats.sent(100)
        stats.sent(50)
        stats.received(70)
        stats.bump("retries")
        stats.bump("retries", 2)
        snap = stats.snapshot()
        assert snap["messages_sent"] == 2
        assert snap["bytes_sent"] == 150
        assert snap["messages_received"] == 1
        assert snap["bytes_received"] == 70
        assert snap["retries"] == 3
