"""Tests for one-way (fire-and-forget) invocations."""

import threading
import time

import pytest

from repro.apps.echo import ECHO_NS
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.core.oneway import (
    ACCEPTED_TAG,
    accepted_response,
    is_accepted,
    is_one_way,
    mark_one_way,
)
from repro.core.spi import connect
from repro.server.handlers import HandlerChain
from repro.server.service import service_from_functions
from repro.server import ServerConfig, build_server
from repro.soap.constants import REQUEST_ID_ATTR
from repro.soap.serializer import serialize_rpc_request
from repro.transport.inproc import InProcTransport
from repro.xmlcore.tree import Element
from repro.client.config import ClientConfig, build_proxy


class TestPrimitives:
    def test_mark_and_detect(self):
        entry = serialize_rpc_request(ECHO_NS, "echo", {"payload": "x"})
        assert not is_one_way(entry)
        mark_one_way(entry)
        assert is_one_way(entry)

    def test_accepted_response_carries_request_id(self):
        entry = Element("op")
        entry.set(REQUEST_ID_ATTR, "r5")
        ack = accepted_response(entry)
        assert ack.tag == ACCEPTED_TAG
        assert ack.get(REQUEST_ID_ATTR) == "r5"

    def test_accepted_response_without_id(self):
        ack = accepted_response(Element("op"))
        assert ack.get(REQUEST_ID_ATTR) is None

    def test_is_accepted(self):
        assert is_accepted(accepted_response(Element("op")))
        assert not is_accepted(Element("other"))


class _SlowSink:
    """Service that records notifications after a delay."""

    def __init__(self):
        self.received: list[str] = []
        self.lock = threading.Lock()
        self.event = threading.Event()

    def notify(self, message: str) -> str:
        time.sleep(0.05)
        with self.lock:
            self.received.append(message)
        self.event.set()
        return "done"


def make_env(architecture):
    transport = InProcTransport()
    sink = _SlowSink()
    service = service_from_functions(
        "Sink", "urn:sink", {"notify": sink.notify, "ping": lambda: "pong"}
    )
    server = build_server(ServerConfig(
        services=[service],
        architecture=architecture,
        transport=transport,
        address="oneway",
        chain=HandlerChain(spi_server_handlers()),
    ))
    return transport, server, sink


class TestStagedOneWay:
    @pytest.fixture
    def env(self):
        transport, server, sink = make_env("staged")
        with server.running() as address:
            proxy = build_proxy(ClientConfig(transport, address, namespace="urn:sink", service_name="Sink"))
            yield proxy, server, sink
            proxy.close()

    def test_cast_returns_before_execution(self, env):
        proxy, _, sink = env
        batch = PackBatch(proxy)
        future = batch.cast("notify", message="fast ack")
        start = time.monotonic()
        batch.flush()
        assert future.result(timeout=5) is None
        elapsed = time.monotonic() - start
        # the ack must not wait for the 50 ms operation
        assert elapsed < 0.045
        # the operation still executes eventually
        assert sink.event.wait(timeout=5)
        assert sink.received == ["fast ack"]

    def test_burst_of_casts_one_round_trip(self, env):
        proxy, server, sink = env
        batch = PackBatch(proxy)
        futures = [batch.cast("notify", message=f"n{i}") for i in range(5)]
        start = time.monotonic()
        batch.flush()
        for future in futures:
            assert future.result(timeout=5) is None
        assert time.monotonic() - start < 0.1  # 5 x 50 ms if waited
        assert server.endpoint.stats.soap_messages == 1
        deadline = time.monotonic() + 5
        while len(sink.received) < 5 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert sorted(sink.received) == [f"n{i}" for i in range(5)]

    def test_mixed_call_and_cast(self, env):
        proxy, _, sink = env
        batch = PackBatch(proxy)
        ack = batch.cast("notify", message="bg")
        answer = batch.call("ping")
        batch.flush()
        assert ack.result(timeout=5) is None
        assert answer.result(timeout=5) == "pong"
        assert sink.event.wait(timeout=5)

    def test_facade_cast(self, env):
        proxy, _, sink = env
        transport, address = proxy.transport, proxy.address
        with connect(transport, address, namespace="urn:sink", service_name="Sink") as client:
            client.cast("notify", message="via facade")
        assert sink.event.wait(timeout=5)
        assert "via facade" in sink.received

    def test_oneway_failure_does_not_surface(self, env):
        """A one-way operation that faults is acknowledged anyway; the
        failure is recorded server-side only."""
        proxy, server, _ = env
        batch = PackBatch(proxy)
        future = batch.cast("noSuchOperation")
        batch.flush()
        assert future.result(timeout=5) is None
        deadline = time.monotonic() + 5
        while server.container.stats.faults == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert server.container.stats.faults == 1


class TestCommonArchOneWay:
    def test_executes_synchronously_but_acks(self):
        transport, server, sink = make_env("common")
        with server.running() as address:
            proxy = build_proxy(ClientConfig(transport, address, namespace="urn:sink", service_name="Sink"))
            batch = PackBatch(proxy)
            future = batch.cast("notify", message="sync")
            start = time.monotonic()
            batch.flush()
            elapsed = time.monotonic() - start
            proxy.close()
        assert future.result(timeout=5) is None
        # Figure 1 has no second pool: the response waits for execution
        assert elapsed >= 0.045
        assert sink.received == ["sync"]
