"""Unit and convergence tests for the AIMD adaptive concurrency window.

The limiter's clock is injected, so cooldown behaviour replays exactly;
the convergence tests drive it with a seeded rng instead of a wire.
"""

import random

import pytest

from repro.errors import InvocationError
from repro.resilience.limiter import (
    OUTCOME_ERROR,
    OUTCOME_OVERLOAD,
    OUTCOME_SUCCESS,
    AdaptiveLimiter,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestAdditiveIncrease:
    def test_success_grows_by_additive_over_limit(self):
        limiter = AdaptiveLimiter(initial=4.0, clock=FakeClock())
        assert limiter.try_acquire()
        limiter.release(OUTCOME_SUCCESS)
        assert limiter.limit == pytest.approx(4.25)  # + 1/4

    def test_one_windows_worth_of_successes_adds_about_one(self):
        # the TCP analogy: one MSS per RTT — floor(limit) successes
        # grow the window by roughly one slot
        limiter = AdaptiveLimiter(initial=8.0, clock=FakeClock())
        for _ in range(8):
            assert limiter.try_acquire()
            limiter.release(OUTCOME_SUCCESS)
        assert limiter.limit == pytest.approx(9.0, abs=0.1)

    def test_growth_caps_at_max_limit(self):
        limiter = AdaptiveLimiter(
            initial=4.0, max_limit=4.5, additive=10.0, clock=FakeClock()
        )
        limiter.try_acquire()
        limiter.release(OUTCOME_SUCCESS)
        assert limiter.limit == 4.5


class TestMultiplicativeDecrease:
    def test_overload_halves_with_floor(self):
        limiter = AdaptiveLimiter(initial=8.0, clock=FakeClock())
        for expected in (4.0, 2.0, 1.0, 1.0):
            limiter.try_acquire()
            limiter.release(OUTCOME_OVERLOAD)
            assert limiter.limit == pytest.approx(expected)

    def test_cooldown_coalesces_one_congestion_event(self):
        # a burst of sheds from one congestion event must cost ONE
        # decrease, not collapse the window to the floor
        clock = FakeClock()
        limiter = AdaptiveLimiter(initial=16.0, cooldown_s=1.0, clock=clock)
        for _ in range(5):
            limiter.try_acquire()
            limiter.release(OUTCOME_OVERLOAD)
        assert limiter.limit == pytest.approx(8.0)
        assert limiter.snapshot()["decreases"] == 1
        clock.advance(1.5)  # a new congestion event, past the cooldown
        limiter.try_acquire()
        limiter.release(OUTCOME_OVERLOAD)
        assert limiter.limit == pytest.approx(4.0)
        assert limiter.snapshot()["decreases"] == 2

    def test_error_outcome_is_neutral(self):
        limiter = AdaptiveLimiter(initial=8.0, clock=FakeClock())
        limiter.try_acquire()
        limiter.release(OUTCOME_ERROR)
        assert limiter.limit == 8.0


class TestGating:
    def test_gates_at_floor_of_limit(self):
        limiter = AdaptiveLimiter(initial=2.0, clock=FakeClock())
        assert limiter.try_acquire()
        assert limiter.try_acquire()
        assert not limiter.try_acquire()  # floor(2.0) slots are taken
        assert limiter.gated == 1
        limiter.release(OUTCOME_SUCCESS)
        assert limiter.try_acquire()  # a freed slot re-admits

    def test_release_without_acquire_rejected(self):
        limiter = AdaptiveLimiter(clock=FakeClock())
        with pytest.raises(InvocationError):
            limiter.release(OUTCOME_SUCCESS)

    def test_unknown_outcome_rejected(self):
        limiter = AdaptiveLimiter(clock=FakeClock())
        limiter.try_acquire()
        with pytest.raises(InvocationError, match="outcome"):
            limiter.release("shrug")


class TestValidation:
    def test_limit_ordering_required(self):
        with pytest.raises(InvocationError):
            AdaptiveLimiter(initial=0.5)
        with pytest.raises(InvocationError):
            AdaptiveLimiter(initial=8.0, max_limit=4.0)

    def test_knob_ranges(self):
        with pytest.raises(InvocationError):
            AdaptiveLimiter(additive=0.0)
        with pytest.raises(InvocationError):
            AdaptiveLimiter(decrease=1.0)
        with pytest.raises(InvocationError):
            AdaptiveLimiter(cooldown_s=-1.0)


class TestConvergence:
    """Seeded chaos: the window must track the overload signal."""

    def run_storm(self, limiter, rng, rounds, overload_rate):
        for _ in range(rounds):
            if not limiter.try_acquire():
                continue
            overloaded = rng.random() < overload_rate
            limiter.release(
                OUTCOME_OVERLOAD if overloaded else OUTCOME_SUCCESS
            )

    def test_sustained_storm_collapses_the_window(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(initial=64.0, clock=clock)
        self.run_storm(limiter, random.Random(7), 500, overload_rate=0.9)
        assert limiter.limit <= 2.0

    def test_recovery_reopens_the_window(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(initial=64.0, clock=clock)
        self.run_storm(limiter, random.Random(7), 500, overload_rate=0.9)
        collapsed = limiter.limit
        self.run_storm(limiter, random.Random(11), 500, overload_rate=0.0)
        assert limiter.limit > collapsed + 10

    def test_equilibrium_under_mixed_load_stays_off_the_rails(self):
        # 10% sheds: AIMD should oscillate between floor and ceiling,
        # never pinning to either for the whole run
        clock = FakeClock()
        limiter = AdaptiveLimiter(initial=8.0, max_limit=64.0, clock=clock)
        samples = []
        rng = random.Random(3)
        for _ in range(2000):
            if limiter.try_acquire():
                overloaded = rng.random() < 0.1
                limiter.release(
                    OUTCOME_OVERLOAD if overloaded else OUTCOME_SUCCESS
                )
            samples.append(limiter.limit)
        assert min(samples) >= 1.0
        assert max(samples) <= 64.0
        average = sum(samples) / len(samples)
        assert 1.5 < average < 32.0
