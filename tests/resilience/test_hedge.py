"""Unit tests for the hedge policy, budget bucket and trigger function.

Everything here is pure: time only ever arrives as an argument (the
``no-wallclock-in-hedge`` contract), so the tests are plain arithmetic.
"""

import pytest

from repro.errors import InvocationError
from repro.obs.rollup import ObsRollup
from repro.resilience.hedge import HedgeBudget, HedgePolicy, hedge_trigger


def seeded_rollup(latencies):
    """A rollup that has observed the given latencies (successes)."""
    rollup = ObsRollup("client:test", "echo")
    for value in latencies:
        rollup.observe(value, None)
    return rollup


class TestHedgeBudget:
    def test_starts_full_and_spends_whole_tokens(self):
        budget = HedgeBudget(rate=0.05, burst=2.0)
        assert budget.tokens == pytest.approx(2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # empty: third hedge denied
        assert budget.spent == 2
        assert budget.denied == 1

    def test_calls_accrue_rate_capped_at_burst(self):
        budget = HedgeBudget(rate=0.1, burst=1.0)
        assert budget.try_spend()  # drain the single token
        for _ in range(5):
            budget.note_call()
        assert budget.tokens == pytest.approx(0.5)
        assert not budget.try_spend()  # half a token is not a hedge
        for _ in range(50):
            budget.note_call()
        assert budget.tokens == pytest.approx(1.0)  # capped at burst
        assert budget.try_spend()

    def test_long_run_rate_is_bounded(self):
        # 1000 eligible calls at rate 0.05 fund at most burst + 50 hedges.
        budget = HedgeBudget(rate=0.05, burst=4.0)
        fired = 0
        for _ in range(1000):
            budget.note_call()
            if budget.try_spend():
                fired += 1
        assert fired <= 4 + 0.05 * 1000
        assert fired >= 50  # the rate keeps refunding, so hedges keep flowing

    def test_for_policy_copies_rates(self):
        policy = HedgePolicy(budget_rate=0.02, budget_burst=3.0)
        budget = HedgeBudget.for_policy(policy)
        assert budget.tokens == pytest.approx(3.0)
        budget.try_spend()
        budget.note_call()
        assert budget.tokens == pytest.approx(2.02)

    def test_snapshot_is_consistent(self):
        budget = HedgeBudget(rate=0.5, burst=1.0)
        budget.try_spend()
        budget.try_spend()
        assert budget.snapshot() == {"tokens": 0.0, "spent": 1, "denied": 1}

    def test_validation(self):
        with pytest.raises(InvocationError):
            HedgeBudget(rate=0.0)
        with pytest.raises(InvocationError):
            HedgeBudget(burst=0.5)


class TestHedgeTrigger:
    def test_fires_at_the_policy_quantile(self):
        # 19 fast calls and one straggler: p95 sits on the straggler's
        # shoulder, so the trigger lands between the two clusters.
        rollup = seeded_rollup([0.010] * 19 + [0.200])
        trigger = hedge_trigger(HedgePolicy(quantile=0.5), rollup, None)
        assert trigger == pytest.approx(0.010, rel=0.25)

    def test_cold_rollup_never_hedges(self):
        rollup = seeded_rollup([0.010] * 15)  # one short of min_samples
        assert hedge_trigger(HedgePolicy(min_samples=16), rollup, None) is None
        assert hedge_trigger(HedgePolicy(), None, None) is None

    def test_warm_rollup_arms_the_hedge(self):
        rollup = seeded_rollup([0.010] * 16)
        assert hedge_trigger(HedgePolicy(min_samples=16), rollup, None) is not None

    def test_disabled_policy_never_hedges(self):
        rollup = seeded_rollup([0.010] * 100)
        assert hedge_trigger(HedgePolicy(max_hedges=0), rollup, None) is None

    def test_trigger_floored_at_min_trigger(self):
        # microsecond-level quantiles must not double every send
        rollup = seeded_rollup([0.000001] * 32)
        trigger = hedge_trigger(HedgePolicy(min_trigger_s=0.005), rollup, None)
        assert trigger == pytest.approx(0.005)

    def test_trigger_beyond_attempt_budget_is_pointless(self):
        # the I/O timeout fires first, so the hedge adds nothing
        rollup = seeded_rollup([0.300] * 32)
        assert hedge_trigger(HedgePolicy(), rollup, 0.250) is None
        assert hedge_trigger(HedgePolicy(), rollup, 10.0) is not None
