"""Tests for differential deserialization (server-side template bypass)."""

import pytest

from repro.soap.diffdeser import DifferentialDeserializer
from repro.soap.serializer import build_request_envelope

NS = "urn:svc:weather"


def raw(operation="GetWeather", **params) -> bytes:
    return build_request_envelope(NS, operation, params).to_bytes()


class TestDifferentialDeserializer:
    def test_first_message_is_miss(self):
        dd = DifferentialDeserializer()
        request = dd.deserialize(raw(city="Beijing"))
        assert request.params == {"city": "Beijing"}
        assert dd.stats.misses == 1
        assert dd.stats.hits == 0
        assert dd.stats.templates == 1

    def test_second_similar_message_is_hit(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="Beijing"))
        request = dd.deserialize(raw(city="Shanghai"))
        assert request.params == {"city": "Shanghai"}
        assert request.namespace == NS
        assert request.operation == "GetWeather"
        assert dd.stats.hits == 1

    def test_hit_equals_full_parse(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="Beijing", country="China"))
        fast = dd.deserialize(raw(city="Guangzhou", country="China"))
        cold = DifferentialDeserializer().deserialize(
            raw(city="Guangzhou", country="China")
        )
        assert fast.params == cold.params
        assert dd.stats.hits == 1

    def test_escaped_values_round_trip(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="plain"))
        request = dd.deserialize(raw(city="a<b&c>d"))
        assert request.params == {"city": "a<b&c>d"}
        assert dd.stats.hits == 1

    def test_unicode_values(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="London"))
        assert dd.deserialize(raw(city="北京")).params == {"city": "北京"}

    def test_different_operation_falls_back(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw("GetWeather", city="Beijing"))
        request = dd.deserialize(raw("GetForecast", city="Beijing2"))
        assert request.operation == "GetForecast"
        assert dd.stats.hits == 0
        assert dd.stats.misses == 2

    def test_structural_change_falls_back(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="Beijing"))
        request = dd.deserialize(raw(city="Beijing", country="China"))
        assert request.params == {"city": "Beijing", "country": "China"}
        assert dd.stats.hits == 0

    def test_value_containing_markup_is_never_a_hit(self):
        """A value span that decodes structure must force a full parse
        (soundness: escaped markup is fine, raw markup is structure)."""
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="plain"))
        # handcraft bytes where the value span contains a raw element
        template_hit = raw(city="zqmarkerqz")
        poisoned = template_hit.replace(b"zqmarkerqz", b"<sneaky/>")
        request = dd.deserialize(poisoned)
        # full parse decodes the struct-ish content instead
        assert dd.stats.hits == 0
        assert request.operation == "GetWeather"

    def test_ambiguous_value_never_templated(self):
        dd = DifferentialDeserializer()
        # 'city' appears both as value and inside the tag names? use a
        # value that occurs twice in the message bytes
        dd.deserialize(raw(city="GetWeather"))  # value == operation name
        assert dd.stats.templates == 0
        request = dd.deserialize(raw(city="other"))
        assert request.params == {"city": "other"}

    def test_non_string_params_never_templated(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(n=5))
        assert dd.stats.templates == 0
        assert dd.deserialize(raw(n=7)).params == {"n": 7}
        assert dd.stats.hits == 0

    def test_empty_string_param_never_templated(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city=""))
        assert dd.stats.templates == 0

    def test_invalidate(self):
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="a"))
        dd.invalidate()
        dd.deserialize(raw(city="b"))
        assert dd.stats.hits == 0
        assert dd.stats.misses == 2

    def test_hit_rate(self):
        dd = DifferentialDeserializer()
        for city in ("zq-alpha", "zq-beta", "zq-gamma", "zq-delta"):
            dd.deserialize(raw(city=city))
        assert dd.stats.hit_rate == pytest.approx(0.75)

    def test_single_letter_values_too_ambiguous_to_template(self):
        """A value like 'a' occurs all over the envelope boilerplate, so
        no template is learned — conservative and correct."""
        dd = DifferentialDeserializer()
        dd.deserialize(raw(city="a"))
        assert dd.stats.templates == 0

    def test_multi_param_stream(self):
        dd = DifferentialDeserializer()
        for city, country in [("Beijing", "China"), ("Paris", "France"), ("Oslo", "Norway")]:
            request = dd.deserialize(raw(city=city, country=country))
            assert request.params == {"city": city, "country": country}
        assert dd.stats.hits == 2
