"""Unit tests for RPC serialization/deserialization."""

import pytest

from repro.errors import SerializationError, SoapError, SoapFaultError
from repro.soap.constants import FAULT_SERVER
from repro.soap.deserializer import (
    DeserializationStats,
    OperationMatcher,
    parse_response_envelope,
    parse_rpc_request,
    parse_rpc_response,
)
from repro.soap.envelope import Envelope
from repro.soap.fault import ClientFaultCause, SoapFault
from repro.soap.serializer import (
    build_fault_envelope,
    build_request_envelope,
    build_response_envelope,
    serialize_rpc_request,
    serialize_rpc_response,
)

NS = "urn:svc:echo"


def wire(envelope: Envelope) -> Envelope:
    """Round an envelope through bytes to exercise the full codec path."""
    return Envelope.parse(envelope.to_bytes(), server=True)


class TestRequestCodec:
    def test_round_trip(self):
        env = wire(build_request_envelope(NS, "echo", {"payload": "hello", "n": 3}))
        req = parse_rpc_request(env.first_body_entry())
        assert req.namespace == NS
        assert req.operation == "echo"
        assert req.params == {"payload": "hello", "n": 3}

    def test_no_params(self):
        env = wire(build_request_envelope(NS, "ping", {}))
        req = parse_rpc_request(env.first_body_entry())
        assert req.params == {}

    def test_rich_params(self):
        params = {
            "cities": ["Beijing", "Shanghai"],
            "options": {"verbose": True, "retries": 2},
            "blob": b"\x00\x01",
        }
        env = wire(build_request_envelope(NS, "query", params))
        assert parse_rpc_request(env.first_body_entry()).params == params

    def test_bad_operation_name_raises(self):
        with pytest.raises(SerializationError):
            serialize_rpc_request(NS, "bad name", {})

    def test_bad_param_name_raises(self):
        with pytest.raises(SerializationError):
            serialize_rpc_request(NS, "op", {"1bad": "x"})

    def test_duplicate_param_raises(self):
        entry = serialize_rpc_request(NS, "op", {"a": "1"})
        entry.children.append(entry.children[0].copy())
        with pytest.raises(ClientFaultCause, match="duplicate"):
            parse_rpc_request(entry)

    def test_matcher_accepts_registered(self):
        matcher = OperationMatcher()
        matcher.register(NS, "echo")
        entry = serialize_rpc_request(NS, "echo", {})
        assert parse_rpc_request(entry, matcher).operation == "echo"

    def test_matcher_rejects_unknown_operation(self):
        matcher = OperationMatcher()
        matcher.register(NS, "echo")
        entry = serialize_rpc_request(NS, "other", {})
        with pytest.raises(ClientFaultCause, match="no such operation"):
            parse_rpc_request(entry, matcher)

    def test_matcher_rejects_wrong_namespace(self):
        matcher = OperationMatcher()
        matcher.register(NS, "echo")
        entry = serialize_rpc_request("urn:wrong", "echo", {})
        with pytest.raises(ClientFaultCause):
            parse_rpc_request(entry, matcher)

    def test_matcher_len_and_contains(self):
        matcher = OperationMatcher()
        matcher.register(NS, "a")
        matcher.register(NS, "b")
        assert len(matcher) == 2
        assert f"{{{NS}}}a" in matcher


class TestResponseCodec:
    def test_round_trip(self):
        env = wire(build_response_envelope(NS, "echo", "result!"))
        resp = parse_rpc_response(env.first_body_entry())
        assert resp.operation == "echo"
        assert resp.value == "result!"

    def test_parse_response_envelope_helper(self):
        env = wire(build_response_envelope(NS, "echo", [1, 2]))
        assert parse_response_envelope(env).value == [1, 2]

    def test_none_result(self):
        env = wire(build_response_envelope(NS, "echo", None))
        assert parse_response_envelope(env).value is None

    def test_response_element_name(self):
        entry = serialize_rpc_response(NS, "echo", 1)
        assert entry.tag == f"{{{NS}}}echoResponse"

    def test_fault_raises(self):
        env = wire(build_fault_envelope(SoapFault(FAULT_SERVER, "exploded", detail="bt")))
        with pytest.raises(SoapFaultError) as excinfo:
            parse_response_envelope(env)
        assert excinfo.value.faultcode == FAULT_SERVER
        assert excinfo.value.detail == "bt"

    def test_non_response_element_raises(self):
        entry = serialize_rpc_request(NS, "echo", {})
        with pytest.raises(SoapError, match="not an RPC response"):
            parse_rpc_response(entry)

    def test_response_without_return_raises(self):
        entry = serialize_rpc_response(NS, "echo", 1)
        entry.children.clear()
        with pytest.raises(SoapError, match="exactly one"):
            parse_rpc_response(entry)


class TestStats:
    def test_record(self):
        stats = DeserializationStats()
        req = parse_rpc_request(serialize_rpc_request(NS, "echo", {"a": 1, "b": 2}))
        stats.record(req, matched=True)
        stats.record(req, matched=False)
        assert stats.requests == 2
        assert stats.params == 4
        assert stats.trie_hits == 1
        assert stats.trie_misses == 1
        assert stats.by_operation == {"echo": 2}
