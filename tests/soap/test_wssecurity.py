"""Unit tests for the simulated WS-Security headers."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.errors import SecurityError
from repro.soap.envelope import Envelope
from repro.soap.serializer import build_request_envelope
from repro.soap.wssecurity import (
    SECURITY_TAG,
    Credentials,
    attach_security_header,
    security_header_overhead,
    verify_security_header,
)

NS = "urn:svc"
NOW = datetime(2006, 9, 25, 12, 0, 0, tzinfo=timezone.utc)
CREDS = Credentials("alice", b"super-secret")


def secrets_db(username):
    return {"alice": b"super-secret", "bob": b"other"}.get(username)


def signed_envelope(params=None, now=NOW):
    env = build_request_envelope(NS, "echo", params or {"payload": "hi"})
    attach_security_header(env, CREDS, now=now)
    return Envelope.parse(env.to_bytes(), server=True)


class TestSignVerify:
    def test_verify_accepts_valid(self):
        env = signed_envelope()
        assert verify_security_header(env, secrets_db, now=NOW) == "alice"

    def test_header_survives_wire(self):
        env = signed_envelope()
        assert env.find_header(SECURITY_TAG) is not None

    def test_must_understand_by_default(self):
        env = build_request_envelope(NS, "echo", {})
        header = attach_security_header(env, CREDS, now=NOW)
        assert header.get(
            "{http://schemas.xmlsoap.org/soap/envelope/}mustUnderstand"
        ) == "1"

    def test_missing_header_raises(self):
        env = build_request_envelope(NS, "echo", {})
        with pytest.raises(SecurityError, match="no wsse:Security"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_unknown_user_raises(self):
        env = build_request_envelope(NS, "echo", {})
        attach_security_header(env, Credentials("mallory", b"x"), now=NOW)
        with pytest.raises(SecurityError, match="unknown user"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_wrong_secret_raises(self):
        env = build_request_envelope(NS, "echo", {})
        attach_security_header(env, Credentials("alice", b"WRONG"), now=NOW)
        with pytest.raises(SecurityError, match="digest mismatch"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_tampered_body_raises(self):
        env = signed_envelope({"payload": "original"})
        env.first_body_entry().element_children()[0].children[:] = ["tampered"]
        with pytest.raises(SecurityError, match="digest mismatch"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_stale_timestamp_raises(self):
        env = signed_envelope(now=NOW - timedelta(hours=1))
        with pytest.raises(SecurityError, match="stale"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_future_timestamp_raises(self):
        env = signed_envelope(now=NOW + timedelta(hours=1))
        with pytest.raises(SecurityError, match="stale"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_freshness_window_configurable(self):
        env = signed_envelope(now=NOW - timedelta(minutes=10))
        assert verify_security_header(
            env, secrets_db, now=NOW, freshness=timedelta(minutes=30)
        ) == "alice"

    def test_incomplete_token_raises(self):
        env = signed_envelope()
        token = env.find_header(SECURITY_TAG).find("UsernameToken")
        token.children = [c for c in token.children if getattr(c, "local_name", "") != "Nonce"]
        with pytest.raises(SecurityError, match="incomplete"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_bad_base64_raises(self):
        env = signed_envelope()
        token = env.find_header(SECURITY_TAG).find("UsernameToken")
        token.find("Nonce").children[:] = ["@@@"]
        with pytest.raises(SecurityError, match="base64"):
            verify_security_header(env, secrets_db, now=NOW)

    def test_bad_created_raises(self):
        env = signed_envelope()
        token = env.find_header(SECURITY_TAG).find("UsernameToken")
        token.find("Created").children[:] = ["not a date"]
        with pytest.raises(SecurityError, match="unparseable|digest"):
            verify_security_header(env, secrets_db, now=NOW)


class TestOverheadProbe:
    def test_header_adds_hundreds_of_bytes(self):
        overhead = security_header_overhead(CREDS)
        # UsernameToken + nonce + digest + namespaces: a few hundred bytes,
        # which is exactly why the paper says packing pays off more with WSS.
        assert 300 <= overhead <= 1200

    def test_signed_message_larger_than_unsigned(self):
        plain = build_request_envelope(NS, "echo", {"p": "x"}).to_bytes()
        env = build_request_envelope(NS, "echo", {"p": "x"})
        attach_security_header(env, CREDS, now=NOW)
        assert len(env.to_bytes()) > len(plain) + 200

    def test_certificate_profile_is_kilobytes(self):
        """The X.509 profile header matches real WSS deployments (3-6 KB)."""
        overhead = security_header_overhead(CREDS, include_certificate=True)
        assert 2500 <= overhead <= 6000


class TestCertificateProfile:
    def test_header_contains_token_and_signature(self):
        env = build_request_envelope(NS, "echo", {"p": "x"})
        header = attach_security_header(
            env, CREDS, now=NOW, include_certificate=True
        )
        locals_present = {c.local_name for c in header.element_children()}
        assert "BinarySecurityToken" in locals_present
        assert "Signature" in locals_present

    def test_certificate_deterministic_per_user(self):
        def header_for(username):
            env = build_request_envelope(NS, "echo", {"p": "x"})
            header = attach_security_header(
                env, Credentials(username, b"s"), now=NOW, include_certificate=True
            )
            return header.find("BinarySecurityToken").text

        assert header_for("alice") == header_for("alice")
        assert header_for("alice") != header_for("bob")

    def test_certificate_header_still_verifies(self):
        env = build_request_envelope(NS, "echo", {"p": "x"})
        attach_security_header(env, CREDS, now=NOW, include_certificate=True)
        wire = Envelope.parse(env.to_bytes(), server=True)
        assert verify_security_header(wire, secrets_db, now=NOW) == "alice"

    def test_signature_survives_wire(self):
        from repro.soap.wssecurity import SECURITY_TAG

        env = build_request_envelope(NS, "echo", {"p": "x"})
        attach_security_header(env, CREDS, now=NOW, include_certificate=True)
        wire = Envelope.parse(env.to_bytes(), server=True)
        security = wire.find_header(SECURITY_TAG)
        signature = security.find("Signature")
        assert signature is not None
        assert signature.find("SignatureValue").text
