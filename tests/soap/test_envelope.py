"""Unit tests for the SOAP envelope model and fault handling."""

import pytest

from repro.errors import SoapError, SoapFaultError
from repro.soap.constants import (
    BODY_TAG,
    ENVELOPE_TAG,
    FAULT_CLIENT,
    FAULT_SERVER,
    HEADER_TAG,
    MUST_UNDERSTAND_ATTR,
)
from repro.soap.envelope import Envelope
from repro.soap.fault import ClientFaultCause, SoapFault, is_fault_body
from repro.xmlcore import parse
from repro.xmlcore.tree import Element


def make_envelope():
    env = Envelope()
    env.add_body(Element("{urn:svc}echo"))
    return env


class TestEnvelopeBuild:
    def test_minimal_round_trip(self):
        env = make_envelope()
        parsed = Envelope.parse(env.to_string(), server=True)
        assert parsed.first_body_entry().tag == "{urn:svc}echo"

    def test_bytes_round_trip(self):
        env = make_envelope()
        parsed = Envelope.parse(env.to_bytes(), server=True)
        assert parsed.first_body_entry().tag == "{urn:svc}echo"

    def test_no_header_element_when_empty(self):
        root = make_envelope().to_element()
        tags = [c.tag for c in root.element_children()]
        assert tags == [BODY_TAG]

    def test_header_entries_serialized(self):
        env = make_envelope()
        env.add_header(Element("{urn:h}token"))
        root = env.to_element()
        assert root.element_children()[0].tag == HEADER_TAG

    def test_must_understand_flag(self):
        env = make_envelope()
        entry = env.add_header(Element("{urn:h}token"), must_understand=True)
        assert entry.get(MUST_UNDERSTAND_ATTR) == "1"

    def test_multiple_body_entries(self):
        env = Envelope()
        env.add_body(Element("{urn:svc}a"))
        env.add_body(Element("{urn:svc}b"))
        parsed = Envelope.parse(env.to_string(), server=True)
        assert len(parsed.body_entries) == 2

    def test_declaration_present(self):
        assert make_envelope().to_string().startswith("<?xml")


class TestEnvelopeParse:
    def test_parse_with_header(self):
        doc = (
            f'<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">'
            f"<e:Header><t xmlns='urn:h'>v</t></e:Header>"
            f"<e:Body><op xmlns='urn:s'/></e:Body></e:Envelope>"
        )
        env = Envelope.parse(doc, server=True)
        assert len(env.header_entries) == 1
        assert env.find_header("{urn:h}t") is not None
        assert env.find_header("t") is not None
        assert env.find_header("missing") is None

    def test_wrong_root_raises(self):
        with pytest.raises(SoapError):
            Envelope.parse("<notsoap/>", server=True)

    def test_wrong_envelope_namespace_raises(self):
        doc = '<Envelope xmlns="http://www.w3.org/2003/05/soap-envelope"><Body><x/></Body></Envelope>'
        with pytest.raises(SoapError, match="namespace"):
            Envelope.parse(doc, server=True)

    def test_missing_body_raises(self):
        doc = f'<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/"></e:Envelope>'
        with pytest.raises(SoapError, match="no Body"):
            Envelope.parse(doc, server=True)

    def test_empty_body_raises(self):
        doc = (
            f'<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">'
            f"<e:Body></e:Body></e:Envelope>"
        )
        with pytest.raises(SoapError, match="empty"):
            Envelope.parse(doc, server=True)

    def test_trailing_elements_raise(self):
        doc = (
            f'<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">'
            f"<e:Body><x/></e:Body><e:Extra/></e:Envelope>"
        )
        with pytest.raises(SoapError, match="after SOAP Body"):
            Envelope.parse(doc, server=True)

    def test_unprocessed_must_understand(self):
        env = make_envelope()
        env.add_header(Element("{urn:h}a"), must_understand=True)
        env.add_header(Element("{urn:h}b"))
        parsed = Envelope.parse(env.to_string(), server=True)
        missed = parsed.unprocessed_must_understand(understood=set())
        assert [e.tag for e in missed] == ["{urn:h}a"]
        assert parsed.unprocessed_must_understand({"{urn:h}a"}) == []


class TestFault:
    def test_round_trip(self):
        fault = SoapFault(FAULT_SERVER, "boom", "urn:actor", "trace")
        parsed = SoapFault.from_element(parse_fault(fault))
        assert parsed == fault

    def test_minimal_round_trip(self):
        fault = SoapFault(FAULT_CLIENT, "bad request")
        parsed = SoapFault.from_element(parse_fault(fault))
        assert parsed == fault

    def test_faultcode_is_qualified_value(self):
        fault = SoapFault(FAULT_SERVER, "x")
        element = parse_fault(fault)
        assert element.findtext("faultcode") == "SOAP-ENV:Server"

    def test_to_exception(self):
        exc = SoapFault(FAULT_SERVER, "boom", detail="why").to_exception()
        assert isinstance(exc, SoapFaultError)
        assert exc.faultcode == FAULT_SERVER
        assert exc.detail == "why"

    def test_from_generic_exception_is_server(self):
        fault = SoapFault.from_exception(ValueError("oops"))
        assert fault.faultcode == FAULT_SERVER
        assert "oops" in fault.faultstring

    def test_from_client_cause_is_client(self):
        fault = SoapFault.from_exception(ClientFaultCause("no such op"))
        assert fault.faultcode == FAULT_CLIENT

    def test_from_soap_fault_error_preserves_code(self):
        fault = SoapFault.from_exception(SoapFaultError("Custom", "msg", "d"))
        assert fault.faultcode == "Custom"
        assert fault.detail == "d"

    def test_from_element_wrong_tag_raises(self):
        with pytest.raises(SoapError):
            SoapFault.from_element(Element("{urn:x}NotFault"))

    def test_is_fault_body(self):
        env = Envelope()
        env.add_body(SoapFault(FAULT_SERVER, "x").to_element())
        body = Element(BODY_TAG)
        body.extend(env.body_entries)
        assert is_fault_body(body)
        assert not is_fault_body(Element(BODY_TAG))


def parse_fault(fault: SoapFault):
    """Round fault through a serialized envelope to exercise the wire form."""
    env = Envelope()
    env.add_body(fault.to_element())
    parsed = Envelope.parse(env.to_string(), server=True)
    return parsed.first_body_entry()


def test_envelope_tag_constant():
    assert ENVELOPE_TAG.endswith("Envelope")
