"""Tests for Axis-style multiRef resolution."""

import pytest

from repro.errors import SoapError
from repro.soap.deserializer import parse_rpc_request
from repro.soap.envelope import Envelope
from repro.soap.multiref import has_multirefs, resolve_multirefs
from repro.xmlcore import parse
from repro.server import ServerConfig, build_server

AXIS_MULTIREF = """<?xml version="1.0" encoding="UTF-8"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
 <soapenv:Body>
  <ns1:echo xmlns:ns1="urn:repro:echo">
   <payload href="#id0"/>
  </ns1:echo>
  <multiRef id="id0" xsi:type="xsd:string">shared value</multiRef>
 </soapenv:Body>
</soapenv:Envelope>"""


def entries_of(document: str):
    return Envelope.parse(document, server=True).body_entries


class TestDetection:
    def test_detects_href(self):
        assert has_multirefs(entries_of(AXIS_MULTIREF))

    def test_plain_body_not_detected(self):
        doc = (
            '<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">'
            "<e:Body><op xmlns='urn:x'><a>1</a></op></e:Body></e:Envelope>"
        )
        assert not has_multirefs(entries_of(doc))


class TestResolution:
    def test_axis_message_inlined(self):
        resolved = resolve_multirefs(entries_of(AXIS_MULTIREF))
        assert len(resolved) == 1
        request = parse_rpc_request(resolved[0])
        assert request.operation == "echo"
        assert request.params == {"payload": "shared value"}

    def test_shared_target_referenced_twice(self):
        body = parse(
            '<b><op xmlns="urn:x"><a href="#v"/><b href="#v"/></op>'
            '<multiRef xmlns="" id="v" '
            'xsi:type="xsd:int" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">7</multiRef></b>'
        )
        resolved = resolve_multirefs(body.element_children())
        request = parse_rpc_request(resolved[0])
        assert request.params == {"a": 7, "b": 7}

    def test_chained_references(self):
        body = parse(
            '<b><op xmlns="urn:x"><a href="#one"/></op>'
            '<m1 xmlns="" id="one"><inner href="#two"/></m1>'
            '<m2 xmlns="" id="two">deep</m2></b>'
        )
        resolved = resolve_multirefs(body.element_children())
        assert resolved[0].find("a").find("inner").text == "deep"

    def test_no_multirefs_passthrough(self):
        body = parse('<b><op xmlns="urn:x"><a>1</a></op></b>')
        entries = body.element_children()
        assert resolve_multirefs(entries) == entries

    def test_id_attribute_stripped(self):
        resolved = resolve_multirefs(entries_of(AXIS_MULTIREF))
        for element in resolved[0].iter():
            assert element.get("id") is None
            assert element.get("href") is None

    def test_dangling_href_raises(self):
        body = parse('<b><op xmlns="urn:x"><a href="#nope"/></op></b>')
        with pytest.raises(SoapError, match="dangling"):
            resolve_multirefs(body.element_children())

    def test_remote_href_raises(self):
        body = parse('<b><op xmlns="urn:x"><a href="http://other#x"/></op></b>')
        with pytest.raises(SoapError, match="local"):
            resolve_multirefs(body.element_children())

    def test_duplicate_id_raises(self):
        body = parse(
            '<b><op xmlns="urn:x"/><m xmlns="" id="d"/><m xmlns="" id="d"/></b>'
        )
        with pytest.raises(SoapError, match="duplicate"):
            resolve_multirefs(body.element_children())

    def test_cycle_raises(self):
        body = parse(
            '<b><op xmlns="urn:x"><a href="#one"/></op>'
            '<m1 xmlns="" id="one"><x href="#two"/></m1>'
            '<m2 xmlns="" id="two"><y href="#one"/></m2></b>'
        )
        with pytest.raises(SoapError, match="cycle"):
            resolve_multirefs(body.element_children())

    def test_input_not_mutated(self):
        entries = entries_of(AXIS_MULTIREF)
        snapshot = [e.copy() for e in entries]
        resolve_multirefs(entries)
        for original, saved in zip(entries, snapshot):
            assert original.structurally_equal(saved)


class TestEndToEnd:
    def test_server_accepts_axis_multiref_message(self):
        from repro.apps.echo import make_echo_service
        from repro.http.connection import HttpConnection
        from repro.http.message import Headers, HttpRequest
        from repro.soap.constants import SOAP_CONTENT_TYPE
        from repro.soap.deserializer import parse_response_envelope
        from repro.transport.inproc import InProcTransport

        transport = InProcTransport()
        server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="multiref"))
        with server.running() as address:
            request = HttpRequest(
                "POST",
                "/services/EchoService",
                Headers({"Content-Type": SOAP_CONTENT_TYPE}),
                AXIS_MULTIREF.encode("utf-8"),
            )
            with HttpConnection(transport, address) as connection:
                response = connection.request(request)
        assert response.status == 200
        result = parse_response_envelope(Envelope.parse(response.body, server=True))
        assert result.value == "shared value"
