"""Unit tests for the response serialization template cache (PR-6)."""

from repro.apps.echo import ECHO_NS
from repro.core.packformat import build_parallel_method
from repro.obs.registry import MetricsRegistry
from repro.soap.envelope import Envelope
from repro.soap.sercache import ResponseTemplateCache
from repro.soap.serializer import (
    build_response_envelope,
    serialize_rpc_response,
)
from repro.xmlcore.tree import Element

NS = "urn:sercache-test"


def pack_envelope(results, operation="echo"):
    envelope = Envelope()
    envelope.add_body(
        build_parallel_method(
            [serialize_rpc_response(NS, operation, r) for r in results]
        )
    )
    return envelope


class TestIdentity:
    def test_pack_render_matches_to_bytes(self):
        cache = ResponseTemplateCache()
        for _ in range(3):
            envelope = pack_envelope(["alpha", "beta", "gamma"])
            assert cache.render_envelope(envelope) == envelope.to_bytes()
        stats = cache.stats()
        assert stats.hits > 0

    def test_values_change_but_shape_hits(self):
        cache = ResponseTemplateCache()
        first = pack_envelope(["one", "two"])
        cache.render_envelope(first)
        second = pack_envelope(["three <escaped> & checked", "four"])
        assert cache.render_envelope(second) == second.to_bytes()
        assert cache.stats().hits == 2

    def test_different_shapes_key_separately(self):
        cache = ResponseTemplateCache()
        cache.render_envelope(pack_envelope(["a"]))
        wide = pack_envelope([{"x": "1", "y": "2"}])
        assert cache.render_envelope(wide) == wide.to_bytes()
        assert cache.stats().hits == 0
        assert len(cache) == 2

    def test_header_subtree_renders_fresh(self):
        cache = ResponseTemplateCache()
        envelope = pack_envelope(["payload"])
        header = Element("{urn:hdr}trace", {"id": "t-1"}, nsmap={"h": "urn:hdr"})
        envelope.add_header(header)
        assert cache.render_envelope(envelope) == envelope.to_bytes()


class TestUncacheable:
    def test_generated_prefix_declines_capture(self):
        # A single-entry response without hoisted namespaces forces the
        # writer to mint ns0; the capture must be declined, output still
        # byte-identical.
        cache = ResponseTemplateCache()
        envelope = build_response_envelope(NS, "echo", "x")
        for _ in range(2):
            assert cache.render_envelope(envelope) == envelope.to_bytes()
        stats = cache.stats()
        assert stats.uncacheable == 2
        assert len(cache) == 0

    def test_oversized_template_declined(self):
        cache = ResponseTemplateCache(max_template_chars=8)
        envelope = pack_envelope(["tiny"])
        assert cache.render_envelope(envelope) == envelope.to_bytes()
        assert cache.stats().uncacheable == 1
        assert len(cache) == 0


class TestMaintenance:
    def test_lru_eviction(self):
        cache = ResponseTemplateCache(max_entries=2)
        for op in ("first", "second", "third"):
            cache.render_envelope(pack_envelope(["v"], operation=op))
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        # oldest template is gone: rendering it again is a miss
        envelope = pack_envelope(["v"], operation="first")
        cache.render_envelope(envelope)
        assert cache.stats().misses == 4

    def test_invalidate_all(self):
        cache = ResponseTemplateCache()
        cache.render_envelope(pack_envelope(["v"]))
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_invalidate_by_operation_matches_response_suffix(self):
        cache = ResponseTemplateCache()
        cache.render_envelope(pack_envelope(["v"], operation="getQuote"))
        cache.render_envelope(pack_envelope(["v"], operation="other"))
        assert cache.invalidate(operation="getQuote") == 1
        assert len(cache) == 1

    def test_invalidate_by_namespace(self):
        cache = ResponseTemplateCache()
        cache.render_envelope(pack_envelope(["v"]))
        envelope = Envelope()
        envelope.add_body(
            build_parallel_method(
                [serialize_rpc_response(ECHO_NS, "echo", "v")]
            )
        )
        cache.render_envelope(envelope)
        assert cache.invalidate(namespace=NS) == 1
        assert len(cache) == 1

    def test_counters_reach_registry(self):
        registry = MetricsRegistry()
        cache = ResponseTemplateCache(registry=registry)
        cache.render_envelope(pack_envelope(["v"]))
        cache.render_envelope(pack_envelope(["v"]))
        assert registry.counter("cache.sercache.miss").value == 1
        assert registry.counter("cache.sercache.hit").value == 1
