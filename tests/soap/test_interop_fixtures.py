"""Interop fixtures: messages shaped like real-world SOAP toolkits emit.

The reproduction must accept what Axis 1.x / gSOAP / .NET-era stacks
put on the wire: different prefix conventions, xsi types with foreign
prefixes, whitespace-pretty-printed envelopes, UTF-16 documents, and
date/time values.
"""

from datetime import date, datetime, time, timezone

import pytest

from repro.soap.deserializer import parse_rpc_request, parse_rpc_response
from repro.soap.envelope import Envelope
from repro.soap.xsdtypes import decode_value, encode_value
from repro.xmlcore import parse

AXIS_STYLE = """<?xml version="1.0" encoding="UTF-8"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
  <soapenv:Body>
    <ns1:GetWeather soapenv:encodingStyle="http://schemas.xmlsoap.org/soap/encoding/"
        xmlns:ns1="urn:weather">
      <city xsi:type="xsd:string">Beijing</city>
      <country xsi:type="xsd:string">China</country>
    </ns1:GetWeather>
  </soapenv:Body>
</soapenv:Envelope>"""

GSOAP_STYLE = (
    '<?xml version="1.0" encoding="UTF-8"?>'
    '<SOAP-ENV:Envelope xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"'
    ' xmlns:SOAP-ENC="http://schemas.xmlsoap.org/soap/encoding/"'
    ' xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
    ' xmlns:xsd="http://www.w3.org/2001/XMLSchema"'
    ' xmlns:ns="urn:weather">'
    "<SOAP-ENV:Body>"
    '<ns:GetWeatherResponse><return xsi:type="xsd:string">sunny</return>'
    "</ns:GetWeatherResponse>"
    "</SOAP-ENV:Body></SOAP-ENV:Envelope>"
)

DOTNET_STYLE = """<?xml version="1.0" encoding="utf-8"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"
    xmlns:i="http://www.w3.org/2001/XMLSchema-instance"
    xmlns:s="http://www.w3.org/2001/XMLSchema">
  <soap:Body>
    <GetWeather xmlns="urn:weather">
      <city i:type="s:string">Shanghai</city>
    </GetWeather>
  </soap:Body>
</soap:Envelope>"""


class TestForeignToolkitMessages:
    def test_axis_pretty_printed_request(self):
        env = Envelope.parse(AXIS_STYLE, server=True)
        # pretty-printing puts whitespace text nodes inside Body; the
        # entry itself must still parse
        entries = [e for e in env.body_entries]
        assert len(entries) == 1
        request = parse_rpc_request(entries[0])
        assert request.namespace == "urn:weather"
        assert request.operation == "GetWeather"
        assert request.params == {"city": "Beijing", "country": "China"}

    def test_gsoap_compact_response(self):
        env = Envelope.parse(GSOAP_STYLE, server=True)
        response = parse_rpc_response(env.first_body_entry())
        assert response.operation == "GetWeather"
        assert response.value == "sunny"

    def test_dotnet_default_namespace_and_foreign_xsi_prefix(self):
        env = Envelope.parse(DOTNET_STYLE, server=True)
        request = parse_rpc_request(env.first_body_entry())
        assert request.namespace == "urn:weather"
        # the 'i:' prefix resolves to the standard XSI namespace, so the
        # typed value decodes as a string
        assert request.params == {"city": "Shanghai"}

    def test_utf16_document(self):
        data = ("\ufeff" + AXIS_STYLE).encode("utf-16-le")
        env = Envelope.parse(data, server=True)
        request = parse_rpc_request(env.first_body_entry())
        assert request.params["city"] == "Beijing"

    def test_whitespace_in_body_tolerated(self):
        doc = (
            '<e:Envelope xmlns:e="http://schemas.xmlsoap.org/soap/envelope/">\n'
            "  <e:Body>\n    <op xmlns='urn:x'/>\n  </e:Body>\n</e:Envelope>"
        )
        env = Envelope.parse(doc, server=True)
        assert len(env.body_entries) == 1


class TestDateTimeTypes:
    def wire(self, value):
        from repro.xmlcore.writer import serialize

        return decode_value(parse(serialize(encode_value("v", value))))

    def test_date_round_trip(self):
        assert self.wire(date(2006, 9, 25)) == date(2006, 9, 25)

    def test_time_round_trip(self):
        assert self.wire(time(14, 30, 5)) == time(14, 30, 5)

    def test_datetime_stays_datetime(self):
        dt = datetime(2006, 9, 25, 1, 2, 3, tzinfo=timezone.utc)
        assert self.wire(dt) == dt

    def test_date_in_struct(self):
        value = {"departure": date(2026, 7, 8), "checkin": time(15, 0)}
        assert self.wire(value) == value

    def test_xsi_type_names(self):
        from repro.soap.constants import XSI_TYPE_ATTR

        assert encode_value("v", date(2026, 1, 1)).get(XSI_TYPE_ATTR) == "xsd:date"
        assert encode_value("v", time(1, 2)).get(XSI_TYPE_ATTR) == "xsd:time"

    def test_bad_date_text_raises(self):
        from repro.errors import SerializationError

        element = encode_value("v", date(2026, 1, 1))
        element.children[:] = ["not-a-date"]
        with pytest.raises(SerializationError):
            decode_value(element)
