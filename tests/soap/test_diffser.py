"""Unit tests for differential serialization and the message cache."""

import pytest

from repro.soap.diffser import DifferentialSerializer, ParameterizedMessageCache
from repro.soap.envelope import Envelope
from repro.soap.deserializer import parse_rpc_request

NS = "urn:svc:weather"


def decode(data: bytes):
    env = Envelope.parse(data, server=True)
    return parse_rpc_request(env.first_body_entry())


class TestDifferentialSerializer:
    def test_first_send_is_miss(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "GetWeather", {"city": "Beijing"})
        assert ser.stats.misses == 1
        assert ser.stats.hits == 0

    def test_second_similar_send_is_hit(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "GetWeather", {"city": "Beijing"})
        ser.serialize_request(NS, "GetWeather", {"city": "Shanghai"})
        assert ser.stats.hits == 1

    def test_hit_output_decodes_correctly(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "GetWeather", {"city": "Beijing", "country": "China"})
        data = ser.serialize_request(NS, "GetWeather", {"city": "Shanghai", "country": "China"})
        req = decode(data)
        assert req.operation == "GetWeather"
        assert req.params == {"city": "Shanghai", "country": "China"}

    def test_hit_equals_cold_serialization(self):
        warm = DifferentialSerializer()
        warm.serialize_request(NS, "op", {"a": "first"})
        hot = warm.serialize_request(NS, "op", {"a": "second"})
        cold = DifferentialSerializer().serialize_request(NS, "op", {"a": "second"})
        assert hot == cold

    def test_values_needing_escape_spliced_safely(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op", {"a": "plain"})
        data = ser.serialize_request(NS, "op", {"a": "a<b&c>d"})
        assert decode(data).params == {"a": "a<b&c>d"}

    def test_different_param_names_miss(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op", {"a": "x"})
        ser.serialize_request(NS, "op", {"b": "x"})
        assert ser.stats.misses == 2

    def test_different_types_miss(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op", {"a": "x"})
        data = ser.serialize_request(NS, "op", {"a": 5})
        assert ser.stats.misses == 2
        assert decode(data).params == {"a": 5}

    def test_non_string_params_never_templated(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op", {"a": 1})
        ser.serialize_request(NS, "op", {"a": 2})
        assert ser.stats.hits == 0

    def test_operations_cached_independently(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op1", {"a": "x"})
        ser.serialize_request(NS, "op2", {"a": "x"})
        ser.serialize_request(NS, "op1", {"a": "y"})
        assert ser.stats.hits == 1
        assert ser.stats.misses == 2

    def test_invalidate_all(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op", {"a": "x"})
        ser.invalidate()
        ser.serialize_request(NS, "op", {"a": "y"})
        assert ser.stats.hits == 0

    def test_invalidate_single_operation(self):
        ser = DifferentialSerializer()
        ser.serialize_request(NS, "op1", {"a": "x"})
        ser.serialize_request(NS, "op2", {"a": "x"})
        ser.invalidate(NS, "op1")
        ser.serialize_request(NS, "op1", {"a": "y"})
        ser.serialize_request(NS, "op2", {"a": "y"})
        assert ser.stats.hits == 1

    def test_no_params_round_trips(self):
        ser = DifferentialSerializer()
        data = ser.serialize_request(NS, "ping", {})
        assert decode(data).operation == "ping"

    def test_hit_rate(self):
        ser = DifferentialSerializer()
        for city in ["a", "b", "c", "d"]:
            ser.serialize_request(NS, "op", {"city": city})
        assert ser.stats.hit_rate == pytest.approx(0.75)

    def test_many_params_order_preserved(self):
        ser = DifferentialSerializer()
        params1 = {f"p{i}": f"v{i}" for i in range(10)}
        ser.serialize_request(NS, "op", params1)
        params2 = {f"p{i}": f"w{i}" for i in range(10)}
        assert decode(ser.serialize_request(NS, "op", params2)).params == params2


class TestParameterizedMessageCache:
    def test_facade_behaviour(self):
        cache = ParameterizedMessageCache()
        cache.get_or_build(NS, "op", {"a": "x"})
        data = cache.get_or_build(NS, "op", {"a": "y"})
        assert cache.stats.hits == 1
        assert decode(data).params == {"a": "y"}
