"""Unit tests for XSD typed-value encoding/decoding."""

import math
from datetime import datetime, timezone

import pytest

from repro.errors import SerializationError
from repro.soap.constants import XSI_NIL_ATTR, XSI_TYPE_ATTR
from repro.soap.xsdtypes import (
    decode_value,
    encode_value,
    python_type_to_xsd,
    xsd_type_for,
)
from repro.xmlcore import parse
from repro.xmlcore.writer import serialize


def round_trip(value):
    element = encode_value("v", value)
    # go through real bytes to prove wire fidelity
    reparsed = parse(serialize(element))
    return decode_value(reparsed)


class TestScalars:
    @pytest.mark.parametrize("value", ["", "hello", "北京 weather", "a<b&c"])
    def test_string(self, value):
        assert round_trip(value) == value

    @pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31), 2**40, 2**70])
    def test_int(self, value):
        assert round_trip(value) == value

    def test_int_type_widths(self):
        assert encode_value("v", 5).get(XSI_TYPE_ATTR) == "xsd:int"
        assert encode_value("v", 2**40).get(XSI_TYPE_ATTR) == "xsd:long"
        assert encode_value("v", 2**70).get(XSI_TYPE_ATTR) == "xsd:integer"

    @pytest.mark.parametrize("value", [0.0, 1.5, -2.25, 1e300, 5e-324])
    def test_float(self, value):
        assert round_trip(value) == value

    def test_float_specials(self):
        assert round_trip(math.inf) == math.inf
        assert round_trip(-math.inf) == -math.inf
        assert math.isnan(round_trip(math.nan))

    @pytest.mark.parametrize("value", [True, False])
    def test_bool(self, value):
        assert round_trip(value) is value

    def test_bool_not_confused_with_int(self):
        assert encode_value("v", True).get(XSI_TYPE_ATTR) == "xsd:boolean"

    def test_bytes(self):
        assert round_trip(b"\x00\x01\xffbinary") == b"\x00\x01\xffbinary"

    def test_empty_bytes(self):
        assert round_trip(b"") == b""

    def test_none(self):
        element = encode_value("v", None)
        assert element.get(XSI_NIL_ATTR) == "true"
        assert round_trip(None) is None

    def test_datetime_aware(self):
        dt = datetime(2006, 9, 25, 12, 30, 45, tzinfo=timezone.utc)
        assert round_trip(dt) == dt

    def test_datetime_naive_becomes_utc(self):
        dt = datetime(2006, 9, 25, 12, 30, 45)
        assert round_trip(dt) == dt.replace(tzinfo=timezone.utc)


class TestComposites:
    def test_list(self):
        assert round_trip([1, "two", 3.0]) == [1, "two", 3.0]

    def test_empty_list(self):
        assert round_trip([]) == []

    def test_tuple_decodes_as_list(self):
        assert round_trip((1, 2)) == [1, 2]

    def test_nested_list(self):
        assert round_trip([[1, 2], [3]]) == [[1, 2], [3]]

    def test_dict(self):
        value = {"city": "Beijing", "temp": 21, "sunny": True}
        assert round_trip(value) == value

    def test_nested_struct(self):
        value = {"flight": {"from": "PEK", "seats": [1, 2]}, "price": 99.5}
        assert round_trip(value) == value

    def test_list_with_none(self):
        assert round_trip([None, "x"]) == [None, "x"]

    def test_dict_bad_key_raises(self):
        with pytest.raises(SerializationError):
            encode_value("v", {1: "x"})

    def test_dict_empty_key_raises(self):
        with pytest.raises(SerializationError):
            encode_value("v", {"": "x"})


class TestErrors:
    def test_unencodable_type_raises(self):
        with pytest.raises(SerializationError):
            encode_value("v", object())

    def test_unknown_xsi_type_raises(self):
        element = parse('<v xmlns:x="ns" xsi:type="xsd:duration" '
                        'xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">P1D</v>')
        with pytest.raises(SerializationError):
            decode_value(element)

    def test_bad_int_text_raises(self):
        element = encode_value("v", 1)
        element.children[:] = ["not-a-number"]
        with pytest.raises(SerializationError):
            decode_value(element)

    def test_bad_base64_raises(self):
        element = encode_value("v", b"x")
        element.children[:] = ["@@@not base64@@@"]
        with pytest.raises(SerializationError):
            decode_value(element)

    def test_bad_boolean_raises(self):
        element = encode_value("v", True)
        element.children[:] = ["maybe"]
        with pytest.raises(SerializationError):
            decode_value(element)


class TestUntypedDecoding:
    def test_untyped_leaf_is_string(self):
        assert decode_value(parse("<v>plain</v>")) == "plain"

    def test_untyped_with_children_is_struct(self):
        assert decode_value(parse("<v><a>1</a><b>2</b></v>")) == {"a": "1", "b": "2"}


class TestTypeNames:
    def test_xsd_type_for(self):
        assert xsd_type_for("s") == "xsd:string"
        assert xsd_type_for(True) == "xsd:boolean"
        assert xsd_type_for(1) == "xsd:int"
        assert xsd_type_for(1.0) == "xsd:double"
        assert xsd_type_for([1]) == "SOAP-ENC:Array"
        assert xsd_type_for({"a": 1}) == "xsd:struct"

    def test_xsd_type_for_unknown_raises(self):
        with pytest.raises(SerializationError):
            xsd_type_for(object())

    def test_python_type_to_xsd(self):
        assert python_type_to_xsd(str) == "xsd:string"
        assert python_type_to_xsd(int) == "xsd:int"
        assert python_type_to_xsd(set) == "xsd:anyType"
