"""Unit tests for service definitions and registration."""

import pytest

from repro.errors import ServiceError
from repro.soap.fault import ClientFaultCause
from repro.server.service import (
    ServiceDefinition,
    operation,
    service_from_functions,
    service_from_object,
)


class Calculator:
    """Sample service class."""

    @operation
    def add(self, a: int, b: int) -> int:
        """Add two integers."""
        return a + b

    @operation(name="Multiply")
    def mul(self, a: int, b: int) -> int:
        return a * b

    def helper(self):  # not an operation
        return None


class TestServiceDefinition:
    def test_register_and_invoke(self):
        svc = ServiceDefinition("Echo", "urn:echo")
        svc.register("echo", lambda payload: payload)
        assert svc.invoke("echo", {"payload": "x"}) == "x"

    def test_invalid_service_name_raises(self):
        with pytest.raises(ServiceError):
            ServiceDefinition("bad name", "urn:x")

    def test_empty_namespace_raises(self):
        with pytest.raises(ServiceError):
            ServiceDefinition("Svc", "")

    def test_invalid_operation_name_raises(self):
        svc = ServiceDefinition("Svc", "urn:x")
        with pytest.raises(ServiceError):
            svc.register("1bad", lambda: None)

    def test_duplicate_operation_raises(self):
        svc = ServiceDefinition("Svc", "urn:x")
        svc.register("op", lambda: None)
        with pytest.raises(ServiceError, match="already registered"):
            svc.register("op", lambda: None)

    def test_unknown_operation_is_client_fault(self):
        svc = ServiceDefinition("Svc", "urn:x")
        with pytest.raises(ClientFaultCause, match="no operation"):
            svc.invoke("missing", {})

    def test_bad_parameters_is_client_fault(self):
        svc = ServiceDefinition("Svc", "urn:x")
        svc.register("op", lambda a: a)
        with pytest.raises(ClientFaultCause, match="bad parameters"):
            svc.invoke("op", {"wrong": 1})

    def test_service_exception_propagates(self):
        svc = ServiceDefinition("Svc", "urn:x")

        def boom():
            raise RuntimeError("inside")

        svc.register("op", boom)
        with pytest.raises(RuntimeError, match="inside"):
            svc.invoke("op", {})

    def test_invocation_counter(self):
        svc = ServiceDefinition("Svc", "urn:x")
        svc.register("op", lambda: 1)
        svc.invoke("op", {})
        svc.invoke("op", {})
        assert svc.invocations == 2


class TestServiceFromObject:
    def test_discovers_operations(self):
        svc = service_from_object(Calculator())
        assert set(svc.operation_names()) == {"add", "Multiply"}

    def test_default_name_and_namespace(self):
        svc = service_from_object(Calculator())
        assert svc.name == "Calculator"
        assert svc.namespace == "urn:repro:Calculator"

    def test_explicit_name_and_namespace(self):
        svc = service_from_object(Calculator(), name="Calc", namespace="urn:c")
        assert svc.name == "Calc"
        assert svc.namespace == "urn:c"

    def test_invoke_bound_method(self):
        svc = service_from_object(Calculator())
        assert svc.invoke("add", {"a": 2, "b": 3}) == 5
        assert svc.invoke("Multiply", {"a": 2, "b": 3}) == 6

    def test_no_operations_raises(self):
        class Empty:
            pass

        with pytest.raises(ServiceError, match="no @operation"):
            service_from_object(Empty())


class TestServiceFromFunctions:
    def test_build(self):
        svc = service_from_functions(
            "Echo", "urn:echo", {"echo": lambda payload: payload}
        )
        assert svc.invoke("echo", {"payload": "hi"}) == "hi"


class TestDescribe:
    def test_wsdl_model(self):
        svc = service_from_object(Calculator(), namespace="urn:calc")
        model = svc.describe(location="http://host/calc")
        assert model.namespace == "urn:calc"
        assert model.location == "http://host/calc"
        add = model.operation("add")
        assert add.parameters == (("a", "xsd:int"), ("b", "xsd:int"))
        assert add.returns == "xsd:int"
        assert add.documentation == "Add two integers."

    def test_unannotated_params_default_to_string(self):
        svc = ServiceDefinition("S", "urn:s")
        svc.register("op", lambda x: x)
        assert svc.describe().operation("op").parameters == (("x", "xsd:string"),)
