"""Integration tests: both server architectures over real transports."""

import threading
import time

import pytest

from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.soap.constants import SOAP_CONTENT_TYPE
from repro.soap.deserializer import parse_response_envelope
from repro.soap.envelope import Envelope
from repro.soap.serializer import build_request_envelope, serialize_rpc_request
from repro.server.service import service_from_functions
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server

NS = "urn:svc:echo"


def make_services():
    def echo(payload: str) -> str:
        return payload

    def slow_echo(payload: str) -> str:
        time.sleep(0.05)
        return payload

    return [
        service_from_functions(
            "EchoService", NS, {"echo": echo, "slowEcho": slow_echo}
        )
    ]


def call(transport, address, envelope: Envelope):
    request = HttpRequest(
        "POST",
        "/services/EchoService",
        Headers({"Content-Type": SOAP_CONTENT_TYPE}),
        envelope.to_bytes(),
    )
    with HttpConnection(transport, address) as conn:
        response = conn.request(request)
    return response


@pytest.fixture(params=["common", "staged"])
def server(request):
    transport = InProcTransport()
    srv = build_server(ServerConfig(
        services=make_services(),
        architecture=request.param,
        transport=transport,
        address="soap-server",
    ))
    with srv.running() as address:
        yield srv, transport, address


class TestBothArchitectures:
    def test_single_request(self, server):
        srv, transport, address = server
        response = call(
            transport, address, build_request_envelope(NS, "echo", {"payload": "hi"})
        )
        assert response.status == 200
        env = Envelope.parse(response.body, server=True)
        assert parse_response_envelope(env).value == "hi"

    def test_multi_entry_body_executes_all(self, server):
        srv, transport, address = server
        envelope = Envelope()
        for i in range(4):
            envelope.add_body(serialize_rpc_request(NS, "echo", {"payload": f"m{i}"}))
        response = call(transport, address, envelope)
        assert response.status == 200
        env = Envelope.parse(response.body, server=True)
        values = [e.require("return").text for e in env.body_entries]
        assert values == ["m0", "m1", "m2", "m3"]

    def test_concurrent_clients(self, server):
        srv, transport, address = server
        results = {}
        lock = threading.Lock()

        def worker(i):
            response = call(
                transport,
                address,
                build_request_envelope(NS, "echo", {"payload": f"c{i}"}),
            )
            env = Envelope.parse(response.body, server=True)
            with lock:
                results[i] = parse_response_envelope(env).value

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == {i: f"c{i}" for i in range(6)}

    def test_stats_exposed(self, server):
        srv, transport, address = server
        call(transport, address, build_request_envelope(NS, "echo", {"payload": "x"}))
        stats = srv.stats()
        assert stats["architecture"] in ("common", "staged")
        assert stats["container"]["entries_executed"] == 1
        assert stats["endpoint"]["soap_messages"] == 1


class TestStagedConcurrency:
    def test_multi_entry_executes_concurrently(self):
        """M slow operations in one message should take ~1x the single
        operation time on the staged server (paper's server-side
        concurrency claim), not Mx."""
        transport = InProcTransport()
        srv = build_server(ServerConfig(services=make_services(), architecture="staged", transport=transport, address="staged", app_workers=8))
        with srv.running() as address:
            envelope = Envelope()
            for i in range(6):
                envelope.add_body(
                    serialize_rpc_request(NS, "slowEcho", {"payload": f"m{i}"})
                )
            start = time.monotonic()
            response = call(transport, address, envelope)
            elapsed = time.monotonic() - start
        assert response.status == 200
        # 6 x 0.05s serial would be >= 0.30s; concurrent should be well under
        assert elapsed < 0.22
        assert srv.app_stage.stats.events == 6

    def test_common_arch_is_serial(self):
        transport = InProcTransport()
        srv = build_server(ServerConfig(services=make_services(), architecture="common", transport=transport, address="common"))
        with srv.running() as address:
            envelope = Envelope()
            for i in range(4):
                envelope.add_body(
                    serialize_rpc_request(NS, "slowEcho", {"payload": f"m{i}"})
                )
            start = time.monotonic()
            call(transport, address, envelope)
            elapsed = time.monotonic() - start
        assert elapsed >= 0.2  # 4 x 0.05s, strictly sequential

    def test_staged_single_entry_stays_on_protocol_thread(self):
        transport = InProcTransport()
        srv = build_server(ServerConfig(services=make_services(), architecture="staged", transport=transport, address="fastpath"))
        with srv.running() as address:
            call(transport, address, build_request_envelope(NS, "echo", {"payload": "x"}))
        assert srv.app_stage.stats.events == 0

    def test_mixed_success_and_fault_entries(self):
        transport = InProcTransport()
        srv = build_server(ServerConfig(services=make_services(), architecture="staged", transport=transport, address="mixed"))
        with srv.running() as address:
            envelope = Envelope()
            envelope.add_body(serialize_rpc_request(NS, "echo", {"payload": "good"}))
            envelope.add_body(serialize_rpc_request(NS, "doesNotExist", {}))
            response = call(transport, address, envelope)
        env = Envelope.parse(response.body, server=True)
        assert len(env.body_entries) == 2
        tags = [e.local_name for e in env.body_entries]
        assert tags == ["echoResponse", "Fault"]
