"""Unit tests for the service container and the SOAP endpoint."""

import pytest

from repro.errors import ServiceError
from repro.http.message import Headers, HttpRequest
from repro.soap.constants import FAULT_TAG, REQUEST_ID_ATTR, SOAP_CONTENT_TYPE
from repro.soap.deserializer import parse_rpc_response
from repro.soap.envelope import Envelope
from repro.soap.serializer import build_request_envelope, serialize_rpc_request
from repro.server.container import ServiceContainer
from repro.server.endpoint import SoapEndpoint
from repro.server.service import service_from_functions
from repro.xmlcore.tree import Element

NS = "urn:svc:calc"


@pytest.fixture
def container():
    def fail(message: str):
        raise RuntimeError(message)

    svc = service_from_functions(
        "Calc",
        NS,
        {
            "add": lambda a, b: a + b,
            "fail": fail,
        },
    )
    return ServiceContainer([svc])


class TestContainer:
    def test_deploy_and_lookup(self, container):
        assert container.service_for(NS).name == "Calc"

    def test_duplicate_namespace_raises(self, container):
        with pytest.raises(ServiceError, match="already deployed"):
            container.deploy(service_from_functions("Other", NS, {"x": lambda: 1}))

    def test_unknown_namespace_raises(self, container):
        with pytest.raises(ServiceError, match="no service"):
            container.service_for("urn:none")

    def test_execute_entry_success(self, container):
        entry = serialize_rpc_request(NS, "add", {"a": 2, "b": 5})
        response = container.execute_entry(entry)
        assert parse_rpc_response(response).value == 7

    def test_execute_entry_service_error_becomes_fault(self, container):
        entry = serialize_rpc_request(NS, "fail", {"message": "boom"})
        response = container.execute_entry(entry)
        assert response.tag == FAULT_TAG
        assert container.stats.faults == 1

    def test_execute_entry_unknown_op_becomes_client_fault(self, container):
        entry = serialize_rpc_request(NS, "nope", {})
        response = container.execute_entry(entry)
        assert response.tag == FAULT_TAG
        assert "SOAP-ENV:Client" in response.findtext("faultcode", "")

    def test_request_id_copied_to_response(self, container):
        entry = serialize_rpc_request(NS, "add", {"a": 1, "b": 1})
        entry.set(REQUEST_ID_ATTR, "req-3")
        assert container.execute_entry(entry).get(REQUEST_ID_ATTR) == "req-3"

    def test_request_id_copied_to_fault(self, container):
        entry = serialize_rpc_request(NS, "nope", {})
        entry.set(REQUEST_ID_ATTR, "req-9")
        assert container.execute_entry(entry).get(REQUEST_ID_ATTR) == "req-9"

    def test_stats(self, container):
        container.execute_entry(serialize_rpc_request(NS, "add", {"a": 1, "b": 2}))
        snap = container.stats.snapshot()
        assert snap["entries_executed"] == 1
        assert snap["by_service"] == {NS: 1}


def soap_post(endpoint: SoapEndpoint, envelope: Envelope) -> "HttpResponse":
    request = HttpRequest(
        "POST",
        "/services/Calc",
        Headers({"Content-Type": SOAP_CONTENT_TYPE}),
        envelope.to_bytes(),
    )
    return endpoint(request)


class TestEndpoint:
    @pytest.fixture
    def endpoint(self, container):
        return SoapEndpoint(
            container, lambda entries, context: [container.execute_entry(e) for e in entries]
        )

    def test_successful_call(self, endpoint):
        response = soap_post(endpoint, build_request_envelope(NS, "add", {"a": 3, "b": 4}))
        assert response.status == 200
        env = Envelope.parse(response.body, server=True)
        assert parse_rpc_response(env.first_body_entry()).value == 7

    def test_service_fault_is_http_500(self, endpoint):
        response = soap_post(
            endpoint, build_request_envelope(NS, "fail", {"message": "x"})
        )
        assert response.status == 500
        assert b"Fault" in response.body

    def test_unparseable_body_is_http_400(self, endpoint):
        request = HttpRequest("POST", "/", body=b"this is not xml")
        response = endpoint(request)
        assert response.status == 400
        assert b"Fault" in response.body

    def test_unsupported_method_is_405(self, endpoint):
        assert endpoint(HttpRequest("DELETE", "/")).status == 405

    def test_must_understand_unprocessed_faults(self, endpoint):
        envelope = build_request_envelope(NS, "add", {"a": 1, "b": 2})
        envelope.add_header(Element("{urn:sec}Auth"), must_understand=True)
        response = soap_post(endpoint, envelope)
        assert response.status == 500
        assert b"MustUnderstand" in response.body

    def test_plain_header_ignored(self, endpoint):
        envelope = build_request_envelope(NS, "add", {"a": 1, "b": 2})
        envelope.add_header(Element("{urn:x}Trace"))
        assert soap_post(endpoint, envelope).status == 200

    def test_wsdl_get(self, endpoint):
        response = endpoint(HttpRequest("GET", "/services/Calc?wsdl"))
        assert response.status == 200
        assert b"definitions" in response.body
        assert b"add" in response.body

    def test_wsdl_unknown_service_404(self, endpoint):
        assert endpoint(HttpRequest("GET", "/services/Nope?wsdl")).status == 404

    def test_get_without_wsdl_404(self, endpoint):
        assert endpoint(HttpRequest("GET", "/services/Calc")).status == 404

    def test_stats_counted(self, endpoint):
        soap_post(endpoint, build_request_envelope(NS, "add", {"a": 1, "b": 1}))
        endpoint(HttpRequest("GET", "/services/Calc?wsdl"))
        snap = endpoint.stats.snapshot()
        assert snap["soap_messages"] == 1
        assert snap["wsdl_requests"] == 1
        assert snap["http_requests"] == 2


class TestServicesIndex:
    @pytest.fixture
    def endpoint(self, container):
        return SoapEndpoint(
            container, lambda entries, context: [container.execute_entry(e) for e in entries]
        )

    def test_index_lists_services_and_operations(self, endpoint):
        response = endpoint(HttpRequest("GET", "/services"))
        assert response.status == 200
        text = response.body.decode()
        assert "Calc" in text
        assert "add" in text
        assert "?wsdl" in text

    def test_root_path_also_serves_index(self, endpoint):
        assert endpoint(HttpRequest("GET", "/")).status == 200

    def test_trailing_slash(self, endpoint):
        assert endpoint(HttpRequest("GET", "/services/")).status == 200

    def test_other_paths_still_404(self, endpoint):
        assert endpoint(HttpRequest("GET", "/other")).status == 404
