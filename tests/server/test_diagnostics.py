"""Tests for the diagnostics handlers (pack metrics + tracing)."""

import pytest

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.diagnostics import (
    Histogram,
    PackMetricsHandler,
    TraceLog,
    TracingHandler,
)
from repro.server.handlers import HandlerChain
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(bounds=(1, 2, 4))
        for value in (1, 1, 2, 3, 4, 99):
            h.record(value)
        snap = h.snapshot()
        assert snap["buckets"] == {"<=1": 2, "<=2": 1, "<=4": 2, ">4": 1}
        assert snap["total"] == 6

    def test_mean(self):
        h = Histogram()
        h.record(2)
        h.record(4)
        assert h.mean == 3.0

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestTraceLog:
    def test_emit_and_filter(self):
        log = TraceLog()
        log.emit("request", "a")
        log.emit("response", "b")
        log.emit("request", "c")
        assert len(log) == 3
        assert [e.detail for e in log.events("request")] == ["a", "c"]

    def test_capacity_ring(self):
        log = TraceLog(capacity=3)
        for i in range(10):
            log.emit("k", str(i))
        assert [e.detail for e in log.events()] == ["7", "8", "9"]

    def test_clock_injection(self):
        ticks = iter(range(100))
        log = TraceLog(clock=lambda: next(ticks))
        log.emit("k", "x")
        log.emit("k", "y")
        times = [e.timestamp for e in log.events()]
        assert times == [0, 1]


@pytest.fixture
def instrumented_server():
    transport = InProcTransport()
    metrics = PackMetricsHandler()
    tracing = TracingHandler()
    chain = HandlerChain([metrics, *spi_server_handlers(), tracing])
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="diag", chain=chain))
    with server.running() as address:
        proxy = build_proxy(ClientConfig(transport, address, namespace=ECHO_NS, service_name="EchoService"))
        yield proxy, metrics, tracing
        proxy.close()


class TestPackMetricsHandler:
    def test_plain_call_recorded(self, instrumented_server):
        proxy, metrics, _ = instrumented_server
        proxy.call("echo", payload="x")
        snap = metrics.snapshot()
        assert snap["plain_messages"] == 1
        assert snap["packed_messages"] == 0
        assert snap["amortization"] == 1.0

    def test_packed_call_recorded(self, instrumented_server):
        proxy, metrics, _ = instrumented_server
        with PackBatch(proxy) as batch:
            for i in range(8):
                batch.call("echo", payload=str(i))
        snap = metrics.snapshot()
        assert snap["packed_messages"] == 1
        assert snap["amortization"] == 8.0
        assert snap["pack_degree"]["buckets"]["<=8"] == 1

    def test_amortization_mixes_plain_and_packed(self, instrumented_server):
        proxy, metrics, _ = instrumented_server
        proxy.call("echo", payload="a")
        with PackBatch(proxy) as batch:
            batch.call("echo", payload="b")
            batch.call("echo", payload="c")
            batch.call("echo", payload="d")
        assert metrics.amortization == pytest.approx(2.0)  # (1 + 3) / 2

    def test_execute_time_histogram_fills(self, instrumented_server):
        proxy, metrics, _ = instrumented_server
        proxy.call("echo", payload="x")
        assert metrics.execute_ms.total == 1


class TestTracingHandler:
    def test_request_and_response_events(self, instrumented_server):
        proxy, _, tracing = instrumented_server
        proxy.call("echo", payload="x")
        requests = tracing.log.events("request")
        responses = tracing.log.events("response")
        assert len(requests) == 1
        assert len(responses) == 1
        assert "echo" in requests[0].detail

    def test_packed_trace_notes_unpacked_entries(self, instrumented_server):
        proxy, _, tracing = instrumented_server
        with PackBatch(proxy) as batch:
            batch.call("echo", payload="a")
            batch.call("echoLength", payload="bb")
        (request,) = tracing.log.events("request")
        # the tracing handler sits after the SPI dispatcher in the chain,
        # so it sees the unpacked entries
        assert "entries=2" in request.detail
        assert "packed=True" in request.detail
        assert "echoLength" in request.detail
