"""End-to-end WS-Security enforcement: signed clients vs the verify handler."""

import pytest

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.errors import SoapFaultError
from repro.server.handlers import HandlerChain
from repro.server.security_handler import SecurityVerifyHandler
from repro.soap.wssecurity import Credentials
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

SECRETS = {"alice": b"alice-secret", "bob": b"bob-secret"}
ALICE = Credentials("alice", SECRETS["alice"])
MALLORY = Credentials("mallory", b"guess")
WRONG_ALICE = Credentials("alice", b"wrong-secret")


@pytest.fixture(params=[True, False], ids=["required", "optional"])
def secured_env(request):
    required = request.param
    transport = InProcTransport()
    verify = SecurityVerifyHandler(SECRETS.get, required=required)
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="secured", chain=HandlerChain([verify, *spi_server_handlers()])))
    with server.running() as address:
        yield transport, address, verify, required


def proxy_for(transport, address, credentials=None):
    return build_proxy(ClientConfig(
        transport, address, namespace=ECHO_NS, service_name="EchoService",
        credentials=credentials,
    ))


class TestSecurityEnforcement:
    def test_signed_call_accepted(self, secured_env):
        transport, address, verify, _ = secured_env
        proxy = proxy_for(transport, address, ALICE)
        assert proxy.call("echo", payload="authenticated") == "authenticated"
        assert verify.snapshot()["verified"] == 1

    def test_unsigned_call(self, secured_env):
        transport, address, verify, required = secured_env
        proxy = proxy_for(transport, address)
        if required:
            with pytest.raises(SoapFaultError):
                proxy.call("echo", payload="anon")
        else:
            assert proxy.call("echo", payload="anon") == "anon"
            assert verify.snapshot()["anonymous"] == 1

    def test_unknown_user_rejected(self, secured_env):
        transport, address, verify, _ = secured_env
        proxy = proxy_for(transport, address, MALLORY)
        with pytest.raises(SoapFaultError):
            proxy.call("echo", payload="x")
        assert verify.snapshot()["rejected"] == 1

    def test_wrong_secret_rejected(self, secured_env):
        transport, address, _, _ = secured_env
        proxy = proxy_for(transport, address, WRONG_ALICE)
        with pytest.raises(SoapFaultError):
            proxy.call("echo", payload="x")

    def test_signed_packed_batch_accepted(self, secured_env):
        """One signature authenticates the entire packed batch — the
        amortization §4.2 argues for."""
        transport, address, verify, _ = secured_env
        proxy = proxy_for(transport, address, ALICE)
        with PackBatch(proxy) as batch:
            futures = [batch.call("echo", payload=f"m{i}") for i in range(5)]
        assert [f.result(timeout=10) for f in futures] == [f"m{i}" for i in range(5)]
        assert verify.snapshot()["verified"] == 1

    def test_unsigned_packed_batch_rejected_whole(self, secured_env):
        transport, address, _, required = secured_env
        if not required:
            pytest.skip("optional mode admits anonymous batches")
        proxy = proxy_for(transport, address)
        batch = PackBatch(proxy)
        futures = [batch.call("echo", payload=str(i)) for i in range(3)]
        batch.flush()
        for future in futures:
            assert isinstance(future.exception(timeout=10), SoapFaultError)

    def test_tampered_packed_body_rejected(self, secured_env):
        """Signature covers the body, so post-signing tampering fails."""
        transport, address, _, _ = secured_env
        from repro.core.assembler import ClientAssembler
        from repro.soap.wssecurity import attach_security_header

        assembler = ClientAssembler(ECHO_NS)
        assembler.add_call("echo", {"payload": "original"})
        envelope = assembler.assemble()
        attach_security_header(envelope, ALICE)
        # tamper after signing
        wrapper = envelope.first_body_entry()
        wrapper.element_children()[0].element_children()[0].children[:] = ["tampered"]
        proxy = proxy_for(transport, address)
        response = proxy.exchange(envelope)
        assert response.first_body_entry().local_name == "Fault"

    def test_must_understand_satisfied_by_verifier(self, secured_env):
        """The signed header is mustUnderstand; the verify handler marks
        it understood so the endpoint does not fault."""
        transport, address, _, _ = secured_env
        proxy = proxy_for(transport, address, ALICE)
        assert proxy.call("echo", payload="ok") == "ok"
