"""Unit tests for the thread pool, futures and the completion latch."""

import threading
import time
from concurrent.futures import CancelledError

import pytest

from repro.errors import PoolSaturatedError, ServiceError
from repro.server.threadpool import CompletionLatch, TaskFuture, ThreadPool


class TestTaskFuture:
    def test_result(self):
        f = TaskFuture()
        f.set_result(42)
        assert f.done()
        assert f.result() == 42
        assert f.exception() is None

    def test_exception(self):
        f = TaskFuture()
        f.set_exception(ValueError("x"))
        assert f.done()
        with pytest.raises(ValueError):
            f.result()
        assert isinstance(f.exception(), ValueError)

    def test_result_timeout(self):
        f = TaskFuture()
        with pytest.raises(TimeoutError):
            f.result(timeout=0.01)

    def test_callback_after_completion_runs_immediately(self):
        f = TaskFuture()
        f.set_result(1)
        seen = []
        f.add_done_callback(seen.append)
        assert seen == [f]

    def test_callback_before_completion(self):
        f = TaskFuture()
        seen = []
        f.add_done_callback(seen.append)
        assert seen == []
        f.set_result(1)
        assert seen == [f]


class TestThreadPool:
    def test_submit_and_result(self):
        with ThreadPool(2) as pool:
            assert pool.submit(lambda: 7).result(timeout=5) == 7

    def test_args_kwargs(self):
        with ThreadPool(1) as pool:
            assert pool.submit(divmod, 7, 3).result(timeout=5) == (2, 1)
            assert pool.submit(int, "ff", base=16).result(timeout=5) == 255

    def test_exception_propagates_via_future(self):
        def boom():
            raise KeyError("nope")

        with ThreadPool(1) as pool:
            future = pool.submit(boom)
            with pytest.raises(KeyError):
                future.result(timeout=5)
        assert pool.stats.failed == 1

    def test_worker_survives_task_failure(self):
        with ThreadPool(1) as pool:
            pool.submit(lambda: 1 / 0).exception(timeout=5)
            assert pool.submit(lambda: "alive").result(timeout=5) == "alive"

    def test_map_wait_preserves_order(self):
        with ThreadPool(4) as pool:
            results = pool.map_wait(lambda x: x * x, list(range(10)), timeout=5)
        assert results == [x * x for x in range(10)]

    def test_concurrency_actually_happens(self):
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous():
            barrier.wait()
            return True

        with ThreadPool(3) as pool:
            futures = [pool.submit(rendezvous) for _ in range(3)]
            assert all(f.result(timeout=5) for f in futures)
        assert pool.stats.max_concurrency == 3

    def test_zero_workers_raises(self):
        with pytest.raises(ServiceError):
            ThreadPool(0)

    def test_submit_after_shutdown_raises(self):
        pool = ThreadPool(1)
        pool.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            pool.submit(lambda: 1)

    def test_shutdown_idempotent(self):
        pool = ThreadPool(1)
        pool.shutdown()
        pool.shutdown()

    def test_stats_counts(self):
        with ThreadPool(2) as pool:
            for _ in range(5):
                pool.submit(lambda: None).result(timeout=5)
        assert pool.stats.submitted == 5
        assert pool.stats.completed == 5


class TestShutdownCancelsQueuedTasks:
    def test_queued_tasks_fail_with_cancelled_error(self):
        release = threading.Event()
        pool = ThreadPool(1)
        blocker = pool.submit(release.wait, 5)
        queued = [pool.submit(lambda: "never ran") for _ in range(4)]
        # let the single worker pick up the blocker before shutting down,
        # and release it only after shutdown has drained the queue
        time.sleep(0.05)
        threading.Timer(0.2, release.set).start()
        pool.shutdown()
        assert blocker.result(timeout=5) is True
        for future in queued:
            assert future.done()
            with pytest.raises(CancelledError, match="shut down before"):
                future.result(timeout=0)
        assert pool.stats.cancelled >= 1

    def test_result_on_cancelled_future_does_not_hang(self):
        release = threading.Event()
        pool = ThreadPool(1)
        pool.submit(release.wait, 5)
        queued = pool.submit(lambda: 1)
        time.sleep(0.05)
        threading.Timer(0.2, release.set).start()
        pool.shutdown()
        start = time.monotonic()
        with pytest.raises(CancelledError):
            queued.result()  # no timeout: must not block forever
        assert time.monotonic() - start < 2.0


class TestBoundedQueue:
    def test_submit_beyond_max_queue_is_rejected(self):
        release = threading.Event()
        with ThreadPool(1, max_queue=2) as pool:
            pool.submit(release.wait, 5)
            time.sleep(0.05)  # blocker reaches the worker; queue empties
            accepted = [pool.submit(lambda: None) for _ in range(2)]
            with pytest.raises(PoolSaturatedError, match="queue is full"):
                pool.submit(lambda: None)
            assert pool.stats.rejected == 1
            release.set()
            for future in accepted:
                future.result(timeout=5)

    def test_unbounded_by_default(self):
        with ThreadPool(1) as pool:
            assert pool.max_queue is None
            futures = [pool.submit(lambda: 1) for _ in range(64)]
            assert all(f.result(timeout=5) == 1 for f in futures)

    def test_bad_max_queue_raises(self):
        with pytest.raises(ServiceError):
            ThreadPool(1, max_queue=0)


class TestCompletionLatch:
    def test_wait_returns_when_counted_down(self):
        latch = CompletionLatch(2)
        latch.count_down()
        assert latch.remaining == 1
        latch.count_down()
        assert latch.wait(timeout=1)
        assert latch.remaining == 0

    def test_zero_latch_is_immediately_open(self):
        assert CompletionLatch(0).wait(timeout=0)

    def test_wait_timeout(self):
        assert not CompletionLatch(1).wait(timeout=0.01)

    def test_extra_count_down_harmless(self):
        latch = CompletionLatch(1)
        latch.count_down()
        latch.count_down()
        assert latch.remaining == 0

    def test_negative_count_raises(self):
        with pytest.raises(ServiceError):
            CompletionLatch(-1)

    def test_wakes_sleeping_thread(self):
        latch = CompletionLatch(3)
        woken_at = []

        def sleeper():
            latch.wait(timeout=5)
            woken_at.append(time.monotonic())

        thread = threading.Thread(target=sleeper)
        thread.start()
        time.sleep(0.02)
        for _ in range(3):
            latch.count_down()
        thread.join(timeout=5)
        assert woken_at
