"""The unified ServerConfig API: facade, validation, legacy shims."""

import warnings

import pytest

from repro.apps.echo import make_echo_service
from repro.errors import TransportError
from repro.http.evented import EventedHttpServer
from repro.http.server import HttpServer
from repro.server import ServerConfig, build_server
from repro.server.common_arch import CommonSoapServer
from repro.server.staged_arch import StagedSoapServer
from repro.transport.inproc import InProcTransport


class TestServerConfig:
    def test_defaults(self):
        config = ServerConfig()
        assert config.architecture == "staged"
        assert config.backend == "threaded"
        assert config.protocol_queue_limit == 1024

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="architecture"):
            ServerConfig(architecture="actor-model")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ServerConfig(backend="asyncio")

    def test_replace_returns_modified_copy(self):
        config = ServerConfig()
        evented = config.replace(backend="evented")
        assert config.backend == "threaded"
        assert evented.backend == "evented"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServerConfig().backend = "evented"


class TestBuildServer:
    def test_architecture_selects_server_class(self):
        services = [make_echo_service()]
        staged = build_server(ServerConfig(services=services))
        common = build_server(
            ServerConfig(services=services, architecture="common")
        )
        assert isinstance(staged, StagedSoapServer)
        assert isinstance(common, CommonSoapServer)

    def test_backend_selects_http_class(self):
        services = [make_echo_service()]
        threaded = build_server(ServerConfig(services=services))
        evented = build_server(
            ServerConfig(services=services, backend="evented")
        )
        assert isinstance(threaded.http, HttpServer)
        assert isinstance(evented.http, EventedHttpServer)

    def test_server_carries_its_config(self):
        # a missing transport is normalized to TcpTransport; everything
        # else comes through unchanged on server.config
        config = ServerConfig(services=[make_echo_service()], app_workers=7)
        server = build_server(config)
        assert server.config.app_workers == 7
        assert server.config.transport is not None

    def test_evented_on_inproc_fails_at_start(self):
        # InProc transport has no selectable socket; the evented loop
        # must refuse loudly, not hang.
        server = build_server(ServerConfig(
            services=[make_echo_service()],
            backend="evented",
            transport=InProcTransport(),
            address="nope",
        ))
        with pytest.raises(TransportError, match="selectable"):
            server.start()

    def test_both_backends_serve_the_full_matrix(self):
        # (architecture x backend) all build; socket backends all start.
        from repro.transport.tcp import TcpTransport

        for architecture in ("common", "staged"):
            for backend in ("threaded", "evented"):
                server = build_server(ServerConfig(
                    services=[make_echo_service()],
                    architecture=architecture,
                    backend=backend,
                    transport=TcpTransport(),
                ))
                with server.running() as address:
                    assert address[1] > 0


class TestLegacyConstructors:
    def test_staged_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="build_server"):
            server = StagedSoapServer(
                [make_echo_service()],
                transport=InProcTransport(),
                address="legacy-staged",
            )
        assert server.config.architecture == "staged"

    def test_common_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="build_server"):
            server = CommonSoapServer(
                [make_echo_service()],
                transport=InProcTransport(),
                address="legacy-common",
            )
        assert server.config.architecture == "common"

    def test_legacy_kwargs_still_work_end_to_end(self):
        with pytest.warns(DeprecationWarning):
            server = StagedSoapServer(
                [make_echo_service()],
                transport=InProcTransport(),
                address="legacy-e2e",
                app_workers=4,
            )
        with server.running():
            pass

    def test_config_and_legacy_kwargs_conflict(self):
        with pytest.raises(TypeError, match="either"):
            StagedSoapServer(
                [make_echo_service()],
                config=ServerConfig(services=[make_echo_service()]),
                transport=InProcTransport(),
            )

    def test_unknown_legacy_kwarg_raises_type_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="bogus_knob"):
                StagedSoapServer([make_echo_service()], bogus_knob=1)

    def test_common_rejects_staged_only_kwargs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="app_workers"):
                CommonSoapServer([make_echo_service()], app_workers=4)
