"""Unit tests for SEDA stages and the handler chain."""

import pytest

from repro.server.handlers import (
    Handler,
    HandlerChain,
    HeaderEchoHandler,
    MessageContext,
)
from repro.server.stage import Stage
from repro.soap.envelope import Envelope
from repro.xmlcore.tree import Element


class TestStage:
    def test_submit_returns_future(self):
        with Stage("test", workers=2) as stage:
            assert stage.submit(lambda: 5).result(timeout=5) == 5

    def test_stats_recorded(self):
        with Stage("test", workers=1) as stage:
            stage.submit(lambda: None, kind="a").result(timeout=5)
            stage.submit(lambda: None, kind="a").result(timeout=5)
            stage.submit(lambda: None, kind="b").result(timeout=5)
        snap = stage.stats.snapshot()
        assert snap["events"] == 3
        assert snap["per_kind"] == {"a": 2, "b": 1}
        assert snap["failures"] == 0

    def test_failure_recorded_and_raised(self):
        with Stage("test", workers=1) as stage:
            future = stage.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result(timeout=5)
        assert stage.stats.failures == 1

    def test_mean_service_time(self):
        with Stage("test", workers=1) as stage:
            stage.submit(lambda: None).result(timeout=5)
        assert stage.stats.mean_service_time >= 0.0

    def test_workers_property(self):
        with Stage("test", workers=3) as stage:
            assert stage.workers == 3

    def test_pool_stats_exposed(self):
        with Stage("test", workers=1) as stage:
            stage.submit(lambda: None).result(timeout=5)
        assert stage.pool_stats()["submitted"] == 1


def make_context(*entries: Element) -> MessageContext:
    envelope = Envelope()
    for entry in entries:
        envelope.add_body(entry)
    return MessageContext.for_envelope(envelope)


class Recorder(Handler):
    def __init__(self, name, log):
        self.name = name
        self._log = log

    def invoke_request(self, context):
        self._log.append(f"req:{self.name}")

    def invoke_response(self, context):
        self._log.append(f"resp:{self.name}")


class TestHandlerChain:
    def test_request_order_first_to_last(self):
        log = []
        chain = HandlerChain([Recorder("a", log), Recorder("b", log)])
        chain.run_request(make_context(Element("x")))
        assert log == ["req:a", "req:b"]

    def test_response_order_last_to_first(self):
        log = []
        chain = HandlerChain([Recorder("a", log), Recorder("b", log)])
        chain.run_response(make_context(Element("x")))
        assert log == ["resp:b", "resp:a"]

    def test_add_and_len_and_names(self):
        chain = HandlerChain()
        chain.add(Recorder("a", [])).add(Recorder("b", []))
        assert len(chain) == 2
        assert chain.names() == ["a", "b"]

    def test_context_seeded_from_envelope(self):
        entry = Element("{urn:x}op")
        context = make_context(entry)
        assert context.request_entries == [entry]
        assert context.response_entries == []
        assert not context.packed

    def test_handler_can_rewrite_entries(self):
        class Splitter(Handler):
            def invoke_request(self, context):
                wrapper = context.request_entries[0]
                context.request_entries = wrapper.element_children()

        wrapper = Element("wrapper")
        a, b = wrapper.subelement("a"), wrapper.subelement("b")
        context = make_context(wrapper)
        HandlerChain([Splitter()]).run_request(context)
        assert context.request_entries == [a, b]

    def test_header_echo_handler(self):
        envelope = Envelope()
        token = Element("{urn:h}correlation")
        token.append("id-7")
        envelope.add_header(token)
        envelope.add_body(Element("op"))
        context = MessageContext.for_envelope(envelope)
        handler = HeaderEchoHandler({"{urn:h}correlation"})
        chain = HandlerChain([handler])
        chain.run_request(context)
        assert "{urn:h}correlation" in context.understood_headers
        chain.run_response(context)
        assert len(context.response_headers) == 1
        assert context.response_headers[0].text == "id-7"
