"""Unit tests for WSDL model, generation and parsing."""

import pytest

from repro.errors import WsdlError
from repro.wsdl.generator import generate_wsdl, generate_wsdl_document, wsdl_for_service
from repro.wsdl.model import WsdlDocumentModel, WsdlOperation, WsdlService
from repro.wsdl.parser import parse_wsdl


@pytest.fixture
def weather_service():
    return WsdlService(
        name="WeatherService",
        namespace="urn:svc:weather",
        operations=(
            WsdlOperation(
                "GetWeather",
                (("city", "xsd:string"), ("country", "xsd:string")),
                "xsd:string",
                "Current weather for a city",
            ),
            WsdlOperation("GetCities", (), "SOAP-ENC:Array"),
        ),
        location="http://localhost:8080/services/WeatherService",
        documentation="Weather lookup, WebServiceX style (paper Fig. 4).",
    )


class TestModel:
    def test_operation_lookup(self, weather_service):
        assert weather_service.operation("GetWeather").returns == "xsd:string"

    def test_operation_lookup_missing_raises(self, weather_service):
        with pytest.raises(WsdlError):
            weather_service.operation("Nope")

    def test_operation_names(self, weather_service):
        assert weather_service.operation_names() == ("GetWeather", "GetCities")

    def test_parameter_names(self, weather_service):
        assert weather_service.operation("GetWeather").parameter_names() == (
            "city",
            "country",
        )

    def test_with_location(self, weather_service):
        moved = weather_service.with_location("http://other/")
        assert moved.location == "http://other/"
        assert moved.operations == weather_service.operations

    def test_document_model_names(self, weather_service):
        model = WsdlDocumentModel(weather_service)
        assert model.port_type_name == "WeatherServicePortType"
        assert model.binding_name == "WeatherServiceSoapBinding"
        assert model.port_name == "WeatherServicePort"

    def test_soap_action(self, weather_service):
        model = WsdlDocumentModel(weather_service)
        assert model.soap_action("GetWeather") == "urn:svc:weather#GetWeather"


class TestGeneration:
    def test_document_has_all_sections(self, weather_service):
        root = generate_wsdl(WsdlDocumentModel(weather_service))
        locals_present = {c.local_name for c in root.element_children()}
        assert {"message", "portType", "binding", "service"} <= locals_present

    def test_messages_per_operation(self, weather_service):
        root = generate_wsdl(WsdlDocumentModel(weather_service))
        names = {m.get("name") for m in root.findall("message")}
        assert names == {
            "GetWeatherRequest",
            "GetWeatherResponse",
            "GetCitiesRequest",
            "GetCitiesResponse",
        }

    def test_target_namespace(self, weather_service):
        root = generate_wsdl(WsdlDocumentModel(weather_service))
        assert root.get("targetNamespace") == "urn:svc:weather"

    def test_rpc_binding_style(self, weather_service):
        document = generate_wsdl_document(WsdlDocumentModel(weather_service))
        assert 'style="rpc"' in document
        assert 'use="encoded"' in document

    def test_location_in_port_address(self, weather_service):
        document = generate_wsdl_document(WsdlDocumentModel(weather_service))
        assert "http://localhost:8080/services/WeatherService" in document

    def test_wsdl_for_service_convenience(self, weather_service):
        assert wsdl_for_service(weather_service).startswith("<?xml")


class TestRoundTrip:
    def test_generate_parse_round_trip(self, weather_service):
        document = generate_wsdl_document(WsdlDocumentModel(weather_service))
        model = parse_wsdl(document)
        parsed = model.service
        assert parsed.name == weather_service.name
        assert parsed.namespace == weather_service.namespace
        assert parsed.location == weather_service.location
        assert parsed.operations == weather_service.operations

    def test_round_trip_no_params(self):
        service = WsdlService("S", "urn:s", (WsdlOperation("ping", ()),))
        parsed = parse_wsdl(generate_wsdl_document(WsdlDocumentModel(service)))
        assert parsed.service.operation("ping").parameters == ()

    def test_round_trip_documentation(self, weather_service):
        parsed = parse_wsdl(
            generate_wsdl_document(WsdlDocumentModel(weather_service))
        ).service
        assert parsed.documentation == weather_service.documentation
        assert parsed.operation("GetWeather").documentation == "Current weather for a city"


class TestParserErrors:
    def test_wrong_root_raises(self):
        with pytest.raises(WsdlError, match="root element"):
            parse_wsdl("<notwsdl/>")

    def test_missing_target_namespace_raises(self):
        doc = '<d:definitions xmlns:d="http://schemas.xmlsoap.org/wsdl/"/>'
        with pytest.raises(WsdlError, match="targetNamespace"):
            parse_wsdl(doc)

    def test_missing_port_type_raises(self):
        doc = (
            '<d:definitions xmlns:d="http://schemas.xmlsoap.org/wsdl/" '
            'targetNamespace="urn:x"/>'
        )
        with pytest.raises(WsdlError, match="portType"):
            parse_wsdl(doc)

    def test_undefined_message_reference_raises(self):
        doc = (
            '<d:definitions xmlns:d="http://schemas.xmlsoap.org/wsdl/" '
            'targetNamespace="urn:x">'
            '<d:portType name="P"><d:operation name="op">'
            '<d:input message="tns:Missing"/></d:operation></d:portType>'
            "</d:definitions>"
        )
        with pytest.raises(WsdlError, match="not defined"):
            parse_wsdl(doc)

    def test_interface_only_document(self):
        doc = (
            '<d:definitions xmlns:d="http://schemas.xmlsoap.org/wsdl/" '
            'name="Iface" targetNamespace="urn:x">'
            '<d:message name="opRequest"/><d:message name="opResponse">'
            '<d:part name="return" type="xsd:string"/></d:message>'
            '<d:portType name="P"><d:operation name="op">'
            '<d:input message="tns:opRequest"/>'
            '<d:output message="tns:opResponse"/></d:operation></d:portType>'
            "</d:definitions>"
        )
        model = parse_wsdl(doc)
        assert model.service.name == "Iface"
        assert model.service.location == ""
        assert model.service.operation("op").returns == "xsd:string"
