"""Golden wire-format tests: exact serialized message shapes.

These lock the on-the-wire representation (prefixes, attribute order,
declaration) so that refactors of the writer/serializer cannot silently
change interop-relevant bytes.
"""

from repro.core.packformat import build_parallel_method
from repro.soap.envelope import Envelope
from repro.soap.fault import SoapFault
from repro.soap.serializer import (
    build_fault_envelope,
    build_request_envelope,
    serialize_rpc_request,
)

XML_DECL = '<?xml version="1.0" encoding="UTF-8"?>'


class TestGoldenMessages:
    def test_simple_request_envelope(self):
        envelope = build_request_envelope("urn:svc", "echo", {"payload": "hi"})
        assert envelope.to_string() == (
            XML_DECL
            + '<SOAP-ENV:Envelope'
            + ' xmlns:SOAP-ENV="http://schemas.xmlsoap.org/soap/envelope/"'
            + ' xmlns:xsd="http://www.w3.org/2001/XMLSchema"'
            + ' xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">'
            + "<SOAP-ENV:Body>"
            + '<ns0:echo xmlns:ns0="urn:svc">'
            + '<payload xsi:type="xsd:string">hi</payload>'
            + "</ns0:echo>"
            + "</SOAP-ENV:Body>"
            + "</SOAP-ENV:Envelope>"
        )

    def test_typed_parameters(self):
        entry = serialize_rpc_request(
            "urn:svc", "op", {"n": 7, "f": 1.5, "b": True, "none": None}
        )
        envelope = Envelope()
        envelope.add_body(entry)
        text = envelope.to_string()
        assert '<n xsi:type="xsd:int">7</n>' in text
        assert '<f xsi:type="xsd:double">1.5</f>' in text
        assert '<b xsi:type="xsd:boolean">true</b>' in text
        assert '<none xsi:nil="true"/>' in text

    def test_fault_envelope(self):
        envelope = build_fault_envelope(SoapFault("Server", "boom"))
        text = envelope.to_string()
        assert "<SOAP-ENV:Fault>" in text
        assert "<faultcode>SOAP-ENV:Server</faultcode>" in text
        assert "<faultstring>boom</faultstring>" in text

    def test_parallel_method_message_matches_figure4_shape(self):
        """The structure of Figure 4: Body > Parallel_Method > M requests,
        each with its requestID."""
        entries = [
            serialize_rpc_request("urn:w", "GetWeather", {"city": "Beijing", "country": "China"}),
            serialize_rpc_request("urn:w", "GetWeather", {"city": "Shanghai", "country": "China"}),
        ]
        envelope = Envelope()
        envelope.add_body(build_parallel_method(entries))
        text = envelope.to_string()
        # The wrapper hoists each method namespace (m0, m1, ...) so the
        # packed entries carry no per-entry xmlns declarations.
        assert (
            '<spi:Parallel_Method xmlns:spi="urn:spi:soap-passing-interface"'
            ' xmlns:m0="urn:w">'
        ) in text
        assert text.count("GetWeather") == 4  # 2 open + 2 close tags
        assert '<m0:GetWeather requestID="r0">' in text
        assert '<m0:GetWeather requestID="r1">' in text
        assert text.count('xmlns:m0="urn:w"') == 1
        # Parallel_Method is the only direct Body child
        body_inner = text.split("<SOAP-ENV:Body>")[1].split("</SOAP-ENV:Body>")[0]
        assert body_inner.startswith("<spi:Parallel_Method")
        assert body_inner.endswith("</spi:Parallel_Method>")

    def test_envelope_bytes_are_utf8_without_bom(self):
        envelope = build_request_envelope("urn:svc", "echo", {"payload": "北京"})
        data = envelope.to_bytes()
        assert not data.startswith(b"\xef\xbb\xbf")
        assert "北京".encode("utf-8") in data

    def test_serialization_is_stable_across_calls(self):
        envelope = build_request_envelope("urn:svc", "op", {"a": "1", "b": "2"})
        assert envelope.to_string() == envelope.to_string()


class TestHttpBinding:
    def test_request_headers(self):
        from repro.soap.message import SoapMessage

        envelope = build_request_envelope("urn:svc", "echo", {"payload": "x"})
        message = SoapMessage(envelope, action="urn:svc#echo")
        headers = message.http_headers()
        assert headers["Content-Type"] == "text/xml; charset=utf-8"
        assert headers["SOAPAction"] == '"urn:svc#echo"'

    def test_message_size_matches_bytes(self):
        from repro.soap.message import SoapMessage

        envelope = build_request_envelope("urn:svc", "echo", {"payload": "x" * 100})
        message = SoapMessage(envelope)
        assert message.size == len(message.to_bytes())
