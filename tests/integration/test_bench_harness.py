"""Tests for the bench workloads module (testbeds, invoker wiring)."""

import pytest

from repro.bench.workloads import (
    APPROACHES,
    build_transport,
    echo_calls,
    echo_testbed,
    make_invoker,
    run_point,
    secured_proxy,
)
from repro.errors import ReproError
from repro.transport.inproc import InProcTransport
from repro.transport.shaped import ShapedTransport
from repro.transport.tcp import TcpTransport


class TestBuildTransport:
    def test_inproc(self):
        assert isinstance(build_transport("inproc"), InProcTransport)

    def test_loopback(self):
        assert isinstance(build_transport("loopback"), TcpTransport)

    def test_lan_and_wan_are_shaped(self):
        lan = build_transport("lan")
        wan = build_transport("wan")
        assert isinstance(lan, ShapedTransport)
        assert isinstance(wan, ShapedTransport)
        assert wan.profile.rtt > lan.profile.rtt

    def test_unknown_profile_raises(self):
        with pytest.raises(ReproError, match="unknown transport profile"):
            build_transport("satellite")


class TestEchoTestbed:
    @pytest.mark.parametrize("architecture", ["common", "staged"])
    def test_deploys_and_serves(self, architecture):
        with echo_testbed(profile="inproc", architecture=architecture) as bed:
            assert bed.architecture == architecture
            results = run_point(bed, "no-optimization", 3, 10)
            assert len(results) == 3

    def test_unknown_architecture_raises(self):
        with pytest.raises(ReproError, match="unknown architecture"):
            with echo_testbed(profile="inproc", architecture="microservices"):
                pass

    def test_every_approach_runs(self):
        with echo_testbed(profile="inproc", architecture="staged", spi=True) as bed:
            for approach in APPROACHES:
                results = run_point(bed, approach, 4, 50)
                assert len(results) == 4
                assert all(len(r) == 50 for r in results)

    def test_unknown_approach_raises(self):
        with echo_testbed(profile="inproc") as bed:
            proxy = bed.make_proxy()
            with pytest.raises(ReproError, match="unknown approach"):
                make_invoker("teleport", proxy)
            proxy.close()


class TestEchoCalls:
    def test_shape(self):
        calls = echo_calls(5, 100)
        assert len(calls) == 5
        assert all(c.operation == "echo" for c in calls)
        assert all(len(c.params["payload"]) == 100 for c in calls)


class TestSecuredProxy:
    def test_header_attached_and_accepted(self):
        with echo_testbed(profile="inproc", architecture="staged", spi=True) as bed:
            proxy = secured_proxy(bed)
            try:
                # header is informational (no verifier installed); the
                # call must still succeed and carry the extra bytes
                assert proxy.call("echo", payload="x") == "x"
                assert len(proxy.extra_headers) == 1
                from repro.xmlcore.writer import serialize

                size = len(serialize(proxy.extra_headers[0]).encode())
                assert size > 2500  # full X.509-profile header
            finally:
                proxy.close()
