"""End-to-end resilience: deadlines, shedding and retry convergence.

Exercises the ISSUE's acceptance scenarios over real wire bytes:

* a short client deadline turns unfinished pack entries into retryable
  ``Server.Timeout`` faults instead of hanging the protocol thread;
* a saturated application stage sheds pack entries with per-entry
  ``Server.Busy`` faults while siblings still answer, and sheds whole
  one-way messages with HTTP 503;
* a ``CallPolicy`` retry budget converges through a chaos transport
  dropping requests, with retry/shed counters visible in the metrics
  registry and at ``GET /metrics``.

Every scenario runs on both protocol backends: the resilience ladder
is a contract of the server, not of one I/O discipline.  The threaded
backend keeps the in-process transport (byte-for-byte the historical
suite); the evented backend needs real sockets, so it runs on loopback
TCP.
"""

import json
import time

import pytest

from repro.apps.echo import ECHO_NS, ECHO_SERVICE, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.core.oneway import mark_one_way
from repro.errors import SoapFaultError
from repro.http.connection import HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs import Observability
from repro.resilience.policy import CallPolicy
from repro.server.handlers import HandlerChain
from repro.soap.serializer import build_request_envelope
from repro.transport.chaos import ChaosTransport
from repro.transport.inproc import InProcTransport
from repro.transport.tcp import TcpTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


@pytest.fixture(params=["threaded", "evented"])
def backend(request):
    """Both protocol backends must satisfy the same resilience ladder."""
    return request.param


def make_transport(backend):
    return InProcTransport() if backend == "threaded" else TcpTransport()


def bind_address(backend):
    return "resilience-e2e" if backend == "threaded" else ("127.0.0.1", 0)


def start_server(
    transport,
    backend,
    *,
    architecture="staged",
    app_workers=4,
    app_queue_limit=None,
    observability=None,
):
    server = build_server(ServerConfig(
        services=[make_echo_service()],
        architecture=architecture,
        backend=backend,
        transport=transport,
        address=bind_address(backend),
        chain=HandlerChain(spi_server_handlers()),
        app_workers=app_workers,
        app_queue_limit=app_queue_limit,
        observability=observability,
    ))
    address = server.start()
    return server, address


def make_proxy(transport, address, *, policy=None, tracer=None):
    return build_proxy(ClientConfig(
        transport,
        address,
        namespace=ECHO_NS,
        service_name=ECHO_SERVICE,
        policy=policy,
        tracer=tracer,
    ))


class TestDeadlineEnforcement:
    def test_staged_unfinished_entries_get_timeout_faults(self, backend):
        """Single worker + a 500ms op + a 250ms budget: the protocol
        thread answers at the deadline with per-entry timeout faults
        rather than waiting out the slow operation."""
        transport = make_transport(backend)
        obs = Observability()
        server, address = start_server(
            transport, backend, app_workers=1, observability=obs
        )
        try:
            proxy = make_proxy(transport, address)
            started = time.monotonic()
            batch = PackBatch(proxy, policy=CallPolicy(timeout=0.25))
            slow = batch.call("delayedEcho", payload="slow", delay_ms=500)
            fast = [batch.call("echo", payload=f"q{i}") for i in range(3)]
            batch.flush()
            elapsed = time.monotonic() - started

            assert elapsed < 2.0  # answered near the deadline, not after 500ms+
            for future in [slow, *fast]:
                assert future.done()
            error = slow.exception(timeout=5)
            assert isinstance(error, SoapFaultError)
            assert error.faultcode == "Server.Timeout"
            assert error.is_retryable()
            assert obs.registry.counter("resilience.deadline_expired").value >= 1
            proxy.close()
        finally:
            server.stop()

    def test_common_arch_skips_entries_past_the_deadline(self, backend):
        """Sequential execution (Fig. 1): the first entry eats the whole
        budget, so later entries are skipped with Server.Timeout — they
        never execute."""
        transport = make_transport(backend)
        server, address = start_server(transport, backend, architecture="common")
        try:
            proxy = make_proxy(transport, address)
            batch = PackBatch(proxy, policy=CallPolicy(timeout=0.2))
            first = batch.call("delayedEcho", payload="hog", delay_ms=300)
            second = batch.call("echo", payload="late-a")
            third = batch.call("echo", payload="late-b")
            batch.flush()

            # the hog started inside the budget, so it completes...
            assert first.result(timeout=5) == "hog"
            # ...but its siblings found the deadline already expired
            for future in (second, third):
                error = future.exception(timeout=5)
                assert isinstance(error, SoapFaultError)
                assert error.faultcode == "Server.Timeout"
                assert error.is_retryable()
            proxy.close()
        finally:
            server.stop()


class TestLoadShedding:
    def test_saturated_stage_sheds_entries_but_siblings_answer(self, backend):
        transport = make_transport(backend)
        obs = Observability()
        server, address = start_server(
            transport, backend, app_workers=1, app_queue_limit=1,
            observability=obs,
        )
        try:
            proxy = make_proxy(transport, address)
            batch = PackBatch(proxy)
            futures = [
                batch.call("delayedEcho", payload=f"p{i}", delay_ms=150)
                for i in range(6)
            ]
            batch.flush()

            outcomes = [f.exception(timeout=10) for f in futures]
            busy = [e for e in outcomes if e is not None]
            served = [f for f, e in zip(futures, outcomes) if e is None]
            # one entry on the worker, one in the queue, the rest shed
            assert len(busy) >= 4
            assert served  # partial success: at least one sibling answered
            for error in busy:
                assert isinstance(error, SoapFaultError)
                assert error.faultcode == "Server.Busy"
                assert error.is_retryable()
            for future in served:
                assert future.result(timeout=10).startswith("p")
            assert obs.registry.counter("resilience.shed").value >= 4
            assert obs.registry.counter("stage.application.rejected").value >= 4
            proxy.close()
        finally:
            server.stop()

    def test_oneway_shed_returns_http_503(self, backend):
        """A whole-message shed is visible at the HTTP layer: a one-way
        request against a saturated stage gets 503 + Server.Busy."""
        transport = make_transport(backend)
        obs = Observability()
        server, address = start_server(
            transport, backend, app_workers=1, app_queue_limit=1,
            observability=obs,
        )
        try:
            proxy = make_proxy(transport, address)

            def prime(tag):
                # fire-and-forget casts occupy the worker without
                # holding a protocol thread
                batch = PackBatch(proxy)
                for i in range(2):
                    batch.cast("delayedEcho", payload=f"{tag}{i}", delay_ms=800)
                batch.flush()

            prime("a")  # the worker picks one of these up...
            time.sleep(0.15)
            prime("b")  # ...so these can only queue; the backlog is full
            time.sleep(0.05)

            envelope = build_request_envelope(
                ECHO_NS, "echo", {"payload": "shed me"}
            )
            mark_one_way(envelope.body_entries[0])
            with HttpConnection(transport, address) as conn:
                response = conn.request(
                    HttpRequest(
                        "POST",
                        proxy.path,
                        Headers({"Host": "t", "SOAPAction": '"echo"'}),
                        envelope.to_bytes(),
                    )
                )
            assert response.status == 503
            assert b"Server.Busy" in response.body
            proxy.close()
        finally:
            server.stop()

    def test_shed_counters_visible_at_metrics_endpoint(self, backend):
        transport = make_transport(backend)
        obs = Observability()
        server, address = start_server(
            transport, backend, app_workers=1, app_queue_limit=1,
            observability=obs,
        )
        try:
            proxy = make_proxy(transport, address)
            batch = PackBatch(proxy)
            for i in range(6):
                batch.call("delayedEcho", payload=f"m{i}", delay_ms=100)
            batch.flush()
            with HttpConnection(transport, address) as conn:
                response = conn.request(
                    HttpRequest("GET", "/metrics", Headers({"Host": "t"}))
                )
            assert response.status == 200
            counters = json.loads(response.body)["counters"]
            assert counters.get("resilience.shed", 0) >= 1
            assert counters.get("stage.application.rejected", 0) >= 1
            proxy.close()
        finally:
            server.stop()


class TestRetryConvergence:
    def test_policy_converges_over_chaos_with_visible_counters(self, backend):
        """The ISSUE's acceptance scenario: CallPolicy(retries=...)
        against a transport dropping ~30% of requests converges, and the
        client's retry counter records the recoveries."""
        chaos = ChaosTransport(make_transport(backend), drop_rate=0.3, seed=2026)
        obs = Observability()
        client_obs = Observability()
        server, address = start_server(
            chaos.base, backend, app_workers=4, observability=obs
        )
        try:
            policy = CallPolicy(retries=4, backoff_base=0.001, backoff_max=0.005)
            proxy = make_proxy(chaos, address, policy=policy, tracer=client_obs.tracer)
            results = [proxy.call("echo", payload=f"c{i}") for i in range(12)]
            assert results == [f"c{i}" for i in range(12)]
            assert chaos.stats.dropped > 0
            assert proxy.retries >= chaos.stats.dropped
            assert (
                client_obs.registry.counter("client.retries").value
                == proxy.retries
            )
            proxy.close()
        finally:
            server.stop()

    def test_retries_also_absorb_real_server_sheds(self, backend):
        """Busy faults from a genuinely saturated stage are retryable:
        a packed batch retried under policy eventually lands everything."""
        transport = make_transport(backend)
        server, address = start_server(
            transport, backend, app_workers=1, app_queue_limit=1
        )
        try:
            proxy = make_proxy(transport, address)
            pending = {f"r{i}" for i in range(6)}
            for _ in range(12):  # bounded retry loop driven by the client
                batch = PackBatch(proxy)
                futures = {
                    payload: batch.call("delayedEcho", payload=payload, delay_ms=20)
                    for payload in sorted(pending)
                }
                batch.flush()
                for payload, future in futures.items():
                    if future.exception(timeout=10) is None:
                        pending.discard(payload)
                if not pending:
                    break
                time.sleep(0.05)
            assert not pending
            proxy.close()
        finally:
            server.stop()
