"""Full-stack integration over real TCP sockets (not in-proc queues).

Everything the unit tests verify over InProcTransport is re-exercised
here across the kernel's loopback: framing, keep-alive, concurrency,
packing, WSDL fetch.
"""

import threading

import pytest

from repro.apps.echo import ECHO_NS, make_echo_payload, make_echo_service
from repro.client.invoker import Call, SerialInvoker, ThreadedInvoker
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch, PackedInvoker
from repro.core.dispatcher import spi_server_handlers
from repro.server.handlers import HandlerChain
from repro.transport.tcp import TcpTransport
from repro.resilience.policy import CallPolicy
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


@pytest.fixture(scope="module")
def tcp_env():
    transport = TcpTransport()
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address=("127.0.0.1", 0), chain=HandlerChain(spi_server_handlers())))
    address = server.start()
    yield transport, address, server
    server.stop()


def make_proxy(tcp_env, **kwargs):
    transport, address, _ = tcp_env
    return build_proxy(ClientConfig(
        transport, address, namespace=ECHO_NS, service_name="EchoService", **kwargs
    ))


class TestOverRealSockets:
    def test_single_call(self, tcp_env):
        proxy = make_proxy(tcp_env)
        assert proxy.call("echo", payload="over tcp") == "over tcp"

    def test_large_payload_round_trip(self, tcp_env):
        payload = make_echo_payload(500_000)
        proxy = make_proxy(tcp_env)
        assert proxy.call("echo", payload=payload) == payload

    def test_unicode_payload(self, tcp_env):
        proxy = make_proxy(tcp_env)
        text = "北京 → Edinburgh ✈ café"
        assert proxy.call("echo", payload=text) == text

    def test_packed_batch(self, tcp_env):
        proxy = make_proxy(tcp_env)
        with PackBatch(proxy) as batch:
            futures = [batch.call("echo", payload=f"tcp-{i}") for i in range(16)]
        assert [f.result(timeout=10) for f in futures] == [f"tcp-{i}" for i in range(16)]

    def test_all_three_strategies_agree(self, tcp_env):
        calls = Call.many("echo", [{"payload": f"p{i}"} for i in range(10)])
        expected = [f"p{i}" for i in range(10)]
        for invoker_cls in (SerialInvoker, ThreadedInvoker, PackedInvoker):
            proxy = make_proxy(tcp_env)
            try:
                assert invoker_cls(proxy).invoke_all(calls, CallPolicy(timeout=30)) == expected
            finally:
                proxy.close()

    def test_concurrent_packed_clients(self, tcp_env):
        results = {}
        lock = threading.Lock()

        def client(i):
            proxy = make_proxy(tcp_env)
            try:
                with PackBatch(proxy) as batch:
                    futures = [batch.call("echo", payload=f"c{i}-{j}") for j in range(4)]
                with lock:
                    results[i] = [f.result(timeout=10) for f in futures]
            finally:
                proxy.close()

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert results == {
            i: [f"c{i}-{j}" for j in range(4)] for i in range(6)
        }

    def test_wsdl_over_http(self, tcp_env):
        proxy = make_proxy(tcp_env)
        document = proxy.fetch_wsdl()
        assert "EchoService" in document
        checked = ServiceProxy.from_wsdl(
            document, tcp_env[0], tcp_env[1]
        )
        assert checked.call("echoLength", payload="four") == 4

    def test_keepalive_over_tcp(self, tcp_env):
        transport, address, server = tcp_env
        before = server.http.connections_accepted
        proxy = make_proxy(tcp_env, reuse_connections=True)
        for i in range(5):
            proxy.call("echo", payload=str(i))
        proxy.close()
        assert server.http.connections_accepted - before == 1
