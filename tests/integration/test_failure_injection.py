"""Failure injection: the stack under broken peers and mid-flight death.

Covers the failure modes a production SOAP deployment actually sees:
connection refused, server stopped between exchanges, garbage on the
wire in both directions, truncated messages, and oversized heads.
"""

import threading

import pytest

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.errors import HttpError, ReproError, TransportError
from repro.http.connection import HttpConnection
from repro.http.message import HttpRequest
from repro.server.handlers import HandlerChain
from repro.soap.constants import SOAP_CONTENT_TYPE
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


def make_server(transport, address):
    return build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address=address, chain=HandlerChain(spi_server_handlers())))


class TestConnectionFailures:
    def test_connect_refused_surfaces_as_transport_error(self):
        transport = InProcTransport()
        proxy = build_proxy(ClientConfig(transport, "nobody-home", namespace=ECHO_NS))
        with pytest.raises(TransportError):
            proxy.call("echo", payload="x")

    def test_server_stopped_between_calls(self):
        transport = InProcTransport()
        server = make_server(transport, "short-lived")
        with server.running() as address:
            proxy = build_proxy(ClientConfig(transport, address, namespace=ECHO_NS))
            assert proxy.call("echo", payload="ok") == "ok"
        with pytest.raises(ReproError):
            proxy.call("echo", payload="too late")

    def test_batch_against_dead_server_fails_every_future(self):
        transport = InProcTransport()
        server = make_server(transport, "dead")
        with server.running() as address:
            proxy = build_proxy(ClientConfig(transport, address, namespace=ECHO_NS))
        batch = PackBatch(proxy)
        futures = [batch.call("echo", payload=str(i)) for i in range(3)]
        batch.flush()
        assert all(f.exception(timeout=1) is not None for f in futures)

    def test_client_disconnect_mid_request_does_not_kill_server(self):
        transport = InProcTransport()
        server = make_server(transport, "resilient")
        with server.running() as address:
            # half a request, then hang up
            channel = transport.connect(address)
            channel.sendall(b"POST /svc HTTP/1.1\r\nContent-Length: 999\r\n\r\npartial")
            channel.close()
            # server must still serve the next client
            proxy = build_proxy(ClientConfig(transport, address, namespace=ECHO_NS))
            assert proxy.call("echo", payload="alive") == "alive"


class TestWireGarbage:
    @pytest.fixture
    def env(self):
        transport = InProcTransport()
        server = make_server(transport, "garbage")
        with server.running() as address:
            yield transport, address

    def raw_exchange(self, transport, address, payload: bytes) -> bytes:
        channel = transport.connect(address)
        channel.sendall(payload)
        data = bytearray()
        while chunk := channel.recv():
            data.extend(chunk)
        channel.close()
        return bytes(data)

    def test_non_http_bytes_get_400(self, env):
        transport, address = env
        response = self.raw_exchange(transport, address, b"\x00\x01\x02 nonsense\r\n\r\n")
        assert b"400" in response.split(b"\r\n")[0]

    def test_http_but_not_xml_gets_soap_fault(self, env):
        transport, address = env
        body = b"this is not xml at all"
        request = (
            f"POST /svc HTTP/1.1\r\nContent-Type: {SOAP_CONTENT_TYPE}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode() + body
        response = self.raw_exchange(transport, address, request)
        assert b"400" in response.split(b"\r\n")[0]
        assert b"Fault" in response

    def test_xml_but_not_soap_gets_fault(self, env):
        transport, address = env
        body = b"<notsoap/>"
        request = (
            f"POST /svc HTTP/1.1\r\nContent-Type: {SOAP_CONTENT_TYPE}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode() + body
        response = self.raw_exchange(transport, address, request)
        assert b"Fault" in response

    def test_oversized_header_rejected(self, env):
        transport, address = env
        request = b"POST / HTTP/1.1\r\nX-Huge: " + b"a" * 200_000 + b"\r\n\r\n"
        response = self.raw_exchange(transport, address, request)
        assert b"413" in response.split(b"\r\n")[0]

    def test_server_recovers_after_each_garbage_client(self, env):
        transport, address = env
        for payload in (b"junk\r\n\r\n", b"GET\r\n\r\n", b"POST / HTTP/9.9\r\n\r\n"):
            self.raw_exchange(transport, address, payload)
        proxy = build_proxy(ClientConfig(transport, address, namespace=ECHO_NS))
        assert proxy.call("echo", payload="fine") == "fine"


class TestBrokenResponses:
    """Client behaviour when the *server* replies with garbage."""

    def serve_once(self, transport, address, response_bytes: bytes):
        listener = transport.listen(address)

        def run():
            channel = listener.accept(timeout=5)
            # drain the request head
            channel.recv()
            channel.sendall(response_bytes)
            channel.close()
            listener.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread

    def test_truncated_response_raises(self):
        transport = InProcTransport()
        thread = self.serve_once(
            transport, "liar", b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
        )
        connection = HttpConnection(transport, "liar")
        with pytest.raises(HttpError, match="mid-body"):
            connection.request(HttpRequest("POST", "/", body=b"x"))
        thread.join(timeout=5)

    def test_non_http_response_raises(self):
        transport = InProcTransport()
        thread = self.serve_once(transport, "noise", b"garbage not http\r\n\r\n")
        connection = HttpConnection(transport, "noise")
        with pytest.raises(HttpError):
            connection.request(HttpRequest("POST", "/", body=b"x"))
        thread.join(timeout=5)

    def test_http_ok_but_broken_soap_fails_batch_futures(self):
        transport = InProcTransport()
        body = b"<bad"
        response = (
            f"HTTP/1.1 200 OK\r\nContent-Type: {SOAP_CONTENT_TYPE}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode() + body
        thread = self.serve_once(transport, "brokensoap", response)
        proxy = build_proxy(ClientConfig(transport, "brokensoap", namespace=ECHO_NS))
        batch = PackBatch(proxy)
        future = batch.call("echo", payload="x")
        batch.flush()
        assert future.exception(timeout=5) is not None
        thread.join(timeout=5)
