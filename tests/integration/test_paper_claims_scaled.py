"""Scaled-down versions of the paper's evaluation claims for the test
suite (the full-size assertions run under ``pytest benchmarks/``).

Uses the in-proc transport shaped indirectly via message/connection
*counters* rather than wall time where possible, so the tests stay fast
and deterministic on any machine.
"""

import statistics
import time

import pytest

from repro.apps.travel import TravelAgent, deploy_travel_system
from repro.bench.workloads import echo_testbed, run_point


@pytest.fixture(scope="module")
def lan_beds():
    with echo_testbed(profile="lan", architecture="common", spi=False) as common:
        with echo_testbed(profile="lan", architecture="staged", spi=True) as staged:
            yield common, staged


def timed(bed, approach, m, n, repeats=3):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_point(bed, approach, m, n)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


class TestLatencyShape:
    def test_packing_beats_serial_at_m16_small_payload(self, lan_beds):
        common, staged = lan_beds
        serial = timed(common, "no-optimization", 16, 10)
        packed = timed(staged, "our-approach", 16, 10)
        assert packed < serial / 2, f"{serial*1e3:.1f}ms vs {packed*1e3:.1f}ms"

    def test_packing_beats_threads_at_m16_small_payload(self, lan_beds):
        common, staged = lan_beds
        threaded = timed(common, "multiple-threads", 16, 10)
        packed = timed(staged, "our-approach", 16, 10)
        assert packed < threaded

    def test_packing_loses_to_threads_at_100kb(self, lan_beds):
        common, staged = lan_beds
        threaded = timed(common, "multiple-threads", 4, 100_000, repeats=2)
        packed = timed(staged, "our-approach", 4, 100_000, repeats=2)
        assert threaded < packed

    def test_message_reduction_m_to_one(self, lan_beds):
        _, staged = lan_beds
        server = staged.server
        before_msgs = server.endpoint.stats.soap_messages
        before_conns = server.http.connections_accepted
        run_point(staged, "our-approach", 16, 10)
        assert server.endpoint.stats.soap_messages - before_msgs == 1
        assert server.http.connections_accepted - before_conns == 1

    def test_serial_pays_m_messages_and_connections(self, lan_beds):
        common, _ = lan_beds
        server = common.server
        before_msgs = server.endpoint.stats.soap_messages
        before_conns = server.http.connections_accepted
        run_point(common, "no-optimization", 8, 10)
        assert server.endpoint.stats.soap_messages - before_msgs == 8
        assert server.http.connections_accepted - before_conns == 8

    def test_results_identical_across_strategies(self, lan_beds):
        common, staged = lan_beds
        expected = run_point(common, "no-optimization", 6, 100)
        assert run_point(common, "multiple-threads", 6, 100) == expected
        assert run_point(staged, "our-approach", 6, 100) == expected


class TestTravelAgentScaled:
    def test_packed_faster_and_fewer_messages(self):
        from repro.bench.workloads import build_transport

        with deploy_travel_system(
            transport_factory=lambda: build_transport("lan")
        ) as (system, transport):
            plain = TravelAgent(
                transport, system.airline_address, system.hotel_address,
                system.credit_address,
            )
            packed = TravelAgent(
                transport, system.airline_address, system.hotel_address,
                system.credit_address, use_packing=True,
            )

            def run(agent, repeats=4):
                samples = []
                for _ in range(repeats):
                    start = time.perf_counter()
                    itinerary = agent.book_vacation("PEK", "SHA")
                    samples.append(time.perf_counter() - start)
                return statistics.median(samples), itinerary

            t_plain, it_plain = run(plain)
            t_packed, it_packed = run(packed)
            plain.close()
            packed.close()

        assert it_plain.soap_messages == 11
        assert it_packed.soap_messages == 7
        improvement = (t_plain - t_packed) / t_plain
        # paper: ~26%; accept a generous band for CI noise
        assert improvement > 0.10, f"only {improvement:.0%}"
