"""Soak test: sustained mixed load against one staged server.

Eight client threads hammer the server with a mixture of plain calls,
packed batches, WSDL fetches and deliberately faulting requests, then
the test cross-checks every counter in the stack for consistency.
"""

import random
import threading

import pytest

from repro.apps.echo import ECHO_NS, make_echo_service
from repro.client.proxy import ServiceProxy
from repro.core.batch import PackBatch
from repro.core.dispatcher import spi_server_handlers
from repro.diagnostics import PackMetricsHandler
from repro.errors import SoapFaultError
from repro.server.handlers import HandlerChain
from repro.transport.inproc import InProcTransport
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy

CLIENTS = 8
ITERATIONS = 12


@pytest.fixture(scope="module")
def soak_env():
    transport = InProcTransport()
    metrics = PackMetricsHandler()
    server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="soak", chain=HandlerChain([metrics, *spi_server_handlers()]), app_workers=8))
    with server.running() as address:
        yield transport, address, server, metrics


def test_soak_mixed_load(soak_env):
    transport, address, server, metrics = soak_env
    errors: list[str] = []
    counters = {"plain": 0, "packed_msgs": 0, "packed_calls": 0, "faults": 0, "wsdl": 0}
    lock = threading.Lock()

    def client(seed: int) -> None:
        rng = random.Random(seed)
        proxy = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService",
            reuse_connections=True,
        ))
        try:
            for i in range(ITERATIONS):
                choice = rng.random()
                if choice < 0.4:
                    payload = f"{seed}-{i}"
                    if proxy.call("echo", payload=payload) != payload:
                        errors.append(f"plain echo mismatch for {payload}")
                    with lock:
                        counters["plain"] += 1
                elif choice < 0.75:
                    size = rng.randint(2, 6)
                    batch = PackBatch(proxy)
                    futures = [
                        batch.call("echo", payload=f"{seed}-{i}-{j}")
                        for j in range(size)
                    ]
                    batch.flush()
                    for j, future in enumerate(futures):
                        if future.result(timeout=30) != f"{seed}-{i}-{j}":
                            errors.append(f"packed mismatch {seed}-{i}-{j}")
                    with lock:
                        counters["packed_msgs"] += 1
                        counters["packed_calls"] += size
                elif choice < 0.9:
                    try:
                        proxy.call("definitelyNotAnOperation")
                        errors.append("expected fault did not occur")
                    except SoapFaultError:
                        pass
                    with lock:
                        counters["faults"] += 1
                else:
                    if "EchoService" not in proxy.fetch_wsdl():
                        errors.append("wsdl fetch broken")
                    with lock:
                        counters["wsdl"] += 1
        finally:
            proxy.close()

    threads = [threading.Thread(target=client, args=(seed,)) for seed in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "soak clients hung"
    assert errors == []

    # cross-check the stack's own accounting against the client's
    stats = server.stats()
    expected_messages = counters["plain"] + counters["packed_msgs"] + counters["faults"]
    assert stats["endpoint"]["soap_messages"] == expected_messages
    assert stats["endpoint"]["wsdl_requests"] == counters["wsdl"]
    expected_entries = (
        counters["plain"] + counters["packed_calls"] + counters["faults"]
    )
    assert stats["container"]["entries_executed"] == expected_entries
    assert stats["container"]["faults"] == counters["faults"]
    snap = metrics.snapshot()
    assert snap["packed_messages"] == counters["packed_msgs"]
    assert snap["plain_messages"] == counters["plain"] + counters["faults"]
    # every packed message fanned out through the application stage
    assert stats["app_stage"]["events"] == counters["packed_calls"]


class TestLargeBatchBoundaries:
    """Batches near the pack-size limit through the full stack."""

    def test_512_entry_batch(self, soak_env):
        transport, address, server, _ = soak_env
        from repro.core.batch import PackBatch

        proxy = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService"
        ))
        try:
            batch = PackBatch(proxy)
            futures = [batch.call("echo", payload=str(i)) for i in range(512)]
            batch.flush()
            for i, future in enumerate(futures):
                assert future.result(timeout=120) == str(i)
        finally:
            proxy.close()

    def test_oversized_batch_rejected_client_side(self, soak_env):
        transport, address, _, _ = soak_env
        from repro.core.batch import PackBatch
        from repro.core.packformat import MAX_PACKED_REQUESTS
        from repro.errors import PackError

        proxy = build_proxy(ClientConfig(
            transport, address, namespace=ECHO_NS, service_name="EchoService"
        ))
        try:
            batch = PackBatch(proxy)
            futures = [
                batch.call("echo", payload="x")
                for _ in range(MAX_PACKED_REQUESTS + 1)
            ]
            batch.flush()
            # assembly fails before anything is sent; every future fails
            assert all(
                isinstance(f.exception(timeout=10), PackError) for f in futures
            )
        finally:
            proxy.close()
