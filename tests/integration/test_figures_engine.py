"""Tests for the figure-regeneration engine itself (tiny sweeps, inproc).

These guarantee `python -m repro.bench` produces complete, well-formed
results without relying on timing assertions (those live in
benchmarks/).
"""

import pytest

from repro.bench.figures import (
    arch_ablation,
    latency_figure,
    relatedwork_ablation,
    travel_agent_experiment,
    wssecurity_ablation,
)


class TestLatencyFigureEngine:
    @pytest.fixture(scope="class")
    def figure(self):
        return latency_figure(
            "Figure T", 10, profile="inproc", m_values=[1, 2], repeats=1
        )

    def test_all_series_present(self, figure):
        assert set(figure.series) == {
            "no-optimization",
            "multiple-threads",
            "our-approach",
        }

    def test_all_points_present(self, figure):
        for series in figure.series.values():
            assert set(series.points) == {1, 2}

    def test_times_positive(self, figure):
        for series in figure.series.values():
            for measurement in series.points.values():
                assert measurement.median_ms > 0

    def test_table_renders(self, figure):
        table = figure.to_table()
        assert "Figure T" in table
        assert "our-approach" in table

    def test_markdown_renders(self, figure):
        assert "| M |" in figure.to_markdown()

    def test_speedup_at(self, figure):
        value = figure.speedup_at(2, baseline="no-optimization", candidate="our-approach")
        assert value > 0

    def test_notes_record_profile(self, figure):
        assert any("inproc" in note for note in figure.notes)


class TestScalarEngines:
    def test_travel_agent_engine(self):
        result = travel_agent_experiment(profile="inproc", repeats=2)
        labels = [label for label, _ in result.rows]
        assert any("without" in label for label in labels)
        assert any("improvement" in label for label in labels)
        assert len(result.rows) == 3

    def test_wssecurity_engine(self):
        result = wssecurity_ablation(profile="inproc", m=4, payload=10, repeats=1)
        assert len(result.rows) == 2
        assert all(value > 0 for _, value in result.rows)

    def test_arch_ablation_engine(self):
        result = arch_ablation(profile="inproc", m=4, delay_ms=1, repeats=1)
        values = dict(result.rows)
        assert "packed on common architecture" in values
        assert "packed on staged architecture" in values

    def test_relatedwork_engine(self):
        result = relatedwork_ablation(iterations=10)
        values = dict(result.rows)
        assert values["differential serialization"] < values["full serialization"]
