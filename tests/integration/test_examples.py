"""Every shipped example must run clean as a subprocess.

Keeps `examples/` from rotting: each script is executed exactly as the
README tells users to run it, and its key output lines are asserted.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXPECTATIONS = {
    "quickstart.py": ["Hello, world!", "packed add: 42", "SOAP messages"],
    "weather_pack.py": ["Parallel_Method", "Beijing", "Shanghai"],
    "travel_agent.py": ["improvement", "7 SOAP messages"],
    "autopack_demo.py": ["mean batch size", "thread 7"],
    "wssecurity_overhead.py": ["bytes on the wire", "speedup"],
    "remote_execution.py": ["authorization", "server SOAP messages: 1"],
    "secure_services.py": ["rejected", "verified"],
    "grid_monitor.py": ["packed (SPI)", "12 done"],
}


def test_every_example_has_expectations():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTATIONS), (
        "examples/ and EXPECTATIONS drifted apart — add assertions for "
        f"new examples: {sorted(on_disk ^ set(EXPECTATIONS))}"
    )


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    for needle in EXPECTATIONS[name]:
        assert needle in result.stdout, (
            f"{name}: expected {needle!r} in output:\n{result.stdout[-2000:]}"
        )
