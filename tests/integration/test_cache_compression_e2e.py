"""End-to-end tests for the PR-6 stack: template cache + client
response cache + negotiated compression, composed with SPI packs,
keep-alive, retries and chaos.

The load-bearing guarantees:

* with every PR-6 feature on, answers are still correct and the
  counters (``cache.sercache.*``, ``cache.client.*``, ``compress.*``)
  move;
* a retrying call never satisfies itself from a cached body — the
  cache consult sits *outside* the retry loop, so every retry attempt
  goes to the wire;
* invalidation is absolute: after ``invalidate()`` the next call hits
  the wire even if an identical response was cached moments before;
* fault responses are never cached, and a ``cast`` (one-way, side
  effects) poisons a batch's cacheability.
"""

from repro.apps.echo import make_echo_service
from repro.client.cache import CachePolicy, ResponseCache
from repro.core.batch import PackBatch, PackedInvoker
from repro.core.dispatcher import spi_server_handlers
from repro.client.invoker import Call
from repro.http.compression import CompressionPolicy
from repro.obs import Observability
from repro.resilience.policy import CallPolicy
from repro.server.handlers import HandlerChain
from repro.soap.sercache import ResponseTemplateCache
from repro.transport.chaos import ChaosTransport
from repro.transport.inproc import InProcTransport

from repro.bench.workloads import echo_testbed
from repro.server import ServerConfig, build_server
from repro.client.config import ClientConfig, build_proxy


def full_stack_testbed(observability):
    return echo_testbed(
        profile="inproc",
        architecture="staged",
        observability=observability,
        serialization_cache=ResponseTemplateCache(
            registry=observability.registry
        ),
        compression=CompressionPolicy(min_size=64),
    )


class TestFullStack:
    def test_packed_calls_with_everything_on(self):
        obs = Observability()
        with full_stack_testbed(obs) as bed:
            cache = ResponseCache(
                CachePolicy(ttl=None), registry=obs.registry
            )
            proxy = bed.make_proxy(
                reuse_connections=True,
                response_cache=cache,
                accept_encoding="gzip, deflate",
                request_compression=CompressionPolicy(min_size=64),
            )
            invoker = PackedInvoker(proxy)
            calls = Call.many(
                "echo", [{"payload": f"payload-{i}" * 20} for i in range(4)]
            )
            first = invoker.invoke_all(calls)
            second = invoker.invoke_all(calls)
            proxy.close()
        assert first == second == [f"payload-{i}" * 20 for i in range(4)]
        registry = obs.registry
        assert registry.counter("cache.sercache.miss").value >= 1
        assert registry.counter("cache.client.miss").value == 1
        assert registry.counter("cache.client.hit").value == 1
        assert registry.counter("compress.responses").value >= 1
        assert registry.counter("compress.bytes_saved").value > 0

    def test_mutating_payloads_stay_correct_under_compression(self):
        obs = Observability()
        with full_stack_testbed(obs) as bed:
            proxy = bed.make_proxy(
                accept_encoding="gzip",
                request_compression=CompressionPolicy(),
            )
            for i in range(3):
                payload = f"<&special> round {i} " * 50
                assert proxy.call("echo", payload=payload) == payload
            proxy.close()


class TestRetryInterplay:
    def test_retries_go_to_the_wire_not_the_cache(self):
        """A request dropped by chaos must be answered by a retry's
        fresh wire exchange; the cache only serves *before* the retry
        loop starts, never mid-loop."""
        obs = Observability()
        transport = ChaosTransport(InProcTransport(), drop_rate=0.5, seed=7)
        server = build_server(ServerConfig(services=[make_echo_service()], architecture="staged", transport=transport, address="cache-chaos", chain=HandlerChain(spi_server_handlers()), serialization_cache=ResponseTemplateCache(), observability=obs))
        address = server.start()
        try:
            cache = ResponseCache(CachePolicy(ttl=None), registry=obs.registry)
            from repro.apps.echo import ECHO_NS, ECHO_SERVICE
            from repro.client.proxy import ServiceProxy

            proxy = build_proxy(ClientConfig(
                transport,
                address,
                namespace=ECHO_NS,
                service_name=ECHO_SERVICE,
                response_cache=cache,
            ))
            policy = CallPolicy(timeout=30, retries=6, backoff_base=0.001)
            results = [
                proxy.call_with_policy("echo", policy, payload=f"p{i}")
                for i in range(6)
            ]
            proxy.close()
        finally:
            server.stop()
        assert results == [f"p{i}" for i in range(6)]
        # every distinct call was a cache miss resolved on the wire
        assert cache.stats().misses == 6
        assert cache.stats().hits == 0

    def test_invalidation_forces_next_call_to_the_wire(self):
        obs = Observability()
        with full_stack_testbed(obs) as bed:
            cache = ResponseCache(CachePolicy(ttl=None))
            proxy = bed.make_proxy(response_cache=cache)
            assert proxy.call("echo", payload="v") == "v"
            assert proxy.call("echo", payload="v") == "v"
            assert cache.stats().hits == 1
            cache.invalidate()
            assert proxy.call("echo", payload="v") == "v"
            assert cache.stats().misses == 2
            proxy.close()


class TestCacheScope:
    def test_fault_responses_are_not_cached(self):
        obs = Observability()
        with full_stack_testbed(obs) as bed:
            cache = ResponseCache(CachePolicy(ttl=None))
            proxy = bed.make_proxy(response_cache=cache)
            from repro.errors import SoapFaultError

            for _ in range(2):
                try:
                    proxy.call("noSuchOperation", x="1")
                except SoapFaultError:
                    pass
            assert len(cache) == 0
            assert cache.stats().hits == 0
            proxy.close()

    def test_cast_poisons_pack_cacheability(self):
        obs = Observability()
        with full_stack_testbed(obs) as bed:
            cache = ResponseCache(CachePolicy(ttl=None))
            proxy = bed.make_proxy(response_cache=cache)
            for _ in range(2):
                batch = PackBatch(proxy)
                value = batch.call("echo", payload="keep")
                batch.cast("echo", payload="fire-and-forget")
                batch.flush()
                assert value.result() == "keep"
            # both flushes hit the wire: nothing cached, nothing served
            assert len(cache) == 0
            assert cache.stats().hits == 0
            proxy.close()

    def test_identical_packs_are_served_from_cache(self):
        obs = Observability()
        with full_stack_testbed(obs) as bed:
            cache = ResponseCache(CachePolicy(ttl=None))
            proxy = bed.make_proxy(response_cache=cache)
            for _ in range(3):
                batch = PackBatch(proxy)
                futures = [batch.call("echo", payload=f"p{i}") for i in range(3)]
                batch.flush()
                assert [f.result() for f in futures] == ["p0", "p1", "p2"]
            assert cache.stats().misses == 1
            assert cache.stats().hits == 2
            proxy.close()
