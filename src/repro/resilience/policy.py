"""The one client-side resilience knob: :class:`CallPolicy`.

Before this module, timeout/retry behaviour was scattered as ad-hoc
kwargs across the three client entry points (``proxy.call`` had none,
``Invoker.invoke_all(timeout=...)`` only bounded the future wait, the
pack path hard-coded its own).  A :class:`CallPolicy` collapses all of
it into one immutable object consumed uniformly by
:meth:`~repro.client.proxy.ServiceProxy.call`, the invokers, and the
futures pack path:

* ``timeout`` — per-attempt budget (seconds);
* ``deadline`` — whole-call budget across *all* attempts, propagated to
  the server as a ``mustUnderstand="0"`` SOAP header so entries that
  would start after expiry are skipped with a ``Server.Timeout`` fault
  instead of executing (see :mod:`repro.resilience.deadline`);
* ``retries`` — how many times a *retryable* failure may be retried,
  with exponential backoff and full jitter between attempts;
* ``retryable_faultcodes`` — which SOAP faultcodes are safe to retry
  (defaults to the taxonomy codes that promise "the work did not run");
* ``hedging`` — a :class:`~repro.resilience.hedge.HedgePolicy` arming
  the tail-at-scale speculative second attempt (``False`` disables it;
  the legacy ``True`` is a deprecated alias for the default policy).

The retry loop itself is :func:`execute_with_policy`, deterministic
under an injected ``rng``/``sleep``/``clock`` so the chaos-transport
suite can test it without wall-clock time.
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import (
    HttpError,
    InvocationError,
    RETRYABLE_FAULTCODES,
    SoapFaultError,
    TransportError,
)
from repro.resilience.hedge import HedgePolicy

# Process-wide RNG for backoff jitter; tests inject their own seeded one.
_JITTER_RNG = random.Random()


class Deadline:
    """A monotonic expiry instant shared by client attempts and server
    entry execution.  ``None`` budget means "never expires"."""

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, budget_s: float | None, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._expires_at = None if budget_s is None else clock() + budget_s

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @property
    def bounded(self) -> bool:
        return self._expires_at is not None

    def remaining(self) -> float | None:
        """Seconds left (may be negative), or None when unbounded."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        """True once the budget is spent."""
        return self._expires_at is not None and self._clock() >= self._expires_at


@dataclass(frozen=True, slots=True)
class CallPolicy:
    """Immutable per-call resilience policy.

    The default policy is the seed behaviour: no timeout, no deadline,
    no retries — so callers that never pass one see no change.
    """

    timeout: float | None = None
    deadline: float | None = None
    retries: int = 0
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 1.0  # 1.0 = full jitter, 0.0 = deterministic delays
    retryable_faultcodes: frozenset[str] = field(default=RETRYABLE_FAULTCODES)
    retry_transport_errors: bool = True
    propagate_deadline: bool = True
    hedging: "HedgePolicy | bool" = False

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise InvocationError("CallPolicy.retries must be >= 0")
        if self.hedging is True:
            warnings.warn(
                "repro.resilience.CallPolicy(hedging=True) is deprecated; "
                "pass a HedgePolicy (hedging=HedgePolicy()) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "hedging", HedgePolicy())
        elif self.hedging is not False and not isinstance(self.hedging, HedgePolicy):
            raise InvocationError(
                "CallPolicy.hedging must be False or a HedgePolicy "
                f"(got {self.hedging!r})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvocationError("CallPolicy.jitter must be within [0, 1]")

    @property
    def hedge_policy(self) -> HedgePolicy | None:
        """The armed :class:`HedgePolicy`, or None when hedging is off."""
        return self.hedging if isinstance(self.hedging, HedgePolicy) else None

    # -- derived helpers ---------------------------------------------------

    def start(self) -> Deadline:
        """The whole-call deadline clock for one invocation under this
        policy (unbounded when neither deadline nor timeout is set)."""
        if self.deadline is not None:
            return Deadline(self.deadline)
        if self.retries == 0 and self.timeout is not None:
            # single attempt: the per-attempt budget IS the call budget
            return Deadline(self.timeout)
        return Deadline.never()

    def attempt_budget(self, deadline: Deadline) -> float | None:
        """Seconds this attempt may spend: min(per-attempt timeout,
        remaining whole-call budget)."""
        remaining = deadline.remaining()
        if remaining is None:
            return self.timeout
        if self.timeout is None:
            return remaining
        return min(self.timeout, remaining)

    def is_retryable(self, error: BaseException) -> bool:
        """Whether spending retry budget on ``error`` is safe."""
        if isinstance(error, SoapFaultError):
            _, _, local = error.faultcode.rpartition(":")
            return local in self.retryable_faultcodes
        if isinstance(error, TransportError):
            return self.retry_transport_errors
        if isinstance(error, HttpError):
            # 503 without a parseable fault body is still a shed signal
            return error.status == 503
        return False

    def backoff_delay(self, retry_index: int, *, rng: random.Random | None = None) -> float:
        """Delay before retry number ``retry_index`` (0-based):
        exponential growth capped at ``backoff_max``, with full jitter
        (``delay * uniform(1-jitter, 1)``)."""
        delay = min(
            self.backoff_max,
            self.backoff_base * (self.backoff_multiplier ** retry_index),
        )
        if self.jitter:
            delay *= 1.0 - self.jitter * (rng or _JITTER_RNG).random()
        return delay

    def with_overrides(self, **changes: Any) -> "CallPolicy":
        """A copy with ``changes`` applied (policies are immutable)."""
        return replace(self, **changes)

    @classmethod
    def from_legacy_timeout(cls, timeout: float | None) -> "CallPolicy":
        """The shim target for pre-policy ``timeout=`` kwargs."""
        return cls(timeout=timeout)


#: The seed-equivalent policy: single attempt, unbounded, no retries.
DEFAULT_POLICY = CallPolicy()


@dataclass(slots=True)
class RetryState:
    """Per-invocation retry accounting, surfaced by the retry loop so
    callers (proxy stats, obs counters, tests) can see what happened."""

    attempts: int = 0
    retries: int = 0
    backoff_total_s: float = 0.0
    last_error: BaseException | None = None


def execute_with_policy(
    attempt: Callable[[Deadline], Any],
    policy: CallPolicy,
    *,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    state: RetryState | None = None,
) -> Any:
    """Run ``attempt`` under ``policy``'s retry state machine.

    ``attempt`` receives the whole-call :class:`Deadline` and must raise
    on failure.  Retryable failures (per :meth:`CallPolicy.is_retryable`)
    are retried up to ``policy.retries`` times with backoff, as long as
    the deadline has budget left; everything else — and the final
    exhausted failure — propagates to the caller unchanged.
    """
    state = state if state is not None else RetryState()
    deadline = policy.start()
    for retry_index in range(policy.retries + 1):
        state.attempts += 1
        try:
            return attempt(deadline)
        except BaseException as exc:
            state.last_error = exc
            if retry_index >= policy.retries or not policy.is_retryable(exc):
                raise
            delay = policy.backoff_delay(retry_index, rng=rng)
            remaining = deadline.remaining()
            if remaining is not None and delay >= remaining:
                # not enough budget to back off AND attempt again
                raise
            state.retries += 1
            state.backoff_total_s += delay
            if on_retry is not None:
                on_retry(retry_index, exc, delay)
            if delay > 0.0:
                sleep(delay)
    raise InvocationError("unreachable retry state")  # pragma: no cover
