"""Deadline propagation: the ``<res:Deadline>`` SOAP header.

The client computes how much whole-call budget remains just before a
send and writes it into the envelope as *relative* milliseconds::

    <res:Deadline xmlns:res="urn:repro:resilience" remainingMs="750"/>

Relative, not absolute, because client and server clocks are not
synchronized; the server rebases the budget onto its own monotonic
clock at parse time.  The header rides with ``mustUnderstand`` unset
(= false) so servers without the resilience layer keep accepting the
message untouched — exactly the trace-header contract.

Entries that would start executing after the rebased deadline are
skipped with a ``Server.Timeout`` fault in their response slot; in a
pack this yields partial success (sibling entries that made it in time
still return results).
"""

from __future__ import annotations

from repro.resilience.policy import Deadline
from repro.soap.envelope import Envelope
from repro.xmlcore.tree import Element

RESILIENCE_NS = "urn:repro:resilience"
DEADLINE_HEADER_TAG = f"{{{RESILIENCE_NS}}}Deadline"
REMAINING_MS_ATTR = "remainingMs"

# Budgets below one millisecond still propagate as 1 ms rather than 0:
# a zero would be indistinguishable from "header absent" on some peers.
_MIN_REMAINING_MS = 1


def deadline_header(remaining_s: float) -> Element:
    """Build the header element for ``remaining_s`` seconds of budget."""
    remaining_ms = max(_MIN_REMAINING_MS, int(remaining_s * 1000.0))
    return Element(
        DEADLINE_HEADER_TAG,
        {REMAINING_MS_ATTR: str(remaining_ms)},
        nsmap={"res": RESILIENCE_NS},
    )


def attach_deadline(envelope: Envelope, remaining_s: float) -> Element:
    """Attach (or refresh) the deadline header on ``envelope``.

    Refreshing matters on retries: the surviving budget shrinks between
    attempts and the header must say so.
    """
    header = envelope.find_header(DEADLINE_HEADER_TAG)
    if header is not None:
        remaining_ms = max(_MIN_REMAINING_MS, int(remaining_s * 1000.0))
        header.set(REMAINING_MS_ATTR, str(remaining_ms))
        return header
    header = deadline_header(remaining_s)
    envelope.add_header(header)
    return header


def extract_deadline(envelope: Envelope) -> Deadline | None:
    """The request's deadline rebased onto this process's monotonic
    clock, or None when the header is absent or malformed (a garbled
    budget must not fault an otherwise-valid request)."""
    header = envelope.find_header(DEADLINE_HEADER_TAG)
    if header is None:
        return None
    raw = header.get(REMAINING_MS_ATTR)
    try:
        remaining_ms = int(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None
    if remaining_ms < 0:
        remaining_ms = 0
    return Deadline(remaining_ms / 1000.0)
