"""Resilience layer: deadlines, retry policy, fault isolation plumbing.

One import gives a client everything it needs to make packed SOAP
calls degrade gracefully::

    from repro.resilience import CallPolicy

    proxy.call("echo", payload="x",
               policy=CallPolicy(deadline=0.5, retries=2))

Server-side counterparts (bounded stage queues with ``Server.Busy``
shedding, per-entry deadline skip with ``Server.Timeout`` faults) live
in :mod:`repro.server`; the deterministic fault-injection transport
that exercises all of it is :class:`repro.transport.chaos.ChaosTransport`.
"""

from repro.resilience.deadline import (
    DEADLINE_HEADER_TAG,
    REMAINING_MS_ATTR,
    RESILIENCE_NS,
    attach_deadline,
    deadline_header,
    extract_deadline,
)
from repro.resilience.hedge import HedgeBudget, HedgePolicy, hedge_trigger
from repro.resilience.limiter import AdaptiveLimiter
from repro.resilience.policy import (
    DEFAULT_POLICY,
    CallPolicy,
    Deadline,
    RetryState,
    execute_with_policy,
)

__all__ = [
    "AdaptiveLimiter",
    "CallPolicy",
    "DEADLINE_HEADER_TAG",
    "DEFAULT_POLICY",
    "Deadline",
    "HedgeBudget",
    "HedgePolicy",
    "REMAINING_MS_ATTR",
    "RESILIENCE_NS",
    "RetryState",
    "attach_deadline",
    "deadline_header",
    "execute_with_policy",
    "extract_deadline",
    "hedge_trigger",
]
