"""AIMD adaptive concurrency: the client-side half of overload control.

PR-8's server sheds with ``Server.Busy`` when its stages saturate; this
module closes the loop on the client so callers *stop offering load* a
melting server will only shed.  The mechanism is TCP's AIMD congestion
window transplanted onto in-flight calls:

* every success grows the limit additively (``+ additive / limit`` per
  call, i.e. +1 per round-trip's worth of calls, like one MSS per RTT);
* every shed signal (``Server.Busy`` fault, raw HTTP 503) halves it —
  at most once per ``cooldown_s`` of the *injected* clock, so one burst
  of sheds from a single congestion event does not collapse the window
  to the floor;
* callers that would exceed the limit are gated locally with a fast
  retryable fault instead of a wire round-trip, which the normal
  :class:`~repro.resilience.policy.CallPolicy` retry machinery then
  backs off and retries.

All state lives behind one lock; time only enters through the injected
``clock`` (enforced by the ``no-wallclock-in-hedge`` analysis rule), so
the seeded chaos convergence suite is deterministic.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

from repro.errors import InvocationError

#: Outcomes a caller reports back to :meth:`AdaptiveLimiter.release`.
OUTCOME_SUCCESS = "success"
OUTCOME_OVERLOAD = "overload"
OUTCOME_ERROR = "error"


class AdaptiveLimiter:
    """Per-target AIMD concurrency window.

    ``try_acquire`` admits a call while fewer than ``floor(limit)``
    calls are in flight; ``release(outcome)`` returns the slot and
    adjusts the window.  Non-overload errors (transport faults, fatal
    SOAP faults) are neutral: they neither grow nor shrink the window.
    """

    __slots__ = (
        "_lock",
        "_clock",
        "_limit",
        "_min_limit",
        "_max_limit",
        "_additive",
        "_decrease",
        "_cooldown_s",
        "_last_decrease_at",
        "_in_flight",
        "_gated",
        "_successes",
        "_overloads",
        "_decreases",
    )

    def __init__(
        self,
        *,
        initial: float = 8.0,
        min_limit: float = 1.0,
        max_limit: float = 256.0,
        additive: float = 1.0,
        decrease: float = 0.5,
        cooldown_s: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 1.0 <= min_limit <= initial <= max_limit:
            raise InvocationError(
                "AdaptiveLimiter requires 1 <= min_limit <= initial <= max_limit"
            )
        if additive <= 0.0:
            raise InvocationError("AdaptiveLimiter.additive must be > 0")
        if not 0.0 < decrease < 1.0:
            raise InvocationError("AdaptiveLimiter.decrease must be in (0, 1)")
        if cooldown_s < 0.0:
            raise InvocationError("AdaptiveLimiter.cooldown_s must be >= 0")
        self._lock = threading.Lock()
        self._clock = clock
        self._limit = float(initial)
        self._min_limit = float(min_limit)
        self._max_limit = float(max_limit)
        self._additive = additive
        self._decrease = decrease
        self._cooldown_s = cooldown_s
        self._last_decrease_at: float | None = None
        self._in_flight = 0
        self._gated = 0
        self._successes = 0
        self._overloads = 0
        self._decreases = 0

    def try_acquire(self) -> bool:
        """Admit one call, or gate it when the window is full."""
        with self._lock:
            if self._in_flight >= math.floor(self._limit):
                self._gated += 1
                return False
            self._in_flight += 1
            return True

    def release(self, outcome: str) -> None:
        """Return an admitted call's slot and adapt the window."""
        with self._lock:
            if self._in_flight <= 0:
                raise InvocationError("AdaptiveLimiter.release without acquire")
            self._in_flight -= 1
            if outcome == OUTCOME_SUCCESS:
                self._successes += 1
                self._limit = min(
                    self._max_limit, self._limit + self._additive / self._limit
                )
            elif outcome == OUTCOME_OVERLOAD:
                self._overloads += 1
                now = self._clock()
                if (
                    self._last_decrease_at is None
                    or now - self._last_decrease_at >= self._cooldown_s
                ):
                    self._limit = max(
                        self._min_limit, self._limit * self._decrease
                    )
                    self._decreases += 1
                    self._last_decrease_at = now
            elif outcome != OUTCOME_ERROR:
                raise InvocationError(
                    f"unknown limiter outcome {outcome!r}"
                )

    @property
    def limit(self) -> float:
        with self._lock:
            return self._limit

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def gated(self) -> int:
        """Calls rejected locally because the window was full."""
        with self._lock:
            return self._gated

    def snapshot(self) -> dict:
        """A consistent point-in-time view of the limiter's counters
        (limit, in-flight, gated, successes, overloads, decreases)."""
        with self._lock:
            return {
                "limit": self._limit,
                "in_flight": self._in_flight,
                "gated": self._gated,
                "successes": self._successes,
                "overloads": self._overloads,
                "decreases": self._decreases,
            }
