"""Hedged requests: the tail-at-scale speculative retry.

Dean & Barroso's observation is that the p99 of a fan-out is dominated
by stragglers, and that firing a *second* copy of a request once the
first has outlived the operation's own p95 cuts the tail while adding
only a few percent of extra load.  This module holds the pure policy
half of that idea:

* :class:`HedgePolicy` — when to hedge: the trigger quantile read from
  the live per-(service, operation) rollup, how many hedges per call
  (at most one), and the traffic budget;
* :class:`HedgeBudget` — a per-proxy token bucket measured in *calls*,
  so hedges stay at or below ``budget_rate`` of traffic no matter how
  slow the backend gets;
* :func:`hedge_trigger` — the decision function mapping (policy,
  rollup, attempt budget) to "fire the hedge after this many seconds",
  or ``None`` when hedging is not sensible yet.

The racing itself (threads, connection abandonment, first-response-
wins) lives in :mod:`repro.client.proxy`; keeping the decision logic
here means it is testable with a handful of floats and enforceable by
the ``no-wallclock-in-hedge`` analysis rule: nothing in this module
may read the wall clock or sleep — time only ever arrives as an
argument.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import InvocationError


@dataclass(frozen=True, slots=True)
class HedgePolicy:
    """When a proxy may fire a speculative second attempt.

    * ``quantile`` — the rollup latency quantile that arms the hedge:
      once the first attempt has been in flight longer than
      ``rollup.latency_quantile(quantile)``, the hedge fires;
    * ``max_hedges`` — hedges per logical attempt; the paper's sweet
      spot (and our cap) is one;
    * ``budget_rate`` — long-run hedge fraction of traffic (0.05 =
      hedges stay at or below 5% of calls);
    * ``budget_burst`` — bucket depth: how many hedges may fire
      back-to-back before the rate limit bites;
    * ``min_samples`` — rollup observations required before the
      quantile is trusted (a cold sketch would hedge everything);
    * ``min_trigger_s`` — floor under the trigger so a microsecond
      quantile cannot turn every call into a double send.
    """

    quantile: float = 0.95
    max_hedges: int = 1
    budget_rate: float = 0.05
    budget_burst: float = 4.0
    min_samples: int = 16
    min_trigger_s: float = 0.001

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise InvocationError("HedgePolicy.quantile must be within (0, 1)")
        if self.max_hedges not in (0, 1):
            raise InvocationError("HedgePolicy.max_hedges must be 0 or 1")
        if self.budget_rate <= 0.0:
            raise InvocationError("HedgePolicy.budget_rate must be > 0")
        if self.budget_burst < 1.0:
            raise InvocationError("HedgePolicy.budget_burst must be >= 1")
        if self.min_samples < 1:
            raise InvocationError("HedgePolicy.min_samples must be >= 1")
        if self.min_trigger_s < 0.0:
            raise InvocationError("HedgePolicy.min_trigger_s must be >= 0")


class HedgeBudget:
    """Token bucket keeping hedges a bounded fraction of traffic.

    Tokens are denominated in *calls*, not seconds: every hedge-eligible
    exchange deposits ``rate`` tokens (capped at ``burst``), and firing
    one hedge spends a whole token.  A long streak of slow calls can
    therefore hedge at most ``burst`` times up front and ``rate`` of
    the time thereafter — the tail-at-scale "≤5% extra load" invariant,
    with no clock involved.
    """

    __slots__ = ("_rate", "_burst", "_tokens", "_spent", "_denied", "_lock")

    def __init__(self, rate: float = 0.05, burst: float = 4.0) -> None:
        if rate <= 0.0:
            raise InvocationError("HedgeBudget rate must be > 0")
        if burst < 1.0:
            raise InvocationError("HedgeBudget burst must be >= 1")
        self._rate = rate
        self._burst = burst
        self._tokens = burst  # start full: the first slow call may hedge
        self._spent = 0
        self._denied = 0
        self._lock = threading.Lock()

    @classmethod
    def for_policy(cls, policy: HedgePolicy) -> "HedgeBudget":
        return cls(rate=policy.budget_rate, burst=policy.budget_burst)

    def note_call(self) -> None:
        """Record one hedge-eligible call; accrues ``rate`` tokens."""
        with self._lock:
            self._tokens = min(self._burst, self._tokens + self._rate)

    def try_spend(self) -> bool:
        """Spend one token to fire a hedge; False when exhausted."""
        with self._lock:
            if self._tokens < 1.0:
                self._denied += 1
                return False
            self._tokens -= 1.0
            self._spent += 1
            return True

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    @property
    def spent(self) -> int:
        """Hedges granted so far."""
        with self._lock:
            return self._spent

    @property
    def denied(self) -> int:
        """Hedges suppressed because the bucket was empty."""
        with self._lock:
            return self._denied

    def snapshot(self) -> dict:
        """A consistent point-in-time view of the bucket (tokens left,
        hedges spent, hedges denied)."""
        with self._lock:
            return {
                "tokens": self._tokens,
                "spent": self._spent,
                "denied": self._denied,
            }


def hedge_trigger(
    policy: HedgePolicy,
    rollup,
    attempt_budget_s: float | None,
) -> float | None:
    """Seconds the first attempt may run before the hedge fires.

    Returns ``None`` — do not hedge — when the policy disables hedging,
    the rollup has fewer than ``min_samples`` observations (cold-start
    guard), or the trigger would land at or beyond the attempt's own
    I/O budget (the timeout will fire first, so a hedge adds nothing).
    """
    if policy.max_hedges < 1:
        return None
    if rollup is None or rollup.calls < policy.min_samples:
        return None
    trigger = max(
        rollup.latency_quantile(policy.quantile), policy.min_trigger_s
    )
    if attempt_budget_s is not None and trigger >= attempt_budget_s:
        return None
    return trigger
