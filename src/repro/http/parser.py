"""Incremental HTTP/1.1 message parsing over a byte channel.

A :class:`ChannelReader` buffers channel reads; :func:`read_request`
and :func:`read_response` assemble complete messages, supporting
``Content-Length`` and ``chunked`` framing.
"""

from __future__ import annotations

from repro.errors import HttpError
from repro.http.compression import (
    SUPPORTED_ENCODINGS,
    CompressionError,
    decompress,
)
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.transport.base import Channel

MAX_HEAD_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024
_CRLF = b"\r\n"
_HEAD_END = b"\r\n\r\n"


class ConnectionClosedCleanly(HttpError):
    """Peer closed between messages — normal end of a keep-alive session."""


class ChannelReader:
    """Buffered reader over a :class:`Channel`."""

    __slots__ = ("_channel", "_buffer")

    def __init__(self, channel: Channel) -> None:
        self._channel = channel
        self._buffer = bytearray()

    def read_until(self, marker: bytes, limit: int) -> bytes:
        """Read up to and including ``marker``; error past ``limit``."""
        while True:
            index = self._buffer.find(marker)
            if index != -1:
                end = index + len(marker)
                data = bytes(self._buffer[:end])
                del self._buffer[:end]
                return data
            if len(self._buffer) > limit:
                raise HttpError(f"message head exceeds {limit} bytes", status=413)
            chunk = self._channel.recv()
            if not chunk:
                if not self._buffer:
                    raise ConnectionClosedCleanly("peer closed the connection")
                raise HttpError("connection closed mid-message")
            self._buffer.extend(chunk)

    def read_exact(self, nbytes: int) -> bytes:
        """Read exactly ``nbytes`` or raise on early EOF."""
        if nbytes > MAX_BODY_BYTES:
            raise HttpError(f"body of {nbytes} bytes exceeds limit", status=413)
        while len(self._buffer) < nbytes:
            chunk = self._channel.recv()
            if not chunk:
                raise HttpError("connection closed mid-body")
            self._buffer.extend(chunk)
        data = bytes(self._buffer[:nbytes])
        del self._buffer[:nbytes]
        return data


def read_request(reader: ChannelReader) -> HttpRequest:
    """Read one complete HTTP request from the channel."""
    head = reader.read_until(_HEAD_END, MAX_HEAD_BYTES)
    method, path, version, headers = _parse_request_head(head)
    body = _read_body(reader, headers, is_request=True)
    return HttpRequest(method, path, headers, body, version)


def _parse_request_head(head: bytes) -> tuple[str, str, str, Headers]:
    """Validate a request head: ``(method, path, version, headers)``."""
    request_line, headers = _parse_head(head)
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line '{request_line}'", status=400)
    method, path, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(f"unsupported HTTP version '{version}'", status=400)
    return method, path, version, headers


def read_response(reader: ChannelReader) -> HttpResponse:
    """Read one complete HTTP response from the channel."""
    head = reader.read_until(_HEAD_END, MAX_HEAD_BYTES)
    status_line, headers = _parse_head(head)
    parts = status_line.split(" ", 2)
    if len(parts) < 2:
        raise HttpError(f"malformed status line '{status_line}'")
    version, status_text = parts[0], parts[1]
    reason = parts[2] if len(parts) == 3 else ""
    try:
        status = int(status_text)
    except ValueError:
        raise HttpError(f"non-numeric status '{status_text}'") from None
    body = _read_body(reader, headers, is_request=False)
    return HttpResponse(status, headers, body, reason, version)


def _parse_head(head: bytes) -> tuple[str, Headers]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 never fails
        raise HttpError("undecodable message head") from None
    lines = text.split("\r\n")
    start_line = lines[0]
    headers = Headers()
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip():
            raise HttpError(f"malformed header line '{line}'", status=400)
        headers.add(name, value.strip())
    return start_line, headers


def _read_body(reader: ChannelReader, headers: Headers, *, is_request: bool) -> bytes:
    encoding = headers.get_token("Transfer-Encoding")
    if encoding == "chunked":
        return _decode_content(_read_chunked(reader), headers, is_request=is_request)
    if encoding and encoding != "identity":
        raise HttpError(f"unsupported transfer encoding '{encoding}'", status=400)

    length_text = headers.get("Content-Length")
    if length_text is None:
        # Requests must declare a length (we do not accept read-to-EOF
        # requests); responses without one have no body in our binding.
        if is_request and headers.get("Content-Type"):
            raise HttpError("request has a body but no Content-Length", status=411)
        return b""
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError
    except ValueError:
        raise HttpError(f"bad Content-Length '{length_text}'", status=400) from None
    return _decode_content(reader.read_exact(length), headers, is_request=is_request)


def _decode_content(body: bytes, headers: Headers, *, is_request: bool) -> bytes:
    """Reverse any ``Content-Encoding`` so callers see identity bytes.

    The header is removed after decoding — the message no longer
    carries the coding, and re-serializing it must not claim one.  An
    unsupported coding on a *request* is the client's fault (415); on a
    response it surfaces as a plain :class:`HttpError` for the client's
    retry policy to judge.
    """
    encoding = headers.get_token("Content-Encoding")
    if not encoding or encoding == "identity":
        return body
    if encoding not in SUPPORTED_ENCODINGS:
        raise HttpError(
            f"unsupported content encoding '{encoding}'",
            status=415 if is_request else None,
        )
    if not body:
        headers.remove("Content-Encoding")
        return body
    try:
        decoded = decompress(body, encoding, max_size=MAX_BODY_BYTES)
    except CompressionError as exc:
        if exc.status == 413:
            raise
        raise HttpError(
            f"undecodable {encoding} body: {exc}",
            status=400 if is_request else None,
        ) from exc
    headers.remove("Content-Encoding")
    headers.set("Content-Length", str(len(decoded)))
    return decoded


def _read_chunked(reader: ChannelReader) -> bytes:
    body = bytearray()
    while True:
        size_line = reader.read_until(_CRLF, 1024)
        size_text = size_line.strip().split(b";")[0]
        try:
            size = int(size_text, 16)
        except ValueError:
            raise HttpError(f"bad chunk size {size_text!r}", status=400) from None
        if size == 0:
            # trailer section: read lines until the blank terminator
            while True:
                line = reader.read_until(_CRLF, MAX_HEAD_BYTES)
                if line == _CRLF:
                    return bytes(body)
        if len(body) + size > MAX_BODY_BYTES:
            raise HttpError("chunked body exceeds limit", status=413)
        body.extend(reader.read_exact(size))
        terminator = reader.read_exact(2)
        if terminator != _CRLF:
            raise HttpError("chunk not terminated by CRLF", status=400)


class RequestParser:
    """Incremental *push-mode* HTTP/1.1 request parser.

    Where :class:`ChannelReader`/:func:`read_request` *pull* bytes from
    a blocking channel, this parser is *fed* chunks as they arrive —
    the shape the evented protocol stage needs: the event loop hands it
    whatever ``recv`` returned and asks for any completed request.

    Framing (``Content-Length`` and ``chunked``), limits and error
    statuses match :func:`read_request` exactly; both share the head
    parsing and content-decoding helpers.  A malformed or oversized
    message raises :class:`~repro.errors.HttpError` from
    :meth:`next_request`, after which the connection must be closed
    (framing state is unrecoverable).
    """

    _HEAD = 0  # accumulating the request head
    _BODY = 1  # fixed-length body
    _CHUNK_SIZE = 2  # chunked: expecting a size line
    _CHUNK_DATA = 3  # chunked: expecting size+CRLF bytes of data
    _TRAILER = 4  # chunked: consuming trailer lines

    __slots__ = (
        "_buffer",
        "_state",
        "_head",
        "_body",
        "_body_remaining",
        "_requests_parsed",
    )

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._state = self._HEAD
        self._head: tuple[str, str, str, Headers] | None = None
        self._body = bytearray()
        self._body_remaining = 0
        self._requests_parsed = 0

    @property
    def requests_parsed(self) -> int:
        return self._requests_parsed

    @property
    def has_buffered_data(self) -> bool:
        """True when bytes are buffered (a partial or pipelined message)."""
        return bool(self._buffer) or self._state != self._HEAD

    def feed(self, data: bytes) -> None:
        """Buffer one chunk as read off the wire."""
        self._buffer.extend(data)

    def next_request(self) -> HttpRequest | None:
        """The next complete request, or ``None`` until more bytes arrive.

        Raises :class:`~repro.errors.HttpError` on malformed framing.
        """
        while True:
            if self._state == self._HEAD:
                index = self._buffer.find(_HEAD_END)
                if index == -1:
                    if len(self._buffer) > MAX_HEAD_BYTES:
                        raise HttpError(
                            f"message head exceeds {MAX_HEAD_BYTES} bytes",
                            status=413,
                        )
                    return None
                head = bytes(self._buffer[: index + len(_HEAD_END)])
                del self._buffer[: index + len(_HEAD_END)]
                self._head = _parse_request_head(head)
                headers = self._head[3]
                encoding = headers.get_token("Transfer-Encoding")
                if encoding == "chunked":
                    self._body = bytearray()
                    self._state = self._CHUNK_SIZE
                    continue
                if encoding and encoding != "identity":
                    raise HttpError(
                        f"unsupported transfer encoding '{encoding}'", status=400
                    )
                length_text = headers.get("Content-Length")
                if length_text is None:
                    if headers.get("Content-Type"):
                        raise HttpError(
                            "request has a body but no Content-Length", status=411
                        )
                    return self._complete(b"")
                try:
                    length = int(length_text)
                    if length < 0:
                        raise ValueError
                except ValueError:
                    raise HttpError(
                        f"bad Content-Length '{length_text}'", status=400
                    ) from None
                if length > MAX_BODY_BYTES:
                    raise HttpError(
                        f"body of {length} bytes exceeds limit", status=413
                    )
                self._body_remaining = length
                self._state = self._BODY
                continue

            if self._state == self._BODY:
                if len(self._buffer) < self._body_remaining:
                    return None
                body = bytes(self._buffer[: self._body_remaining])
                del self._buffer[: self._body_remaining]
                return self._complete(body)

            if self._state == self._CHUNK_SIZE:
                line_end = self._buffer.find(_CRLF)
                if line_end == -1:
                    if len(self._buffer) > 1024:
                        raise HttpError("chunk size line too long", status=400)
                    return None
                size_text = bytes(self._buffer[:line_end]).strip().split(b";")[0]
                del self._buffer[: line_end + len(_CRLF)]
                try:
                    size = int(size_text, 16)
                except ValueError:
                    raise HttpError(
                        f"bad chunk size {size_text!r}", status=400
                    ) from None
                if size == 0:
                    self._state = self._TRAILER
                    continue
                if len(self._body) + size > MAX_BODY_BYTES:
                    raise HttpError("chunked body exceeds limit", status=413)
                self._body_remaining = size
                self._state = self._CHUNK_DATA
                continue

            if self._state == self._CHUNK_DATA:
                need = self._body_remaining + len(_CRLF)
                if len(self._buffer) < need:
                    return None
                self._body.extend(self._buffer[: self._body_remaining])
                terminator = bytes(
                    self._buffer[self._body_remaining : need]
                )
                del self._buffer[:need]
                if terminator != _CRLF:
                    raise HttpError("chunk not terminated by CRLF", status=400)
                self._state = self._CHUNK_SIZE
                continue

            assert self._state == self._TRAILER
            line_end = self._buffer.find(_CRLF)
            if line_end == -1:
                if len(self._buffer) > MAX_HEAD_BYTES:
                    raise HttpError("trailer section too long", status=413)
                return None
            line = bytes(self._buffer[: line_end + len(_CRLF)])
            del self._buffer[: line_end + len(_CRLF)]
            if line == _CRLF:
                return self._complete(bytes(self._body))
            # non-empty trailer line: consumed and ignored (parity with
            # _read_chunked)

    def _complete(self, body: bytes) -> HttpRequest:
        assert self._head is not None
        method, path, version, headers = self._head
        body = _decode_content(body, headers, is_request=True)
        self._head = None
        self._body = bytearray()
        self._body_remaining = 0
        self._state = self._HEAD
        self._requests_parsed += 1
        return HttpRequest(method, path, headers, body, version)


def encode_chunked(body: bytes, chunk_size: int = 8192) -> bytes:
    """Encode ``body`` using chunked transfer encoding (used by the
    streaming/chunking related-work bench)."""
    out = bytearray()
    for offset in range(0, len(body), chunk_size):
        chunk = body[offset : offset + chunk_size]
        out.extend(f"{len(chunk):x}\r\n".encode("ascii"))
        out.extend(chunk)
        out.extend(_CRLF)
    out.extend(b"0\r\n\r\n")
    return bytes(out)
