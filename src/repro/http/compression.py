"""Negotiated HTTP content-coding (gzip / deflate) for the SOAP binding.

Related work on SOAP performance (Dauda et al.) locates a large share
of call latency in bytes-on-wire; XML's redundancy makes envelopes
highly compressible.  This module implements the negotiation half of
that optimisation: clients advertise ``Accept-Encoding`` with RFC 7231
q-values, servers pick a coding via :func:`choose_encoding` and stamp
``Content-Encoding``, and :func:`decompress` reverses the coding inside
the incremental parser so every layer above HTTP sees identity bytes.

Codings are implemented with :mod:`zlib` only — ``gzip`` is the zlib
stream with the gzip wrapper (``wbits=31``) and ``deflate`` is the zlib
wrapper (``wbits=15``, per RFC 7230's reading of RFC 1950), with a raw
fallback on decode for peers that ship bare deflate streams.
Decompression is bounded to guard against decompression bombs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import HttpError
from repro.http.message import parse_qvalues

#: Codings this implementation can produce/consume, in server
#: preference order (gzip first: better ratio on XML for one extra
#: header byte).
SUPPORTED_ENCODINGS: tuple[str, ...] = ("gzip", "deflate")

#: Below this many identity bytes compression is skipped: the zlib
#: header + Content-Encoding line outweigh the savings, and small
#: envelopes are latency- not bandwidth-bound.
DEFAULT_MIN_SIZE = 256

_GZIP_WBITS = 31  # zlib stream + gzip wrapper
_ZLIB_WBITS = 15  # zlib wrapper (RFC 1950) — HTTP "deflate"
_RAW_WBITS = -15  # bare deflate, the common interop mistake


class CompressionError(HttpError):
    """A content-coding could not be applied or reversed."""


@dataclass(frozen=True, slots=True)
class CompressionPolicy:
    """What a peer is willing to produce.

    ``encodings`` is a preference-ordered subset of
    :data:`SUPPORTED_ENCODINGS`; ``min_size`` suppresses compression of
    small bodies; ``level`` is the zlib effort knob (6 is zlib's own
    default trade-off).
    """

    encodings: tuple[str, ...] = SUPPORTED_ENCODINGS
    min_size: int = DEFAULT_MIN_SIZE
    level: int = 6

    def __post_init__(self) -> None:
        for encoding in self.encodings:
            if encoding not in SUPPORTED_ENCODINGS:
                raise ValueError(f"unsupported content coding '{encoding}'")
        if not 0 <= self.level <= 9:
            raise ValueError(f"zlib level {self.level} outside 0..9")

    @property
    def accept_header(self) -> str:
        """The ``Accept-Encoding`` value advertising this policy."""
        return ", ".join(self.encodings)


#: Convenience instance with the defaults above.
DEFAULT_COMPRESSION = CompressionPolicy()


def choose_encoding(
    accept_encoding: str | None, policy: CompressionPolicy = DEFAULT_COMPRESSION
) -> str | None:
    """Pick the content-coding to apply for a peer's ``Accept-Encoding``.

    Returns ``None`` (send identity) when the header is absent, empty,
    or admits nothing we support — identity is always an acceptable
    fallback in this binding, so negotiation never fails a request.
    Among acceptable codings the peer's q-values win; q-ties fall back
    to ``policy`` preference order.  ``*`` stands for any coding not
    named explicitly, and ``q=0`` refuses one.
    """
    pairs = parse_qvalues(accept_encoding)
    if not pairs:
        return None
    explicit = {token: quality for token, quality in pairs}
    wildcard = explicit.get("*")
    best: str | None = None
    best_quality = 0.0
    for rank, encoding in enumerate(policy.encodings):
        quality = explicit.get(encoding)
        if quality is None:
            quality = wildcard
        if not quality:  # absent, or refused with q=0
            continue
        # Strict > keeps policy order as the tiebreak.
        if quality > best_quality:
            best, best_quality = encoding, quality
    return best


def compress(data: bytes, encoding: str, *, level: int = 6) -> bytes:
    """Apply a supported content-coding to ``data``."""
    if encoding == "gzip":
        compressor = zlib.compressobj(level, zlib.DEFLATED, _GZIP_WBITS)
    elif encoding == "deflate":
        compressor = zlib.compressobj(level, zlib.DEFLATED, _ZLIB_WBITS)
    else:
        raise CompressionError(f"cannot produce content coding '{encoding}'")
    return compressor.compress(data) + compressor.flush()


def decompress(data: bytes, encoding: str, *, max_size: int) -> bytes:
    """Reverse a supported content-coding, refusing to inflate past
    ``max_size`` identity bytes (decompression-bomb guard)."""
    if encoding == "gzip":
        candidates = (_GZIP_WBITS,)
    elif encoding == "deflate":
        # RFC 7230 says zlib-wrapped, but bare streams are a widespread
        # interop bug; try the spec reading first.
        candidates = (_ZLIB_WBITS, _RAW_WBITS)
    else:
        raise CompressionError(f"cannot consume content coding '{encoding}'")
    last_error: Exception | None = None
    for wbits in candidates:
        try:
            return _inflate(data, wbits, max_size)
        except zlib.error as exc:
            last_error = exc
    raise CompressionError(f"corrupt {encoding} body: {last_error}")


def _inflate(data: bytes, wbits: int, max_size: int) -> bytes:
    decompressor = zlib.decompressobj(wbits)
    out = decompressor.decompress(data, max_size)
    if decompressor.unconsumed_tail:
        raise CompressionError(
            f"decompressed body exceeds {max_size} bytes", status=413
        )
    if not decompressor.eof:
        raise zlib.error("truncated compressed stream")
    return out
