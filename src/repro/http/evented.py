"""Event-loop HTTP/1.1 backend: one thread, thousands of connections.

The C10K counterpart of :class:`~repro.http.server.HttpServer`.  A
single ``selectors``-based loop thread owns *all* protocol I/O —
accept, incremental parse (one :class:`~repro.http.parser.RequestParser`
per connection), and write-back — while every complete request is
dispatched to a bounded ``http-handler`` :class:`~repro.server.stage.Stage`
whose workers run the application callable.  Finished responses travel
back through a completion deque plus a wakeup socketpair, so the loop
never blocks on application work and workers never touch a socket:

::

    loop thread                         handler stage (bounded pool)
    -----------                         ----------------------------
    select() ──ready──► recv ──feed──► RequestParser
       ▲                                  │ complete request
       │                                  ▼ stage.submit()
       │                             app(request) ─► payload bytes
       │  wakeup byte + deque entry ◄─────┘
       └── drain completions ─► fill response slots ─► send

The SEDA argument (paper Fig. 2, Welsh et al.): the protocol stage
must be non-blocking I/O feeding bounded worker pools, so overload
surfaces as explicit sheds (``Server.Busy``) instead of thread
explosion.  Three shed rungs, outermost first:

1. **accept overload** — active connections at ``max_connections``:
   a canned 503 is written straight from the loop, before any parse;
2. **handler-stage saturation** — ``stage.submit`` raises
   :class:`~repro.errors.PoolSaturatedError`: whole-message 503;
3. the app-stage per-entry sheds of the staged architecture
   (unchanged — entries inside a pack fault individually).

Per-connection read-idle, write-stall, and handler deadlines are
enforced from the loop with an injectable monotonic clock, so the
slow-loris tests drive :class:`EventedConnection` directly with a fake
socket and fake time.
"""

from __future__ import annotations

import collections
import selectors
import socket
import threading
import time
from typing import Callable

from repro.errors import HttpError, PoolSaturatedError
from repro.http.compression import CompressionPolicy
from repro.http.core import HttpServerCore, error_response
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import RequestParser
from repro.obs.trace import (
    TRACE_HTTP_HEADER,
    Observability,
    activate,
    deactivate,
    new_trace_id,
)
from repro.transport.base import Address, Transport

App = Callable[[HttpRequest], HttpResponse]

#: Per-connection cap on dispatched-but-unanswered pipelined requests;
#: at the cap the loop drops read interest until responses drain.
MAX_PIPELINED = 16

#: Deadline sweeps run at most this often — O(connections) work that
#: does not need per-event freshness.
SWEEP_INTERVAL_S = 0.25

#: Upper bound on one select() wait, so stop() and deadline sweeps are
#: never starved by a silent socket set.
MAX_POLL_S = 0.2


class _ConnectionLost(Exception):
    """The peer is gone (reset/broken pipe); close without ceremony."""


def _recv_nonblocking(sock, max_bytes: int = 65536) -> bytes | None:
    """One non-blocking recv: ``None`` = no data yet, ``b''`` = EOF.

    The loop's only read primitive — the
    ``no-blocking-call-on-event-loop`` analysis rule holds every other
    ``recv`` in this module to it.
    """
    try:
        return sock.recv(max_bytes)
    except (BlockingIOError, InterruptedError):
        return None
    except OSError:
        # reset mid-read reads like EOF: framing decides if it was clean
        return b""


def _send_nonblocking(sock, data) -> int:
    """One non-blocking send: bytes written (0 = kernel buffer full).

    Raises :class:`_ConnectionLost` when the peer is gone.
    """
    try:
        return sock.send(data)
    except (BlockingIOError, InterruptedError):
        return 0
    except OSError as exc:
        raise _ConnectionLost(str(exc)) from exc


def _accept_nonblocking(sock):
    """One non-blocking accept: ``(conn, peer)`` or ``None``."""
    try:
        return sock.accept()
    except (BlockingIOError, InterruptedError):
        return None
    except OSError:
        return None


class _ResponseSlot:
    """One in-order response position on a connection.

    Requests are dispatched as they parse (pipelining), but HTTP/1.1
    responses must come back in request order: a worker fills its slot
    whenever it finishes, the loop writes only the contiguous done
    prefix.  ``done`` is set last (GIL-ordered) so the loop never reads
    a half-filled slot.
    """

    __slots__ = ("payload", "close_after", "done", "dispatched_at")

    def __init__(self, dispatched_at: float = 0.0) -> None:
        self.payload = b""
        self.close_after = False
        self.done = False
        #: monotonic time the request was dispatched — the handler
        #: deadline measures from here until ``done``
        self.dispatched_at = dispatched_at

    def fill(self, payload: bytes, *, close_after: bool) -> None:
        self.payload = payload
        self.close_after = close_after
        self.done = True


class EventedConnection:
    """Per-connection state machine, driven entirely by the loop thread.

    Pure with respect to time: every method that needs a clock takes
    ``now`` (monotonic seconds) — the slow-loris and partial-write
    tests feed a fake socket and hand-rolled timestamps.
    """

    __slots__ = (
        "sock",
        "parser",
        "outbuf",
        "slots",
        "idle_timeout",
        "write_timeout",
        "handler_timeout",
        "last_activity",
        "write_started",
        "parse_started",
        "reading_shut",
        "close_after_write",
    )

    def __init__(
        self,
        sock,
        *,
        now: float,
        idle_timeout: float | None = None,
        write_timeout: float | None = None,
        handler_timeout: float | None = None,
    ) -> None:
        self.sock = sock
        self.parser = RequestParser()
        self.outbuf = bytearray()
        #: dispatched-but-unwritten responses, oldest first
        self.slots: collections.deque[_ResponseSlot] = collections.deque()
        self.idle_timeout = idle_timeout
        self.write_timeout = write_timeout
        self.handler_timeout = handler_timeout
        self.last_activity = now
        #: monotonic time the current outbuf started waiting, or None
        self.write_started: float | None = None
        #: when the bytes of the currently-parsing request started
        #: arriving — the start of that request's ``http.parse`` span
        self.parse_started: float | None = None
        self.reading_shut = False
        self.close_after_write = False

    # -- read path ------------------------------------------------------

    def on_readable(self, now: float) -> list[HttpRequest] | None:
        """Drain the socket; completed requests, or ``None`` = close me.

        ``None`` means the connection is finished *as far as reading
        goes*: either a clean EOF (pending writes still flush) or a
        framing error (an error response is already queued with
        ``close_after``).

        A framing error raises :class:`HttpError` with the batch's
        valid prefix attached as ``exc.parsed_requests`` — a pipelined
        burst where request 3 is malformed still gets requests 1 and 2
        answered (in order, before the error) exactly like the
        threaded backend.
        """
        requests: list[HttpRequest] = []
        while True:
            data = _recv_nonblocking(self.sock)
            if data is None:
                break
            if data == b"":
                self.reading_shut = True
                if self.parser.has_buffered_data:
                    # mid-message EOF: nothing to answer, drop after
                    # any queued responses flush
                    self.close_after_write = True
                break
            self.last_activity = now
            if self.parse_started is None:
                self.parse_started = now
            self.parser.feed(data)
            try:
                while (request := self.parser.next_request()) is not None:
                    requests.append(request)
            except HttpError as exc:
                self.reading_shut = True
                exc.parsed_requests = requests
                raise
        if requests:
            self.parse_started = (
                now if self.parser.has_buffered_data else None
            )
        return requests if not self.reading_shut else (requests or None)

    # -- write path -----------------------------------------------------

    def pump_ready(self, now: float) -> bool:
        """Move contiguous finished slots into the out-buffer.

        Returns True when new bytes became writable.
        """
        moved = False
        while self.slots and self.slots[0].done:
            slot = self.slots.popleft()
            if not self.outbuf:
                self.write_started = now
            self.outbuf += slot.payload
            if slot.close_after:
                self.close_after_write = True
                self.slots.clear()
                self.reading_shut = True
            moved = True
        return moved

    def flush(self, now: float) -> bool:
        """Write what the kernel will take; True when fully drained.

        Raises :class:`_ConnectionLost` when the peer vanished.
        """
        while self.outbuf:
            sent = _send_nonblocking(self.sock, self.outbuf)
            if sent == 0:
                return False
            del self.outbuf[:sent]
            self.last_activity = now
            # the write deadline measures *stall*, not total transfer
            # time: any progress re-arms it, so a slow-but-draining
            # reader of a large response is never killed
            self.write_started = now
        self.write_started = None
        return True

    # -- deadlines ------------------------------------------------------

    def timed_out(self, now: float) -> str | None:
        """The deadline this connection has blown, or ``None``.

        ``"write"`` — the peer made no read progress since the last
        successful send (a stall, not a total-transfer budget);
        ``"handler"`` — the oldest dispatched request has gone
        unanswered past the handler deadline (a dropped completion or
        a wedged worker must not leak the connection forever);
        ``"idle"`` — no request bytes within the idle window (covers
        slow-loris: trickling a header forever resets nothing once the
        window is measured from *our* last useful progress).
        """
        if (
            self.write_timeout is not None
            and self.write_started is not None
            and now - self.write_started > self.write_timeout
        ):
            return "write"
        if (
            self.handler_timeout is not None
            and self.slots
            and not self.slots[0].done
            and now - self.slots[0].dispatched_at > self.handler_timeout
        ):
            return "handler"
        if self.idle_timeout is not None and not self.slots and not self.outbuf:
            # mid-request the anchor is when the request STARTED arriving
            # — a slow-loris trickling header bytes resets nothing
            anchor = (
                self.parse_started
                if self.parse_started is not None
                else self.last_activity
            )
            if now - anchor > self.idle_timeout:
                return "idle"
        return None

    @property
    def finished(self) -> bool:
        """Nothing left to read, write, or wait for."""
        return (
            self.reading_shut
            and not self.slots
            and not self.outbuf
        )

    def want_read(self) -> bool:
        """Should the loop watch this socket for readability?

        False once reading is shut *or* pipelining is maxed out (the
        back-pressure valve: stop parsing until responses drain).
        """
        return not self.reading_shut and len(self.slots) < MAX_PIPELINED

    def want_write(self) -> bool:
        """Should the loop watch this socket for writability?"""
        return bool(self.outbuf)


class EventedHttpServer(HttpServerCore):
    """Non-blocking protocol stage in front of bounded worker stages.

    Same constructor surface as the threaded server plus the loop
    knobs; requires a transport implementing ``selectable_listen``
    (TCP and its shaped/chaos wrappers — not in-proc).
    """

    def __init__(
        self,
        app: App,
        *,
        transport: Transport,
        address: Address,
        server_header: str = "repro-httpd/1.0",
        chunk_responses_over: int | None = None,
        chunk_size: int = 8192,
        max_connections: int | None = None,
        observability: Observability | None = None,
        compression: CompressionPolicy | None = None,
        slo_config: dict | None = None,
        protocol_workers: int = 8,
        protocol_queue_limit: int | None = 1024,
        idle_timeout: float | None = 30.0,
        write_timeout: float | None = 30.0,
        handler_timeout: float | None = 60.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        """``max_connections`` here is the *accept-overload budget*:
        past it, new peers get a canned 503 written from the loop
        before any parsing (rung 1 of the shed ladder) — unlike the
        threaded backend, which parks excess peers in the backlog.

        ``protocol_workers`` / ``protocol_queue_limit`` size the
        ``http-handler`` stage between loop and app (rung 2: a full
        handler queue sheds whole messages with 503).

        ``idle_timeout`` / ``write_timeout`` / ``handler_timeout`` are
        the per-connection deadlines the loop enforces (read-idle,
        write-stall, and dispatched-but-unanswered request); ``clock``
        is the monotonic source for both deadlines *and* span
        timestamps (``perf_counter`` by default, matching the tracer's
        timebase; injectable for tests).
        """
        super().__init__(
            app,
            transport=transport,
            address=address,
            server_header=server_header,
            chunk_responses_over=chunk_responses_over,
            chunk_size=chunk_size,
            observability=observability,
            compression=compression,
            slo_config=slo_config,
        )
        self._max_connections = max_connections
        self._protocol_workers = protocol_workers
        self._protocol_queue_limit = protocol_queue_limit
        self._idle_timeout = idle_timeout
        self._write_timeout = write_timeout
        self._handler_timeout = handler_timeout
        self._clock = clock
        self.accept_overload_shed = 0
        self._listen_sock: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._loop_thread: threading.Thread | None = None
        self._stage = None
        self._stopping = threading.Event()
        self._connections: dict[int, EventedConnection] = {}
        self._masks: dict[int, int] = {}
        # GIL-atomic handoff: workers append, the loop pops; the wakeup
        # socketpair only exists to interrupt select()
        self._completions: collections.deque[EventedConnection] = (
            collections.deque()
        )
        self._wakeup_recv: socket.socket | None = None
        self._wakeup_send: socket.socket | None = None
        self._busy_payload: bytes | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> Address:
        """Bind, start the loop thread; returns the bound address."""
        if self._listen_sock is not None:
            raise HttpError("server already started")
        from repro.server.stage import Stage

        self._listen_sock = self._transport.selectable_listen(
            self._bind_address
        )
        self._stage = Stage(
            "http-handler",
            self._protocol_workers,
            registry=self._obs.registry if self._obs is not None else None,
            max_queue=self._protocol_queue_limit,
        )
        self._wakeup_recv, self._wakeup_send = socket.socketpair()
        self._wakeup_recv.setblocking(False)
        self._wakeup_send.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(
            self._listen_sock, selectors.EVENT_READ, "accept"
        )
        self._selector.register(
            self._wakeup_recv, selectors.EVENT_READ, "wakeup"
        )
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="http-loop", daemon=True
        )
        self._loop_thread.start()
        return self.address

    def stop(self, *, join_timeout: float = 5.0) -> None:
        """Stop the loop, close every connection, drain the stage."""
        if self._listen_sock is None:
            return
        self._stopping.set()
        self._wake()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=join_timeout)
        if self._stage is not None:
            self._stage.shutdown()

    @property
    def address(self) -> Address:
        if self._listen_sock is None:
            raise HttpError("server not started")
        return self._listen_sock.getsockname()

    def set_busy_body(self, content_type: str, payload: bytes) -> None:
        super().set_busy_body(content_type, payload)
        self._busy_payload = None  # re-render on next shed

    # -- the loop -------------------------------------------------------

    def _run_loop(self) -> None:
        assert self._selector is not None
        clock = self._clock
        lag_gauge = open_gauge = None
        if self._obs is not None:
            registry = self._obs.registry
            lag_gauge = registry.gauge("http.loop.lag_s")
            open_gauge = registry.gauge("http.loop.open_connections")
        last_sweep = clock()
        try:
            while not self._stopping.is_set():
                timeout = self._select_timeout(clock())
                intended_wake = clock() + timeout
                events = self._selector.select(timeout)
                now = clock()
                if lag_gauge is not None and events:
                    # how late the loop is to ready work: the C10K
                    # health signal (a busy loop shows rising lag long
                    # before connections error out)
                    lag_gauge.set(max(0.0, now - intended_wake))
                for key, mask in events:
                    if key.data == "accept":
                        self._accept_ready(now)
                    elif key.data == "wakeup":
                        self._drain_wakeup(now)
                    else:
                        self._connection_ready(key.data, mask, now)
                self._drain_completions(now)
                if now - last_sweep >= SWEEP_INTERVAL_S:
                    last_sweep = now
                    self._sweep_deadlines(now)
                    if open_gauge is not None:
                        open_gauge.set(len(self._connections))
        finally:
            self._teardown()

    def _select_timeout(self, now: float) -> float:
        """Sleep until the next deadline could fire, capped for sweeps."""
        timeout = MAX_POLL_S
        if self._completions:
            return 0.0
        return timeout

    def _accept_ready(self, now: float) -> None:
        assert self._listen_sock is not None
        while True:
            accepted = _accept_nonblocking(self._listen_sock)
            if accepted is None:
                return
            sock, _peer = accepted
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            if (
                self._max_connections is not None
                and len(self._connections) >= self._max_connections
            ):
                self._shed_accept(sock)
                continue
            self._note_connection_opened()
            conn = EventedConnection(
                sock,
                now=now,
                idle_timeout=self._idle_timeout,
                write_timeout=self._write_timeout,
                handler_timeout=self._handler_timeout,
            )
            self._connections[sock.fileno()] = conn
            self._register(conn, selectors.EVENT_READ)

    def _shed_accept(self, sock: socket.socket) -> None:
        """Rung 1: over the connection budget — 503 before parse."""
        self.accept_overload_shed += 1
        if self._obs is not None:
            self._obs.registry.counter("http.accept_overload.shed").inc()
        if self._busy_payload is None:
            response = self.make_busy_response(
                "server busy: connection budget exceeded"
            )
            self._busy_payload = b"".join(
                self._response_payloads(response, close=True)
            )
        try:
            # best-effort: the canned 503 fits any fresh socket buffer;
            # a peer that vanished just gets the close
            _send_nonblocking(sock, self._busy_payload)
        except _ConnectionLost:
            pass
        sock.close()

    def _drain_wakeup(self, now: float) -> None:
        assert self._wakeup_recv is not None
        while _recv_nonblocking(self._wakeup_recv, 4096):
            pass

    def _wake(self) -> None:
        """Nudge select() from another thread; safe to call anytime."""
        if self._wakeup_send is None:
            return
        try:
            _send_nonblocking(self._wakeup_send, b"\x00")
        except (_ConnectionLost, OSError):
            pass

    def _connection_ready(
        self, conn: EventedConnection, mask: int, now: float
    ) -> None:
        if mask & selectors.EVENT_WRITE:
            try:
                conn.flush(now)
            except _ConnectionLost:
                self._close_connection(conn)
                return
        if mask & selectors.EVENT_READ and conn.want_read():
            try:
                requests = conn.on_readable(now)
            except HttpError as exc:
                # answer the batch's valid prefix first — the error
                # response must not be misattributed to a request that
                # parsed fine (threaded-backend parity).  reading_shut
                # is held False while the prefix dispatches: an admin
                # or shed response fills-and-flushes synchronously, and
                # must not see `finished` and close the connection
                # before the error slot below exists.
                conn.reading_shut = False
                try:
                    for request in getattr(exc, "parsed_requests", ()):
                        self._dispatch(conn, request, now)
                finally:
                    conn.reading_shut = True
                self._queue_error(conn, exc, now)
                self._flush_now(conn, now)
                return
            if requests:
                for request in requests:
                    self._dispatch(conn, request, now)
        if conn.finished:
            self._close_connection(conn)
            return
        self._update_interest(conn)

    # -- request handling -----------------------------------------------

    def _dispatch(
        self, conn: EventedConnection, request: HttpRequest, now: float
    ) -> None:
        obs = self._obs
        parse_start = conn.parse_started
        trace_id = ""
        if obs is not None:
            admin = self._admin_response(request)
            if admin is not None:
                self._note_request_served()
                self._maybe_compress(request, admin)
                self._complete_slot(
                    conn, self._new_slot(conn, now), request, admin, now=now
                )
                return
            trace_id = request.headers.get(TRACE_HTTP_HEADER) or new_trace_id()
            obs.tracer.record_span(
                "http.parse",
                trace_id,
                parse_start if parse_start is not None else now,
                now,
                detail=request.path,
            )
            obs.registry.counter("http.requests").inc()
        slot = self._new_slot(conn, now)
        assert self._stage is not None
        try:
            self._stage.submit(
                self._handle_request,
                conn,
                slot,
                request,
                trace_id,
                kind="request",
            )
        except PoolSaturatedError:
            # rung 2: the handler stage is the bounded protocol queue
            response = self.make_busy_response(
                "server busy: handler stage saturated"
            )
            self._note_request_served()
            if obs is not None and obs.store is not None and trace_id:
                obs.store.complete(trace_id, http_status=response.status)
            self._complete_slot(conn, slot, request, response, now=now)

    def _new_slot(self, conn: EventedConnection, now: float) -> _ResponseSlot:
        slot = _ResponseSlot(dispatched_at=now)
        conn.slots.append(slot)
        return slot

    def _queue_error(
        self, conn: EventedConnection, exc: HttpError, now: float
    ) -> None:
        """A framing error: answer what we can, then close."""
        response = error_response(exc)
        slot = self._new_slot(conn, now)
        slot.fill(
            b"".join(self._response_payloads(response, close=True)),
            close_after=True,
        )
        conn.pump_ready(now)

    def _handle_request(
        self,
        conn: EventedConnection,
        slot: _ResponseSlot,
        request: HttpRequest,
        trace_id: str,
    ) -> None:
        """Worker-side: run the app, code the response, fill the slot."""
        obs = self._obs
        try:
            if obs is not None and trace_id:
                activate(obs.tracer, trace_id)
                try:
                    with obs.tracer.span(
                        "server.handle", trace_id, detail=request.path
                    ):
                        response = self._app(request)
                finally:
                    deactivate()
            else:
                response = self._app(request)
        except Exception as exc:  # app bug: report, keep serving
            response = HttpResponse(
                500,
                Headers({"Content-Type": "text/plain"}),
                f"internal error: {exc}".encode("utf-8"),
            )
        self._note_request_served()
        self._maybe_compress(request, response)
        if obs is not None and trace_id:
            send_mark = self._clock()
            payload, close_after = self._encode(conn, request, response)
            obs.tracer.record_span(
                "http.send",
                trace_id,
                send_mark,
                self._clock(),
                detail=f"{len(response.body)}B",
            )
            if obs.store is not None:
                # the loop only moves opaque bytes after this point:
                # the trace is over once the payload is coded
                obs.store.complete(trace_id, http_status=response.status)
        else:
            payload, close_after = self._encode(conn, request, response)
        slot.fill(payload, close_after=close_after)
        self._completions.append(conn)
        self._wake()

    def _encode(
        self,
        conn: EventedConnection,
        request: HttpRequest,
        response: HttpResponse,
    ) -> tuple[bytes, bool]:
        close = (
            not request.keep_alive
            or conn.close_after_write
            or self._stopping.is_set()
        )
        return (
            b"".join(self._response_payloads(response, close=close)),
            close,
        )

    def _complete_slot(
        self,
        conn: EventedConnection,
        slot: _ResponseSlot,
        request: HttpRequest,
        response: HttpResponse,
        *,
        now: float,
    ) -> None:
        """Loop-side slot fill (admin responses, stage sheds)."""
        payload, close_after = self._encode(conn, request, response)
        slot.fill(payload, close_after=close_after)
        if conn.pump_ready(now):
            self._flush_now(conn, now)

    # -- completions + write-back ---------------------------------------

    def _drain_completions(self, now: float) -> None:
        # No dedup: a worker may append the same connection again AFTER
        # an earlier pump_ready inspected its slots in this very drain,
        # and skipping that entry would consume the completion unpumped
        # (wakeup byte already drained, response never written — the
        # connection would hang forever).  pump_ready is idempotent and
        # O(1) when nothing is ready, so duplicates are cheap.
        pending = self._completions
        while pending:
            conn = pending.popleft()
            if self._connections.get(conn.sock.fileno()) is not conn:
                continue  # closed (or fd reused) while the worker ran
            if conn.pump_ready(now):
                self._flush_now(conn, now)

    def _flush_now(self, conn: EventedConnection, now: float) -> None:
        """Optimistic immediate flush; fall back to write interest."""
        try:
            drained = conn.flush(now)
        except _ConnectionLost:
            self._close_connection(conn)
            return
        if drained and conn.finished:
            self._close_connection(conn)
            return
        self._update_interest(conn)

    def _register(self, conn: EventedConnection, mask: int) -> None:
        assert self._selector is not None
        self._selector.register(conn.sock, mask, conn)
        self._masks[conn.sock.fileno()] = mask

    def _update_interest(self, conn: EventedConnection) -> None:
        assert self._selector is not None
        fileno = conn.sock.fileno()
        if fileno not in self._connections:
            return
        mask = 0
        if conn.want_read():
            mask |= selectors.EVENT_READ
        if conn.want_write():
            mask |= selectors.EVENT_WRITE
        current = self._masks.get(fileno, 0)
        if mask == current:
            return
        if mask == 0:
            # parked: pipelining maxed out and nothing to write yet —
            # the completion drain re-arms it
            self._selector.unregister(conn.sock)
        elif current == 0:
            self._selector.register(conn.sock, mask, conn)
        else:
            self._selector.modify(conn.sock, mask, conn)
        self._masks[fileno] = mask

    def _sweep_deadlines(self, now: float) -> None:
        expired = [
            conn
            for conn in self._connections.values()
            if conn.timed_out(now) is not None
        ]
        for conn in expired:
            if self._obs is not None:
                self._obs.registry.counter("http.connections.timed_out").inc()
            self._close_connection(conn)

    def _close_connection(self, conn: EventedConnection) -> None:
        fileno = conn.sock.fileno()
        if self._connections.pop(fileno, None) is None:
            return
        if self._masks.pop(fileno, 0):
            assert self._selector is not None
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._note_connection_closed()

    def _teardown(self) -> None:
        for conn in list(self._connections.values()):
            self._close_connection(conn)
        if self._selector is not None:
            self._selector.close()
        for sock in (self._listen_sock, self._wakeup_recv, self._wakeup_send):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
