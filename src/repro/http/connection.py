"""Client-side HTTP connections and a keep-alive connection pool."""

from __future__ import annotations

import threading

from repro.errors import HttpError, TransportError
from repro.http.message import HttpRequest, HttpResponse
from repro.http.parser import ChannelReader, read_response
from repro.transport.base import Address, Transport


class HttpConnection:
    """One HTTP/1.1 connection: serial request/response exchanges."""

    def __init__(self, transport: Transport, address: Address, *, timeout: float | None = 30.0) -> None:
        self._channel = transport.connect(address, timeout=timeout)
        self._reader = ChannelReader(self._channel)
        self._closed = False
        self._io_timeout_applied = False
        self.exchanges = 0

    def set_io_timeout(self, timeout: float | None) -> None:
        """Bound this connection's channel I/O (the deadline-rebase seam).

        ``None`` restores the channel's default blocking behaviour, but
        only if an explicit timeout was applied earlier — a pooled
        connection whose transport set its own ``io_timeout`` at connect
        time must not have it clobbered by a timeout-less caller.
        """
        if timeout is None and not self._io_timeout_applied:
            return
        self._channel.set_timeout(timeout)
        self._io_timeout_applied = timeout is not None

    def request(self, request: HttpRequest) -> HttpResponse:
        """One request/response exchange; honours keep-alive."""
        if self._closed:
            raise HttpError("request on closed connection")
        self._channel.sendall(request.to_bytes())
        response = read_response(self._reader)
        self.exchanges += 1
        if not response.keep_alive:
            self.close()
        return response

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the underlying channel; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._channel.close()

    def __enter__(self) -> "HttpConnection":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ConnectionPool:
    """Keep-alive pool, one bucket per address.

    The "No Optimization" baseline deliberately bypasses this pool
    (fresh connection per request, as the paper's first approach); the
    SPI client uses it so the single packed exchange reuses a warm
    connection when one exists.
    """

    def __init__(self, transport: Transport, *, max_idle_per_address: int = 8,
                 timeout: float | None = 30.0) -> None:
        self._transport = transport
        self._timeout = timeout
        self._max_idle = max_idle_per_address
        self._idle: dict[tuple, list[HttpConnection]] = {}
        self._lock = threading.Lock()
        self.connections_created = 0

    def acquire(self, address: Address) -> HttpConnection:
        """Check out an idle connection or open a new one."""
        key = self._key(address)
        with self._lock:
            bucket = self._idle.get(key)
            while bucket:
                connection = bucket.pop()
                if not connection.closed:
                    return connection
        connection = HttpConnection(self._transport, address, timeout=self._timeout)
        with self._lock:
            self.connections_created += 1
        return connection

    def release(self, address: Address, connection: HttpConnection) -> None:
        """Return a connection to the idle pool (or close it)."""
        if connection.closed:
            return
        key = self._key(address)
        with self._lock:
            bucket = self._idle.setdefault(key, [])
            if len(bucket) < self._max_idle:
                bucket.append(connection)
                return
        connection.close()

    def request(self, address: Address, request: HttpRequest) -> HttpResponse:
        """Checkout/checkin convenience; retries once if a pooled
        connection turns out to be dead."""
        for attempt in (0, 1):
            connection = self.acquire(address)
            try:
                response = connection.request(request)
            except (HttpError, TransportError):
                connection.close()
                if attempt or connection.exchanges == 0:
                    raise
                continue
            self.release(address, connection)
            return response
        raise HttpError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close every idle pooled connection."""
        with self._lock:
            buckets = list(self._idle.values())
            self._idle.clear()
        for bucket in buckets:
            for connection in bucket:
                connection.close()

    @staticmethod
    def _key(address: Address) -> tuple:
        return tuple(address) if isinstance(address, (list, tuple)) else (address,)
