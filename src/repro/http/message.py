"""HTTP/1.1 request and response models plus header handling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import HttpError

HTTP_VERSION = "HTTP/1.1"

REASON_PHRASES = {
    100: "Continue",
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Headers:
    """Case-insensitive, order-preserving HTTP header map.

    Stores single values per name (sufficient for the SOAP binding;
    ``add`` folds repeats with commas per RFC 7230 §3.2.2).
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: dict[str, str] | None = None) -> None:
        self._entries: dict[str, tuple[str, str]] = {}
        for name, value in (initial or {}).items():
            self.set(name, value)

    def set(self, name: str, value: str) -> None:
        """Set (replace) a header value."""
        self._entries[name.lower()] = (name, str(value))

    def add(self, name: str, value: str) -> None:
        """Add a value, comma-folding with any existing one (RFC 7230)."""
        key = name.lower()
        if key in self._entries:
            original, existing = self._entries[key]
            self._entries[key] = (original, f"{existing}, {value}")
        else:
            self._entries[key] = (name, value)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Value for ``name`` (case-insensitive), or ``default``."""
        entry = self._entries.get(name.lower())
        return entry[1] if entry is not None else default

    def get_token(self, name: str) -> str:
        """Lowercased, stripped value for a token-valued header.

        The case-insensitive lookup helper for headers whose *values*
        are case-insensitive tokens (``Connection``, ``Content-Encoding``,
        ``Transfer-Encoding``): one call replaces the
        ``(headers.get(...) or "").lower()`` pattern and removes the
        temptation to compare token values exact-case.
        """
        entry = self._entries.get(name.lower())
        return entry[1].strip().lower() if entry is not None else ""

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def remove(self, name: str) -> None:
        """Delete a header if present; idempotent."""
        self._entries.pop(name.lower(), None)

    def items(self) -> Iterator[tuple[str, str]]:
        """(original-case name, value) pairs in insertion order."""
        return iter(self._entries.values())

    def copy(self) -> "Headers":
        """Independent copy of this header map."""
        clone = Headers()
        clone._entries = dict(self._entries)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return f"Headers({dict(self.items())!r})"


def parse_qvalues(value: str | None) -> list[tuple[str, float]]:
    """Parse an ``Accept-Encoding``-style header into ``(token, q)`` pairs.

    Tokens are lowercased; quality values follow RFC 7231 §5.3.1
    (``q`` between 0 and 1, up to three decimals, defaulting to 1 when
    absent).  Malformed members are skipped rather than rejected —
    content negotiation headers come from arbitrary peers and a bad
    member must not fail the whole request.  Pairs are returned in
    header order; ties on ``q`` are broken by the caller's own
    preference order.
    """
    if not value:
        return []
    pairs: list[tuple[str, float]] = []
    for member in value.split(","):
        member = member.strip()
        if not member:
            continue
        token, _, params = member.partition(";")
        token = token.strip().lower()
        if not token:
            continue
        quality = 1.0
        ok = True
        for param in params.split(";") if params else []:
            name, sep, raw = param.partition("=")
            if name.strip().lower() != "q":
                continue  # unknown extension parameter: ignore
            try:
                quality = float(raw.strip()) if sep else 1.0
            except ValueError:
                ok = False
                break
            if not 0.0 <= quality <= 1.0:
                ok = False
                break
        if ok:
            pairs.append((token, quality))
    return pairs


@dataclass(slots=True)
class HttpRequest:
    method: str = "POST"
    path: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = HTTP_VERSION

    def to_bytes(self) -> bytes:
        """Serialize head+body with a correct Content-Length."""
        headers = self.headers.copy()
        headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.method} {self.path} {self.version}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        return head + self.body

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get_token("Connection")
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(slots=True)
class HttpResponse:
    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    reason: str = ""
    version: str = HTTP_VERSION

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = REASON_PHRASES.get(self.status, "Unknown")

    def to_bytes(self) -> bytes:
        """Serialize head+body with a correct Content-Length."""
        headers = self.headers.copy()
        headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.version} {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        return head + self.body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def raise_for_status(self) -> "HttpResponse":
        """Return self on 2xx; raise HttpError otherwise."""
        if not self.ok:
            raise HttpError(
                f"HTTP {self.status} {self.reason}: {self.body[:200]!r}",
                status=self.status,
            )
        return self

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get_token("Connection")
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"
