"""HTTP/1.1 request and response models plus header handling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import HttpError

HTTP_VERSION = "HTTP/1.1"

REASON_PHRASES = {
    100: "Continue",
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Headers:
    """Case-insensitive, order-preserving HTTP header map.

    Stores single values per name (sufficient for the SOAP binding;
    ``add`` folds repeats with commas per RFC 7230 §3.2.2).
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: dict[str, str] | None = None) -> None:
        self._entries: dict[str, tuple[str, str]] = {}
        for name, value in (initial or {}).items():
            self.set(name, value)

    def set(self, name: str, value: str) -> None:
        """Set (replace) a header value."""
        self._entries[name.lower()] = (name, str(value))

    def add(self, name: str, value: str) -> None:
        """Add a value, comma-folding with any existing one (RFC 7230)."""
        key = name.lower()
        if key in self._entries:
            original, existing = self._entries[key]
            self._entries[key] = (original, f"{existing}, {value}")
        else:
            self._entries[key] = (name, value)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Value for ``name`` (case-insensitive), or ``default``."""
        entry = self._entries.get(name.lower())
        return entry[1] if entry is not None else default

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def remove(self, name: str) -> None:
        """Delete a header if present; idempotent."""
        self._entries.pop(name.lower(), None)

    def items(self) -> Iterator[tuple[str, str]]:
        """(original-case name, value) pairs in insertion order."""
        return iter(self._entries.values())

    def copy(self) -> "Headers":
        """Independent copy of this header map."""
        clone = Headers()
        clone._entries = dict(self._entries)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return f"Headers({dict(self.items())!r})"


@dataclass(slots=True)
class HttpRequest:
    method: str = "POST"
    path: str = "/"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = HTTP_VERSION

    def to_bytes(self) -> bytes:
        """Serialize head+body with a correct Content-Length."""
        headers = self.headers.copy()
        headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.method} {self.path} {self.version}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        return head + self.body

    @property
    def keep_alive(self) -> bool:
        connection = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(slots=True)
class HttpResponse:
    status: int = 200
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    reason: str = ""
    version: str = HTTP_VERSION

    def __post_init__(self) -> None:
        if not self.reason:
            self.reason = REASON_PHRASES.get(self.status, "Unknown")

    def to_bytes(self) -> bytes:
        """Serialize head+body with a correct Content-Length."""
        headers = self.headers.copy()
        headers.set("Content-Length", str(len(self.body)))
        lines = [f"{self.version} {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
        return head + self.body

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def raise_for_status(self) -> "HttpResponse":
        """Return self on 2xx; raise HttpError otherwise."""
        if not self.ok:
            raise HttpError(
                f"HTTP {self.status} {self.reason}: {self.body[:200]!r}",
                status=self.status,
            )
        return self

    @property
    def keep_alive(self) -> bool:
        connection = (self.headers.get("Connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"
