"""Threaded HTTP/1.1 server over a :class:`~repro.transport.base.Transport`.

The server is architecture-agnostic: it owns accept + connection
handling and delegates each parsed request to an application callable
``app(HttpRequest) -> HttpResponse``.  The paper's two architectures
differ in what happens *inside* that callable:

* common architecture (Fig. 1): the connection thread itself performs
  SOAP parsing and service execution — protocol and application
  processing coupled in one thread;
* staged architecture (Fig. 2): the callable parses, hands work to the
  application-stage pool and parks until the response is assembled.

Everything that is not thread-per-connection I/O — the admin surface,
compression negotiation, response wire coding, connection counters —
lives in :class:`~repro.http.core.HttpServerCore`, shared with the
event-loop backend in :mod:`repro.http.evented`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import HttpError, TransportError
from repro.http.compression import CompressionPolicy
from repro.http.core import (
    ADMIN_PATHS,
    TRACE_PATH_PREFIX,
    HttpServerCore,
    chunked_head as _chunked_head,
    error_response as _error_response,
)
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import ChannelReader, ConnectionClosedCleanly, read_request
from repro.obs.trace import (
    TRACE_HTTP_HEADER,
    Observability,
    activate,
    deactivate,
    new_trace_id,
)
from repro.transport.base import Address, Channel, Listener, ListenerClosed, Transport

App = Callable[[HttpRequest], HttpResponse]

__all__ = ["ADMIN_PATHS", "TRACE_PATH_PREFIX", "App", "HttpServer"]


class HttpServer(HttpServerCore):
    """Accepts connections and runs one handler thread per connection.

    Connection threads come from an unbounded-but-recycled set: the
    paper's "thread pool created in the transport layer".  Keep-alive
    is honoured, so a client doing M serial requests on one connection
    stays on one server thread.
    """

    def __init__(
        self,
        app: App,
        *,
        transport: Transport,
        address: Address,
        server_header: str = "repro-httpd/1.0",
        chunk_responses_over: int | None = None,
        chunk_size: int = 8192,
        max_connections: int | None = None,
        observability: Observability | None = None,
        compression: CompressionPolicy | None = None,
        slo_config: dict | None = None,
    ) -> None:
        """``chunk_responses_over``: when set, response bodies larger
        than this many bytes are sent with chunked transfer encoding —
        the "message chunking and streaming" optimization of Chiu et
        al. (HPDC-11), letting the client start parsing before the full
        body has been produced.

        ``max_connections`` bounds the protocol stage: at most this many
        connections are serviced concurrently ("too many concurrent
        threads will degrade throughput rapidly", §3.3); excess
        connections wait in the accept backlog.

        ``observability`` lights up tracing and the admin surface: each
        request gets ``http.parse``/``http.send`` spans on the trace
        named by its ``X-Repro-Trace-Id`` header (a fresh id is minted
        for untraced requests), the app callable runs inside a
        ``server.handle`` root span with the trace context active (so
        phase spans tree under it), and ``GET /metrics`` / ``GET
        /healthz`` / ``GET /traces`` / ``GET /trace/<id>`` / ``GET
        /slo`` return JSON without entering the app.  When the
        observability bundle carries a
        :class:`~repro.obs.store.SpanStore`, every traced response also
        completes its trace there (status-aware, so 503/504/5xx mark
        shed/deadline/fault).  Without observability the seed code path
        runs unchanged.

        ``slo_config``: a parsed ``slo.json`` document; when present
        (and observability is on) ``GET /slo`` evaluates the config's
        ``"live"`` budgets against the current metrics snapshot.

        ``compression``: when set, response bodies at least
        ``compression.min_size`` bytes long are content-coded with the
        best coding the request's ``Accept-Encoding`` admits (identity
        when it admits none, or when coding would grow the body).
        Compression runs before chunking, so both compose.  ``None``
        (the default) keeps the seed wire format byte-for-byte.
        """
        super().__init__(
            app,
            transport=transport,
            address=address,
            server_header=server_header,
            chunk_responses_over=chunk_responses_over,
            chunk_size=chunk_size,
            observability=observability,
            compression=compression,
            slo_config=slo_config,
        )
        self._connection_slots = (
            threading.Semaphore(max_connections) if max_connections else None
        )
        self._listener: Listener | None = None
        self._accept_thread: threading.Thread | None = None
        self._connection_threads: set[threading.Thread] = set()
        self._threads_lock = threading.Lock()
        self._stopping = threading.Event()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> Address:
        """Bind, start accepting; returns the bound address."""
        if self._listener is not None:
            raise HttpError("server already started")
        self._listener = self._transport.listen(self._bind_address)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="http-accept", daemon=True
        )
        self._accept_thread.start()
        return self._listener.address

    def stop(self, *, join_timeout: float = 5.0) -> None:
        """Close the listener and join worker threads."""
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=join_timeout)
        with self._threads_lock:
            threads = list(self._connection_threads)
        for thread in threads:
            thread.join(timeout=join_timeout)

    @property
    def address(self) -> Address:
        if self._listener is None:
            raise HttpError("server not started")
        return self._listener.address

    # -- internals ----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            if self._connection_slots is not None:
                # bound the protocol stage: wait for a free slot before
                # accepting (excess peers queue in the kernel backlog)
                while not self._connection_slots.acquire(timeout=0.1):
                    if self._stopping.is_set():
                        return
            try:
                channel = self._listener.accept()
            except ListenerClosed:
                self._release_slot()
                return
            except TransportError:
                self._release_slot()
                if self._stopping.is_set():
                    return
                continue
            self._note_connection_opened()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name="http-conn",
                daemon=True,
            )
            with self._threads_lock:
                self._connection_threads.add(thread)
            thread.start()

    def _serve_connection(self, channel: Channel) -> None:
        reader = ChannelReader(channel)
        obs = self._obs
        try:
            while not self._stopping.is_set():
                # With obs on, the parse span starts here; on a fresh
                # connection that is the moment bytes become readable,
                # on a reused keep-alive connection it includes client
                # think time between requests.
                parse_start = time.perf_counter() if obs is not None else 0.0
                try:
                    request = read_request(reader)
                except ConnectionClosedCleanly:
                    return
                except HttpError as exc:
                    self._send(channel, _error_response(exc), close=True)
                    return
                except TransportError:
                    return

                trace_id = ""
                if obs is not None:
                    admin = self._admin_response(request)
                    if admin is not None:
                        self._note_request_served()
                        keep_alive = request.keep_alive and not self._stopping.is_set()
                        self._maybe_compress(request, admin)
                        self._send(channel, admin, close=not keep_alive)
                        if not keep_alive:
                            return
                        continue
                    trace_id = (
                        request.headers.get(TRACE_HTTP_HEADER) or new_trace_id()
                    )
                    obs.tracer.record_span(
                        "http.parse",
                        trace_id,
                        parse_start,
                        time.perf_counter(),
                        detail=request.path,
                    )
                    obs.registry.counter("http.requests").inc()
                    activate(obs.tracer, trace_id)
                try:
                    if obs is not None:
                        # the root span of the handling tree: phase
                        # spans opened inside the app (soap.parse,
                        # spi.unpack, execute x M, ...) parent under it
                        # via the thread's ambient span stack
                        with obs.tracer.span(
                            "server.handle", trace_id, detail=request.path
                        ):
                            response = self._app(request)
                    else:
                        response = self._app(request)
                except Exception as exc:  # app bug: report, keep serving
                    response = HttpResponse(
                        500, Headers({"Content-Type": "text/plain"}),
                        f"internal error: {exc}".encode("utf-8"),
                    )
                finally:
                    if obs is not None:
                        deactivate()
                self._note_request_served()
                self._maybe_compress(request, response)

                keep_alive = request.keep_alive and not self._stopping.is_set()
                if obs is not None:
                    with obs.tracer.span(
                        "http.send", trace_id, detail=f"{len(response.body)}B"
                    ):
                        self._send(channel, response, close=not keep_alive)
                    if obs.store is not None:
                        # the trace is over once the bytes are on the
                        # wire: run the tail-sampling decision now,
                        # status-aware (503 shed / 504 deadline / 4xx+
                        # fault)
                        obs.store.complete(
                            trace_id, http_status=response.status
                        )
                else:
                    self._send(channel, response, close=not keep_alive)
                if not keep_alive:
                    return
        finally:
            channel.close()
            self._note_connection_closed()
            self._release_slot()
            with self._threads_lock:
                self._connection_threads.discard(threading.current_thread())

    def _release_slot(self) -> None:
        if self._connection_slots is not None:
            self._connection_slots.release()

    def _send(self, channel: Channel, response: HttpResponse, *, close: bool) -> None:
        try:
            # one sendall per payload: the shaped transport prices each
            # sendall, so chunked framing keeps its per-frame cost
            for payload in self._response_payloads(response, close=close):
                channel.sendall(payload)
        except TransportError:
            pass
