"""Threaded HTTP/1.1 server over a :class:`~repro.transport.base.Transport`.

The server is architecture-agnostic: it owns accept + connection
handling and delegates each parsed request to an application callable
``app(HttpRequest) -> HttpResponse``.  The paper's two architectures
differ in what happens *inside* that callable:

* common architecture (Fig. 1): the connection thread itself performs
  SOAP parsing and service execution — protocol and application
  processing coupled in one thread;
* staged architecture (Fig. 2): the callable parses, hands work to the
  application-stage pool and parks until the response is assembled.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from typing import Callable, Iterator

from repro.errors import HttpError, TransportError
from repro.http.compression import CompressionPolicy, choose_encoding, compress
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import ChannelReader, ConnectionClosedCleanly, read_request
from repro.obs.trace import (
    TRACE_HTTP_HEADER,
    Observability,
    activate,
    deactivate,
    new_trace_id,
)
from repro.transport.base import Address, Channel, Listener, ListenerClosed, Transport

App = Callable[[HttpRequest], HttpResponse]

ADMIN_PATHS = ("/metrics", "/healthz", "/traces", "/slo")

#: ``GET /trace/<id>`` serves one retained trace's span tree.
TRACE_PATH_PREFIX = "/trace/"


class HttpServer:
    """Accepts connections and runs one handler thread per connection.

    Connection threads come from an unbounded-but-recycled set: the
    paper's "thread pool created in the transport layer".  Keep-alive
    is honoured, so a client doing M serial requests on one connection
    stays on one server thread.
    """

    def __init__(
        self,
        app: App,
        *,
        transport: Transport,
        address: Address,
        server_header: str = "repro-httpd/1.0",
        chunk_responses_over: int | None = None,
        chunk_size: int = 8192,
        max_connections: int | None = None,
        observability: Observability | None = None,
        compression: CompressionPolicy | None = None,
        slo_config: dict | None = None,
    ) -> None:
        """``chunk_responses_over``: when set, response bodies larger
        than this many bytes are sent with chunked transfer encoding —
        the "message chunking and streaming" optimization of Chiu et
        al. (HPDC-11), letting the client start parsing before the full
        body has been produced.

        ``max_connections`` bounds the protocol stage: at most this many
        connections are serviced concurrently ("too many concurrent
        threads will degrade throughput rapidly", §3.3); excess
        connections wait in the accept backlog.

        ``observability`` lights up tracing and the admin surface: each
        request gets ``http.parse``/``http.send`` spans on the trace
        named by its ``X-Repro-Trace-Id`` header (a fresh id is minted
        for untraced requests), the app callable runs inside a
        ``server.handle`` root span with the trace context active (so
        phase spans tree under it), and ``GET /metrics`` / ``GET
        /healthz`` / ``GET /traces`` / ``GET /trace/<id>`` / ``GET
        /slo`` return JSON without entering the app.  When the
        observability bundle carries a
        :class:`~repro.obs.store.SpanStore`, every traced response also
        completes its trace there (status-aware, so 503/504/5xx mark
        shed/deadline/fault).  Without observability the seed code path
        runs unchanged.

        ``slo_config``: a parsed ``slo.json`` document; when present
        (and observability is on) ``GET /slo`` evaluates the config's
        ``"live"`` budgets against the current metrics snapshot.

        ``compression``: when set, response bodies at least
        ``compression.min_size`` bytes long are content-coded with the
        best coding the request's ``Accept-Encoding`` admits (identity
        when it admits none, or when coding would grow the body).
        Compression runs before chunking, so both compose.  ``None``
        (the default) keeps the seed wire format byte-for-byte.
        """
        self._app = app
        self._obs = observability
        self._slo_config = slo_config
        # Monotonic anchor: /healthz uptime is an interval measurement.
        self._started_at = time.monotonic()
        self._transport = transport
        self._bind_address = address
        self._server_header = server_header
        self._chunk_over = chunk_responses_over
        self._chunk_size = chunk_size
        self._compression = compression
        self._connection_slots = (
            threading.Semaphore(max_connections) if max_connections else None
        )
        self.max_concurrent_connections = 0
        self._current_connections = 0
        self._listener: Listener | None = None
        self._accept_thread: threading.Thread | None = None
        self._connection_threads: set[threading.Thread] = set()
        self._threads_lock = threading.Lock()
        self._stopping = threading.Event()
        self.connections_accepted = 0
        self.requests_served = 0
        self._counter_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> Address:
        """Bind, start accepting; returns the bound address."""
        if self._listener is not None:
            raise HttpError("server already started")
        self._listener = self._transport.listen(self._bind_address)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="http-accept", daemon=True
        )
        self._accept_thread.start()
        return self._listener.address

    def stop(self, *, join_timeout: float = 5.0) -> None:
        """Close the listener and join worker threads."""
        self._stopping.set()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=join_timeout)
        with self._threads_lock:
            threads = list(self._connection_threads)
        for thread in threads:
            thread.join(timeout=join_timeout)

    @contextlib.contextmanager
    def running(self) -> Iterator[Address]:
        """Context manager: start, yield the bound address, stop."""
        address = self.start()
        try:
            yield address
        finally:
            self.stop()

    @property
    def address(self) -> Address:
        if self._listener is None:
            raise HttpError("server not started")
        return self._listener.address

    # -- internals ----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            if self._connection_slots is not None:
                # bound the protocol stage: wait for a free slot before
                # accepting (excess peers queue in the kernel backlog)
                while not self._connection_slots.acquire(timeout=0.1):
                    if self._stopping.is_set():
                        return
            try:
                channel = self._listener.accept()
            except ListenerClosed:
                self._release_slot()
                return
            except TransportError:
                self._release_slot()
                if self._stopping.is_set():
                    return
                continue
            with self._counter_lock:
                self.connections_accepted += 1
                self._current_connections += 1
                if self._current_connections > self.max_concurrent_connections:
                    self.max_concurrent_connections = self._current_connections
                active = self._current_connections
            if self._obs is not None:
                self._obs.registry.gauge("http.connections.active").set(active)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name="http-conn",
                daemon=True,
            )
            with self._threads_lock:
                self._connection_threads.add(thread)
            thread.start()

    def _serve_connection(self, channel: Channel) -> None:
        reader = ChannelReader(channel)
        obs = self._obs
        try:
            while not self._stopping.is_set():
                # With obs on, the parse span starts here; on a fresh
                # connection that is the moment bytes become readable,
                # on a reused keep-alive connection it includes client
                # think time between requests.
                parse_start = time.perf_counter() if obs is not None else 0.0
                try:
                    request = read_request(reader)
                except ConnectionClosedCleanly:
                    return
                except HttpError as exc:
                    self._send(channel, _error_response(exc), close=True)
                    return
                except TransportError:
                    return

                trace_id = ""
                if obs is not None:
                    admin = self._admin_response(request)
                    if admin is not None:
                        with self._counter_lock:
                            self.requests_served += 1
                        keep_alive = request.keep_alive and not self._stopping.is_set()
                        self._maybe_compress(request, admin)
                        self._send(channel, admin, close=not keep_alive)
                        if not keep_alive:
                            return
                        continue
                    trace_id = (
                        request.headers.get(TRACE_HTTP_HEADER) or new_trace_id()
                    )
                    obs.tracer.record_span(
                        "http.parse",
                        trace_id,
                        parse_start,
                        time.perf_counter(),
                        detail=request.path,
                    )
                    obs.registry.counter("http.requests").inc()
                    activate(obs.tracer, trace_id)
                try:
                    if obs is not None:
                        # the root span of the handling tree: phase
                        # spans opened inside the app (soap.parse,
                        # spi.unpack, execute x M, ...) parent under it
                        # via the thread's ambient span stack
                        with obs.tracer.span(
                            "server.handle", trace_id, detail=request.path
                        ):
                            response = self._app(request)
                    else:
                        response = self._app(request)
                except Exception as exc:  # app bug: report, keep serving
                    response = HttpResponse(
                        500, Headers({"Content-Type": "text/plain"}),
                        f"internal error: {exc}".encode("utf-8"),
                    )
                finally:
                    if obs is not None:
                        deactivate()
                with self._counter_lock:
                    self.requests_served += 1
                self._maybe_compress(request, response)

                keep_alive = request.keep_alive and not self._stopping.is_set()
                if obs is not None:
                    with obs.tracer.span(
                        "http.send", trace_id, detail=f"{len(response.body)}B"
                    ):
                        self._send(channel, response, close=not keep_alive)
                    if obs.store is not None:
                        # the trace is over once the bytes are on the
                        # wire: run the tail-sampling decision now,
                        # status-aware (503 shed / 504 deadline / 4xx+
                        # fault)
                        obs.store.complete(
                            trace_id, http_status=response.status
                        )
                else:
                    self._send(channel, response, close=not keep_alive)
                if not keep_alive:
                    return
        finally:
            channel.close()
            with self._counter_lock:
                self._current_connections -= 1
                active = self._current_connections
            if obs is not None:
                obs.registry.gauge("http.connections.active").set(active)
            self._release_slot()
            with self._threads_lock:
                self._connection_threads.discard(threading.current_thread())

    # -- admin surface ------------------------------------------------------

    def _admin_response(self, request: HttpRequest) -> HttpResponse | None:
        """The admin surface: ``GET /metrics`` / ``/healthz`` /
        ``/traces`` / ``/trace/<id>`` / ``/slo``; None otherwise.

        ``/metrics`` defaults to the JSON snapshot;
        ``/metrics?format=prometheus`` renders the text exposition
        format a stock Prometheus can scrape.  ``/traces?slowest=N``
        lists retained trace summaries, ``/trace/<id>`` one trace's
        span tree, ``/slo`` the live budget verdict.
        """
        if request.method != "GET":
            return None
        path, _, query = request.path.partition("?")
        if path not in ADMIN_PATHS and not path.startswith(TRACE_PATH_PREFIX):
            return None
        assert self._obs is not None
        status = 200
        if path == "/healthz":
            payload = self.health_snapshot()
        elif path == "/traces":
            status, payload = self._traces_payload(query)
        elif path.startswith(TRACE_PATH_PREFIX):
            status, payload = self._trace_payload(path[len(TRACE_PATH_PREFIX):])
        elif path == "/slo":
            status, payload = self._slo_payload()
        elif "format=prometheus" in query.split("&"):
            from repro.obs.prometheus import CONTENT_TYPE, render_prometheus

            return HttpResponse(
                200,
                Headers({"Content-Type": CONTENT_TYPE}),
                render_prometheus(self._obs.registry).encode("utf-8"),
            )
        else:
            payload = self._obs.metrics_snapshot()
        return HttpResponse(
            status,
            Headers({"Content-Type": "application/json"}),
            json.dumps(payload, indent=2).encode("utf-8"),
        )

    def _traces_payload(self, query: str) -> tuple[int, dict]:
        store = self._obs.store if self._obs is not None else None
        if store is None:
            return 404, {"error": "span store not enabled"}
        slowest = 20
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name == "slowest" and value.isdigit():
                slowest = int(value)
        return 200, {"traces": store.slowest(slowest), "stats": store.stats()}

    def _trace_payload(self, trace_id: str) -> tuple[int, dict]:
        store = self._obs.store if self._obs is not None else None
        if store is None:
            return 404, {"error": "span store not enabled"}
        tree = store.get(trace_id)
        if tree is None:
            return 404, {"error": f"trace {trace_id!r} not retained"}
        return 200, tree

    def _slo_payload(self) -> tuple[int, dict]:
        if self._slo_config is None:
            return 404, {"error": "no slo config loaded"}
        from repro.obs.slo import evaluate_snapshot, summarize

        checks = evaluate_snapshot(
            self._slo_config, self._obs.metrics_snapshot()
        )
        return 200, summarize(checks)

    def health_snapshot(self) -> dict:
        """The ``/healthz`` document: liveness plus connection counters."""
        with self._counter_lock:
            return {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "connections_accepted": self.connections_accepted,
                "current_connections": self._current_connections,
                "max_concurrent_connections": self.max_concurrent_connections,
                "requests_served": self.requests_served,
            }

    def _release_slot(self) -> None:
        if self._connection_slots is not None:
            self._connection_slots.release()

    def _maybe_compress(self, request: HttpRequest, response: HttpResponse) -> None:
        """Content-code the response in place when negotiation allows it.

        Identity is kept for small bodies, for codings the client did
        not accept, for already-coded responses, and when coding would
        not actually shrink the body (incompressible payloads).
        """
        policy = self._compression
        if (
            policy is None
            or len(response.body) < policy.min_size
            or "Content-Encoding" in response.headers
        ):
            return
        encoding = choose_encoding(
            request.headers.get("Accept-Encoding"), policy
        )
        if encoding is None:
            return
        raw_size = len(response.body)
        coded = compress(response.body, encoding, level=policy.level)
        if len(coded) >= raw_size:
            return
        response.body = coded
        response.headers.set("Content-Encoding", encoding)
        response.headers.set("Vary", "Accept-Encoding")
        if self._obs is not None:
            registry = self._obs.registry
            registry.counter("compress.responses").inc()
            registry.counter("compress.bytes_saved").inc(raw_size - len(coded))

    def _send(self, channel: Channel, response: HttpResponse, *, close: bool) -> None:
        response.headers.set("Server", self._server_header)
        response.headers.set("Connection", "close" if close else "keep-alive")
        try:
            if self._chunk_over is not None and len(response.body) > self._chunk_over:
                channel.sendall(_chunked_head(response))
                body = response.body
                for offset in range(0, len(body), self._chunk_size):
                    chunk = body[offset : offset + self._chunk_size]
                    channel.sendall(
                        f"{len(chunk):x}\r\n".encode("ascii") + chunk + b"\r\n"
                    )
                channel.sendall(b"0\r\n\r\n")
            else:
                channel.sendall(response.to_bytes())
        except TransportError:
            pass


def _chunked_head(response: HttpResponse) -> bytes:
    headers = response.headers.copy()
    headers.remove("Content-Length")
    headers.set("Transfer-Encoding", "chunked")
    lines = [f"{response.version} {response.status} {response.reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"


def _error_response(exc: HttpError) -> HttpResponse:
    status = exc.status or 400
    return HttpResponse(
        status,
        Headers({"Content-Type": "text/plain"}),
        str(exc).encode("utf-8"),
    )
