"""From-scratch HTTP/1.1: messages, incremental parser, client, server."""

from repro.http.connection import ConnectionPool, HttpConnection
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import (
    ChannelReader,
    ConnectionClosedCleanly,
    RequestParser,
    encode_chunked,
    read_request,
    read_response,
)
from repro.http.evented import EventedHttpServer
from repro.http.server import HttpServer

__all__ = [
    "ChannelReader",
    "ConnectionClosedCleanly",
    "ConnectionPool",
    "EventedHttpServer",
    "Headers",
    "HttpConnection",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "RequestParser",
    "encode_chunked",
    "read_request",
    "read_response",
]
