"""From-scratch HTTP/1.1: messages, incremental parser, client, server."""

from repro.http.connection import ConnectionPool, HttpConnection
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.http.parser import (
    ChannelReader,
    ConnectionClosedCleanly,
    encode_chunked,
    read_request,
    read_response,
)
from repro.http.server import HttpServer

__all__ = [
    "ChannelReader",
    "ConnectionClosedCleanly",
    "ConnectionPool",
    "Headers",
    "HttpConnection",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "encode_chunked",
    "read_request",
    "read_response",
]
