"""Backend-agnostic core shared by the threaded and evented HTTP servers.

:class:`HttpServerCore` owns everything that does not depend on *how*
bytes move: the admin surface (``/metrics``, ``/healthz``, ``/traces``,
``/trace/<id>``, ``/slo``), content-coding negotiation, response wire
encoding (including the chunked-transfer framing of the HPDC-11
"message chunking" optimization), the connection/request counters
behind ``/healthz``, and the canned accept-overload 503.  The two
backends differ only in their I/O discipline:

* :class:`~repro.http.server.HttpServer` — one blocking handler thread
  per connection (the paper's "thread pool created in the transport
  layer");
* :class:`~repro.http.evented.EventedHttpServer` — one ``selectors``
  event loop owning accept/parse/write for every connection, with
  application work dispatched to bounded stages (SEDA lineage).
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from typing import Callable, Iterator

from repro.errors import HttpError
from repro.http.compression import CompressionPolicy, choose_encoding, compress
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.obs.trace import Observability
from repro.transport.base import Address, Transport

App = Callable[[HttpRequest], HttpResponse]

ADMIN_PATHS = ("/metrics", "/healthz", "/traces", "/slo")

#: ``GET /trace/<id>`` serves one retained trace's span tree.
TRACE_PATH_PREFIX = "/trace/"


class HttpServerCore:
    """Shared state + behaviour for both server backends.

    Subclasses implement :meth:`start` / :meth:`stop` and the I/O path;
    they report traffic through :meth:`_note_connection_opened` /
    :meth:`_note_connection_closed` / :meth:`_note_request_served` so
    ``/healthz`` and the ``http.connections.active`` gauge agree across
    backends.
    """

    def __init__(
        self,
        app: App,
        *,
        transport: Transport,
        address: Address,
        server_header: str = "repro-httpd/1.0",
        chunk_responses_over: int | None = None,
        chunk_size: int = 8192,
        observability: Observability | None = None,
        compression: CompressionPolicy | None = None,
        slo_config: dict | None = None,
    ) -> None:
        self._app = app
        self._obs = observability
        self._slo_config = slo_config
        # Monotonic anchor: /healthz uptime is an interval measurement.
        self._started_at = time.monotonic()
        self._transport = transport
        self._bind_address = address
        self._server_header = server_header
        self._chunk_over = chunk_responses_over
        self._chunk_size = chunk_size
        self._compression = compression
        self.max_concurrent_connections = 0
        self._current_connections = 0
        self.connections_accepted = 0
        self.requests_served = 0
        self._counter_lock = threading.Lock()
        self._busy_body: tuple[str, bytes] | None = None

    # -- lifecycle (subclass responsibility) ----------------------------

    def start(self) -> Address:
        """Bind, start serving; returns the bound address."""
        raise NotImplementedError

    def stop(self, *, join_timeout: float = 5.0) -> None:
        """Stop serving and release resources."""
        raise NotImplementedError

    @contextlib.contextmanager
    def running(self) -> Iterator[Address]:
        """Context manager: start, yield the bound address, stop."""
        address = self.start()
        try:
            yield address
        finally:
            self.stop()

    # -- traffic accounting ---------------------------------------------

    def _note_connection_opened(self) -> int:
        """Count an accepted connection; returns the active count."""
        with self._counter_lock:
            self.connections_accepted += 1
            self._current_connections += 1
            if self._current_connections > self.max_concurrent_connections:
                self.max_concurrent_connections = self._current_connections
            active = self._current_connections
        if self._obs is not None:
            self._obs.registry.gauge("http.connections.active").set(active)
        return active

    def _note_connection_closed(self) -> int:
        with self._counter_lock:
            self._current_connections -= 1
            active = self._current_connections
        if self._obs is not None:
            self._obs.registry.gauge("http.connections.active").set(active)
        return active

    def _note_request_served(self) -> None:
        with self._counter_lock:
            self.requests_served += 1

    # -- admin surface --------------------------------------------------

    def _admin_response(self, request: HttpRequest) -> HttpResponse | None:
        """The admin surface: ``GET /metrics`` / ``/healthz`` /
        ``/traces`` / ``/trace/<id>`` / ``/slo``; None otherwise.

        ``/metrics`` defaults to the JSON snapshot;
        ``/metrics?format=prometheus`` renders the text exposition
        format a stock Prometheus can scrape.  ``/traces?slowest=N``
        lists retained trace summaries, ``/trace/<id>`` one trace's
        span tree, ``/slo`` the live budget verdict.
        """
        if request.method != "GET":
            return None
        path, _, query = request.path.partition("?")
        if path not in ADMIN_PATHS and not path.startswith(TRACE_PATH_PREFIX):
            return None
        assert self._obs is not None
        status = 200
        if path == "/healthz":
            payload = self.health_snapshot()
        elif path == "/traces":
            status, payload = self._traces_payload(query)
        elif path.startswith(TRACE_PATH_PREFIX):
            status, payload = self._trace_payload(path[len(TRACE_PATH_PREFIX):])
        elif path == "/slo":
            status, payload = self._slo_payload()
        elif "format=prometheus" in query.split("&"):
            from repro.obs.prometheus import CONTENT_TYPE, render_prometheus

            return HttpResponse(
                200,
                Headers({"Content-Type": CONTENT_TYPE}),
                render_prometheus(self._obs.registry).encode("utf-8"),
            )
        else:
            payload = self._obs.metrics_snapshot()
        return HttpResponse(
            status,
            Headers({"Content-Type": "application/json"}),
            json.dumps(payload, indent=2).encode("utf-8"),
        )

    def _traces_payload(self, query: str) -> tuple[int, dict]:
        store = self._obs.store if self._obs is not None else None
        if store is None:
            return 404, {"error": "span store not enabled"}
        slowest = 20
        for part in query.split("&"):
            name, _, value = part.partition("=")
            if name == "slowest" and value.isdigit():
                slowest = int(value)
        return 200, {"traces": store.slowest(slowest), "stats": store.stats()}

    def _trace_payload(self, trace_id: str) -> tuple[int, dict]:
        store = self._obs.store if self._obs is not None else None
        if store is None:
            return 404, {"error": "span store not enabled"}
        tree = store.get(trace_id)
        if tree is None:
            return 404, {"error": f"trace {trace_id!r} not retained"}
        return 200, tree

    def _slo_payload(self) -> tuple[int, dict]:
        if self._slo_config is None:
            return 404, {"error": "no slo config loaded"}
        from repro.obs.slo import evaluate_snapshot, summarize

        checks = evaluate_snapshot(
            self._slo_config, self._obs.metrics_snapshot()
        )
        return 200, summarize(checks)

    def health_snapshot(self) -> dict:
        """The ``/healthz`` document: liveness plus connection counters."""
        with self._counter_lock:
            return {
                "status": "ok",
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "connections_accepted": self.connections_accepted,
                "current_connections": self._current_connections,
                "max_concurrent_connections": self.max_concurrent_connections,
                "requests_served": self.requests_served,
            }

    # -- response coding ------------------------------------------------

    def _maybe_compress(self, request: HttpRequest, response: HttpResponse) -> None:
        """Content-code the response in place when negotiation allows it.

        Identity is kept for small bodies, for codings the client did
        not accept, for already-coded responses, and when coding would
        not actually shrink the body (incompressible payloads).
        """
        policy = self._compression
        if (
            policy is None
            or len(response.body) < policy.min_size
            or "Content-Encoding" in response.headers
        ):
            return
        encoding = choose_encoding(
            request.headers.get("Accept-Encoding"), policy
        )
        if encoding is None:
            return
        raw_size = len(response.body)
        coded = compress(response.body, encoding, level=policy.level)
        if len(coded) >= raw_size:
            return
        response.body = coded
        response.headers.set("Content-Encoding", encoding)
        response.headers.set("Vary", "Accept-Encoding")
        if self._obs is not None:
            registry = self._obs.registry
            registry.counter("compress.responses").inc()
            registry.counter("compress.bytes_saved").inc(raw_size - len(coded))

    def _response_payloads(
        self, response: HttpResponse, *, close: bool
    ) -> list[bytes]:
        """The response as an ordered list of wire writes.

        Chunked responses come back as ``[head, frame, frame, ...,
        terminator]`` so the threaded backend can keep its one-sendall-
        per-frame discipline (the shaped transport prices each sendall);
        the evented backend joins the list into one write buffer.
        """
        response.headers.set("Server", self._server_header)
        response.headers.set("Connection", "close" if close else "keep-alive")
        if self._chunk_over is not None and len(response.body) > self._chunk_over:
            payloads = [chunked_head(response)]
            body = response.body
            for offset in range(0, len(body), self._chunk_size):
                chunk = body[offset : offset + self._chunk_size]
                payloads.append(
                    f"{len(chunk):x}\r\n".encode("ascii") + chunk + b"\r\n"
                )
            payloads.append(b"0\r\n\r\n")
            return payloads
        return [response.to_bytes()]

    def make_busy_response(self, detail: str) -> HttpResponse:
        """The accept-overload 503 sent before any parsing happens.

        Plain text by default; the ``repro.server`` config layer swaps
        in a SOAP ``Server.Busy`` fault body via ``busy_body`` so
        clients classify the shed as retryable (the http layer must not
        import soap).
        """
        body = self._busy_body
        if body is None:
            return HttpResponse(
                503,
                Headers({"Content-Type": "text/plain", "Retry-After": "1"}),
                detail.encode("utf-8"),
            )
        content_type, payload = body
        return HttpResponse(
            503,
            Headers({"Content-Type": content_type, "Retry-After": "1"}),
            payload,
        )

    def set_busy_body(self, content_type: str, payload: bytes) -> None:
        """Install the body served by accept-overload 503 responses."""
        self._busy_body = (content_type, payload)


def chunked_head(response: HttpResponse) -> bytes:
    """The status line + headers of a chunked-transfer response."""
    headers = response.headers.copy()
    headers.remove("Content-Length")
    headers.set("Transfer-Encoding", "chunked")
    lines = [f"{response.version} {response.status} {response.reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"


def error_response(exc: HttpError) -> HttpResponse:
    """A plain-text response carrying the error's HTTP status."""
    status = exc.status or 400
    return HttpResponse(
        status,
        Headers({"Content-Type": "text/plain"}),
        str(exc).encode("utf-8"),
    )
