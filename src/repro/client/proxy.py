"""Dynamic service proxy — the classic one-call-one-message client."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soap.wssecurity import Credentials

from repro.errors import InvocationError
from repro.http.connection import ConnectionPool, HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs.trace import (
    OBS_NS,
    TRACE_HEADER_TAG,
    TRACE_HTTP_HEADER,
    TRACE_ID_ATTR,
    Tracer,
    new_trace_id,
)
from repro.soap.constants import SOAP_ACTION_HEADER, SOAP_CONTENT_TYPE
from repro.soap.deserializer import parse_response_document
from repro.soap.envelope import Envelope
from repro.soap.serializer import build_request_envelope
from repro.transport.base import Address, Transport
from repro.wsdl.model import WsdlService
from repro.wsdl.parser import parse_wsdl
from repro.xmlcore.tree import Element


class ServiceProxy:
    """Callable stub for one remote service.

    ``proxy.call("echo", payload="x")`` or ``proxy.echo(payload="x")``
    issues one SOAP message per invocation — the paper's baseline
    communication model that SPI improves upon.

    Connection policy:

    * ``reuse_connections=False`` (default) opens a fresh connection per
      call, matching the paper's "No Optimization" client and its
      M-TCP-connections cost model;
    * ``reuse_connections=True`` goes through a keep-alive pool.
    """

    def __init__(
        self,
        transport: Transport,
        address: Address,
        *,
        namespace: str,
        service_name: str = "Service",
        path: str | None = None,
        reuse_connections: bool = False,
        interface: WsdlService | None = None,
        extra_headers: list[Element] | None = None,
        credentials: "Credentials | None" = None,
        tracer: Tracer | None = None,
    ) -> None:
        """``credentials``: when given, every outgoing envelope is signed
        with a WS-Security UsernameToken over its (possibly packed)
        body, so servers running a
        :class:`~repro.server.security_handler.SecurityVerifyHandler`
        accept it.  One signature covers an entire packed batch.

        ``tracer``: when given, every exchange mints a trace id, records
        a ``client.call`` span, and propagates the id both as an
        ``X-Repro-Trace-Id`` HTTP header and a mustUnderstand=false SOAP
        header entry (so it survives SPI packing and any transport that
        strips custom HTTP headers)."""
        self.transport = transport
        self.address = address
        self.namespace = namespace
        self.service_name = service_name
        self.path = path or f"/services/{service_name}"
        self.reuse_connections = reuse_connections
        self.interface = interface
        self.extra_headers = list(extra_headers or [])
        self.credentials = credentials
        self.tracer = tracer
        self.last_trace_id: str | None = None
        self._pool = ConnectionPool(transport) if reuse_connections else None
        self.calls = 0
        self.connections_opened = 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_wsdl(
        cls,
        document: str | bytes,
        transport: Transport,
        address: Address,
        **kwargs: Any,
    ) -> "ServiceProxy":
        """Build a proxy whose operations are checked against a WSDL."""
        service = parse_wsdl(document).service
        return cls(
            transport,
            address,
            namespace=service.namespace,
            service_name=service.name,
            interface=service,
            **kwargs,
        )

    # -- invocation --------------------------------------------------------------

    def call(self, operation: str, /, **params: Any) -> Any:
        """Invoke ``operation`` synchronously and return its result."""
        self._check_interface(operation, params)
        envelope = build_request_envelope(
            self.namespace, operation, params, headers=[h.copy() for h in self.extra_headers]
        )
        response_body = self.exchange_raw(envelope, operation)
        self.calls += 1
        # Pull-parse the response: skip straight to the body entry
        # without materializing headers this client never reads.
        return parse_response_document(response_body).value

    def exchange(self, envelope: Envelope, action: str = "") -> Envelope:
        """Send a raw request envelope, return the raw response envelope.

        This is the hook the SPI packed client shares: it builds its own
        Parallel_Method envelope and still reuses the proxy's HTTP path.
        """
        return Envelope.parse(self.exchange_raw(envelope, action), server=True)

    def exchange_raw(self, envelope: Envelope, action: str = "") -> bytes:
        """Like :meth:`exchange` but returns the undecoded response body."""
        header_fields = {
            "Content-Type": SOAP_CONTENT_TYPE,
            SOAP_ACTION_HEADER: f'"{self.namespace}#{action}"',
            "Host": self._host_header(),
        }
        trace_id = None
        if self.tracer is not None:
            trace_id = new_trace_id()
            self.last_trace_id = trace_id
            header_fields[TRACE_HTTP_HEADER] = trace_id
            # mustUnderstand stays unset (=false): servers without the
            # obs subsystem must keep accepting the message untouched.
            envelope.add_header(
                Element(TRACE_HEADER_TAG, {TRACE_ID_ATTR: trace_id}, nsmap={"obs": OBS_NS})
            )
        if self.credentials is not None:
            from repro.soap.wssecurity import attach_security_header

            attach_security_header(envelope, self.credentials)
        request = HttpRequest("POST", self.path, Headers(header_fields), envelope.to_bytes())
        if trace_id is not None:
            with self.tracer.span("client.call", trace_id, detail=action or "exchange"):
                response = self._send_request(request)
        else:
            response = self._send_request(request)
        if response.status not in (200, 500):
            # 500 carries a SOAP Fault we surface properly below;
            # anything else is an HTTP-level failure.
            response.raise_for_status()
        return response.body

    def _send_request(self, request: HttpRequest):
        if self._pool is not None:
            return self._pool.request(self.address, request)
        with HttpConnection(self.transport, self.address) as connection:
            self.connections_opened += 1
            return connection.request(request)

    def fetch_wsdl(self) -> str:
        """GET this service's generated WSDL from the server."""
        request = HttpRequest("GET", f"{self.path}?wsdl", Headers({"Host": self._host_header()}))
        with HttpConnection(self.transport, self.address) as connection:
            response = connection.request(request)
        response.raise_for_status()
        return response.body.decode("utf-8")

    def close(self) -> None:
        """Release pooled connections (no-op for fresh-connection mode)."""
        if self._pool is not None:
            self._pool.close()

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)

        def method(**params: Any) -> Any:
            return self.call(name, **params)

        method.__name__ = name
        return method

    # -- internals -----------------------------------------------------------------

    def _check_interface(self, operation: str, params: dict[str, Any]) -> None:
        if self.interface is None:
            return
        try:
            op = self.interface.operation(operation)
        except Exception:
            raise InvocationError(
                f"'{operation}' is not an operation of {self.service_name} "
                f"(WSDL lists: {', '.join(self.interface.operation_names())})"
            ) from None
        expected = set(op.parameter_names())
        got = set(params)
        if expected != got:
            raise InvocationError(
                f"{self.service_name}.{operation} expects parameters "
                f"{sorted(expected)}, got {sorted(got)}"
            )

    def _host_header(self) -> str:
        if isinstance(self.address, (tuple, list)):
            return f"{self.address[0]}:{self.address[1]}"
        return str(self.address)
