"""Dynamic service proxy — the classic one-call-one-message client."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soap.wssecurity import Credentials

from repro.client.cache import ResponseCache, response_cache_key
from repro.errors import HttpError, InvocationError, ReproError
from repro.http.compression import CompressionPolicy, compress
from repro.http.connection import ConnectionPool, HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs.trace import (
    OBS_NS,
    TRACE_HEADER_TAG,
    TRACE_HTTP_HEADER,
    TRACE_ID_ATTR,
    Tracer,
    new_trace_id,
)
from repro.resilience.deadline import attach_deadline
from repro.resilience.policy import (
    CallPolicy,
    DEFAULT_POLICY,
    Deadline,
    RetryState,
    execute_with_policy,
)
from repro.soap.constants import FAULT_TAG, SOAP_ACTION_HEADER, SOAP_CONTENT_TYPE
from repro.soap.deserializer import parse_response_document
from repro.soap.envelope import Envelope
from repro.soap.fault import SoapFault
from repro.soap.serializer import build_request_envelope
from repro.transport.base import Address, Transport
from repro.wsdl.model import WsdlService
from repro.wsdl.parser import parse_wsdl
from repro.xmlcore.tree import Element


def _body_is_cacheable(body: bytes) -> bool:
    """Conservative fault screen for the response cache.

    Any body that might carry a SOAP Fault — a 500 single-entry fault,
    or a per-entry fault inside a packed response — must not be stored
    as a known-good answer.  Probing for the substring is deliberately
    over-broad: a payload that merely *mentions* "Fault" costs one
    skipped insertion, never a wrong cache hit.
    """
    return b"Fault" not in body


class ServiceProxy:
    """Callable stub for one remote service.

    ``proxy.call("echo", payload="x")`` or ``proxy.echo(payload="x")``
    issues one SOAP message per invocation — the paper's baseline
    communication model that SPI improves upon.

    Connection policy:

    * ``reuse_connections=False`` (default) opens a fresh connection per
      call, matching the paper's "No Optimization" client and its
      M-TCP-connections cost model;
    * ``reuse_connections=True`` goes through a keep-alive pool.
    """

    def __init__(
        self,
        transport: Transport,
        address: Address,
        *,
        namespace: str,
        service_name: str = "Service",
        path: str | None = None,
        reuse_connections: bool = False,
        interface: WsdlService | None = None,
        extra_headers: list[Element] | None = None,
        credentials: "Credentials | None" = None,
        tracer: Tracer | None = None,
        policy: CallPolicy | None = None,
        response_cache: ResponseCache | None = None,
        accept_encoding: str | None = None,
        request_compression: CompressionPolicy | None = None,
    ) -> None:
        """``credentials``: when given, every outgoing envelope is signed
        with a WS-Security UsernameToken over its (possibly packed)
        body, so servers running a
        :class:`~repro.server.security_handler.SecurityVerifyHandler`
        accept it.  One signature covers an entire packed batch.

        ``tracer``: when given, every exchange mints a trace id, records
        a ``client.call`` span, and propagates the id both as an
        ``X-Repro-Trace-Id`` HTTP header and a mustUnderstand=false SOAP
        header entry (so it survives SPI packing and any transport that
        strips custom HTTP headers).

        ``policy``: the default :class:`~repro.resilience.CallPolicy`
        for every exchange through this proxy — timeout/deadline
        propagation, retry budget and backoff.  Defaults to the
        seed-equivalent single-attempt policy.

        ``response_cache``: when given, calls whose operation the
        cache's :class:`~repro.client.cache.CachePolicy` admits are
        answered from cache without touching the transport; misses go
        through the full resilience path and (fault-free) bodies are
        stored.  The consult wraps *outside* the retry loop, so a retry
        can never observe — or produce — a cached body as a fresh
        success.

        ``accept_encoding``: advertised on every request (e.g.
        ``"gzip, deflate"`` or
        :attr:`CompressionPolicy.accept_header`); compressed responses
        are decoded transparently inside the HTTP parser.

        ``request_compression``: when given, request bodies at least
        ``min_size`` bytes long are content-coded with the policy's
        first coding (no negotiation upstream of the first response —
        enable it only against servers known to decode)."""
        self.transport = transport
        self.address = address
        self.namespace = namespace
        self.service_name = service_name
        self.path = path or f"/services/{service_name}"
        self.reuse_connections = reuse_connections
        self.interface = interface
        self.extra_headers = list(extra_headers or [])
        self.credentials = credentials
        self.tracer = tracer
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self.response_cache = response_cache
        self.accept_encoding = accept_encoding
        self.request_compression = request_compression
        self.last_trace_id: str | None = None
        self._pool = ConnectionPool(transport) if reuse_connections else None
        self.calls = 0
        self.connections_opened = 0
        self.retries = 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_wsdl(
        cls,
        document: str | bytes,
        transport: Transport,
        address: Address,
        **kwargs: Any,
    ) -> "ServiceProxy":
        """Build a proxy whose operations are checked against a WSDL."""
        service = parse_wsdl(document).service
        return cls(
            transport,
            address,
            namespace=service.namespace,
            service_name=service.name,
            interface=service,
            **kwargs,
        )

    # -- invocation --------------------------------------------------------------

    def call(self, operation: str, /, **params: Any) -> Any:
        """Invoke ``operation`` synchronously and return its result,
        under the proxy's default :class:`CallPolicy`."""
        return self.call_with_policy(operation, None, **params)

    def call_with_policy(
        self, operation: str, policy: CallPolicy | None, /, **params: Any
    ) -> Any:
        """Like :meth:`call` but under an explicit per-call policy
        (``None`` falls back to the proxy default).  Positional-only so
        operations may legitimately take a ``policy`` parameter."""
        self._check_interface(operation, params)
        cache = self.response_cache
        cache_key = None
        if cache is not None and cache.policy.is_cacheable(operation):
            cache_key = response_cache_key(self.namespace, operation, params)
        envelope = build_request_envelope(
            self.namespace, operation, params, headers=[h.copy() for h in self.extra_headers]
        )
        response_body = self.exchange_raw(
            envelope, operation, policy=policy, cache_key=cache_key
        )
        self.calls += 1
        # Pull-parse the response: skip straight to the body entry
        # without materializing headers this client never reads.
        return parse_response_document(response_body).value

    def exchange(
        self,
        envelope: Envelope,
        action: str = "",
        *,
        policy: CallPolicy | None = None,
        cache_key: tuple | None = None,
    ) -> Envelope:
        """Send a raw request envelope, return the raw response envelope.

        This is the hook the SPI packed client shares: it builds its own
        Parallel_Method envelope and still reuses the proxy's HTTP path.
        ``cache_key``: callers that know their envelope's semantic
        identity (e.g. the pack assembler) pass it to join the
        response cache; ``None`` bypasses caching.
        """
        return Envelope.parse(
            self.exchange_raw(envelope, action, policy=policy, cache_key=cache_key),
            server=True,
        )

    def exchange_raw(
        self,
        envelope: Envelope,
        action: str = "",
        *,
        policy: CallPolicy | None = None,
        cache_key: tuple | None = None,
    ) -> bytes:
        """Like :meth:`exchange` but returns the undecoded response body.

        When ``cache_key`` is given and the proxy has a response cache,
        the cache is consulted first (single-flight on concurrent
        misses) and fault-free response bodies are stored; the wire
        exchange below — retries included — runs only on a miss.

        All resilience behaviour lives here, so every client entry point
        (``call``, the invokers, the pack path) gets it uniformly:

        * the whole-call deadline is started and, when the policy says
          so, propagated as a ``<res:Deadline>`` SOAP header refreshed
          on every attempt;
        * 503/504 responses are decoded into their retryable
          :class:`~repro.errors.SoapFaultError` and — like transport
          drops — retried with backoff while budget remains.
        """
        cache = self.response_cache
        if cache is not None and cache_key is not None:
            body, _ = cache.get_or_fetch(
                cache_key,
                lambda: self._exchange_uncached(envelope, action, policy),
                validate=_body_is_cacheable,
            )
            return body
        return self._exchange_uncached(envelope, action, policy)

    def _exchange_uncached(
        self,
        envelope: Envelope,
        action: str,
        policy: CallPolicy | None,
    ) -> bytes:
        policy = policy if policy is not None else self.policy
        header_fields = {
            "Content-Type": SOAP_CONTENT_TYPE,
            SOAP_ACTION_HEADER: f'"{self.namespace}#{action}"',
            "Host": self._host_header(),
        }
        if self.accept_encoding:
            header_fields["Accept-Encoding"] = self.accept_encoding
        trace_id = None
        if self.tracer is not None:
            trace_id = new_trace_id()
            self.last_trace_id = trace_id
            header_fields[TRACE_HTTP_HEADER] = trace_id
            # mustUnderstand stays unset (=false): servers without the
            # obs subsystem must keep accepting the message untouched.
            envelope.add_header(
                Element(TRACE_HEADER_TAG, {TRACE_ID_ATTR: trace_id}, nsmap={"obs": OBS_NS})
            )
        if self.credentials is not None:
            from repro.soap.wssecurity import attach_security_header

            attach_security_header(envelope, self.credentials)

        def attempt(deadline: Deadline) -> bytes:
            budget = policy.attempt_budget(deadline)
            if budget is not None and policy.propagate_deadline:
                # refreshed per attempt: each retry re-tells the server
                # how much budget is actually left
                attach_deadline(envelope, budget)
            body = envelope.to_bytes()
            request_headers = Headers(header_fields)
            coding = self.request_compression
            if coding is not None and len(body) >= coding.min_size:
                coded = compress(body, coding.encodings[0], level=coding.level)
                if len(coded) < len(body):
                    if self.tracer is not None:
                        self.tracer.registry.counter("compress.bytes_saved").inc(
                            len(body) - len(coded)
                        )
                    body = coded
                    request_headers.set("Content-Encoding", coding.encodings[0])
            request = HttpRequest("POST", self.path, request_headers, body)
            response = self._send_request(request)
            if response.status in (503, 504):
                # shed/timed-out server: surface the fault as its
                # exception so the retry loop can classify it
                raise self._decode_fault(response)
            if response.status not in (200, 500):
                # 500 carries a SOAP Fault the caller's parse surfaces
                # properly; anything else is an HTTP-level failure.
                response.raise_for_status()
            return response.body

        state = RetryState()

        def run() -> bytes:
            try:
                return execute_with_policy(
                    attempt, policy, on_retry=self._on_retry, state=state
                )
            finally:
                self.retries += state.retries

        if trace_id is not None:
            in_flight = self.tracer.registry.gauge("client.calls.in_flight")
            in_flight.add(1)
            try:
                with self.tracer.span(
                    "client.call", trace_id, detail=action or "exchange"
                ):
                    return run()
            finally:
                in_flight.add(-1)
        return run()

    def _on_retry(self, retry_index: int, error: BaseException, delay: float) -> None:
        if self.tracer is not None:
            self.tracer.registry.counter("client.retries").inc()

    def _decode_fault(self, response) -> Exception:
        """The SoapFaultError carried by a 503/504 body (or an HttpError
        when the body is not a parseable fault envelope)."""
        try:
            envelope = Envelope.parse(response.body, server=True)
            entries = envelope.body_entries
            if entries and entries[0].tag == FAULT_TAG:
                return SoapFault.from_element(entries[0]).to_exception()
        except ReproError:
            pass
        return HttpError(
            f"server returned HTTP {response.status}", status=response.status
        )

    def _send_request(self, request: HttpRequest):
        if self._pool is not None:
            return self._pool.request(self.address, request)
        with HttpConnection(self.transport, self.address) as connection:
            self.connections_opened += 1
            return connection.request(request)

    def fetch_wsdl(self) -> str:
        """GET this service's generated WSDL from the server."""
        request = HttpRequest("GET", f"{self.path}?wsdl", Headers({"Host": self._host_header()}))
        with HttpConnection(self.transport, self.address) as connection:
            response = connection.request(request)
        response.raise_for_status()
        return response.body.decode("utf-8")

    def close(self) -> None:
        """Release pooled connections (no-op for fresh-connection mode)."""
        if self._pool is not None:
            self._pool.close()

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)

        def method(**params: Any) -> Any:
            return self.call(name, **params)

        method.__name__ = name
        return method

    # -- internals -----------------------------------------------------------------

    def _check_interface(self, operation: str, params: dict[str, Any]) -> None:
        if self.interface is None:
            return
        try:
            op = self.interface.operation(operation)
        except Exception:
            raise InvocationError(
                f"'{operation}' is not an operation of {self.service_name} "
                f"(WSDL lists: {', '.join(self.interface.operation_names())})"
            ) from None
        expected = set(op.parameter_names())
        got = set(params)
        if expected != got:
            raise InvocationError(
                f"{self.service_name}.{operation} expects parameters "
                f"{sorted(expected)}, got {sorted(got)}"
            )

    def _host_header(self) -> str:
        if isinstance(self.address, (tuple, list)):
            return f"{self.address[0]}:{self.address[1]}"
        return str(self.address)
