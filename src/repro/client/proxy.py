"""Dynamic service proxy — the classic one-call-one-message client.

PR-9 made this the *adaptive* client: every exchange feeds a
per-(service, operation) rollup, and three resilience mechanisms read
it back:

* **hedged requests** — once the first attempt outlives the operation's
  own latency quantile, a speculative second attempt races it
  (first response wins, the loser's connection is abandoned);
* **AIMD concurrency limiting** — an :class:`AdaptiveLimiter` gates
  calls locally with a fast retryable fault when the window is full,
  halving the window on ``Server.Busy`` sheds and growing it additively
  on success;
* **deadline-rebased I/O timeouts** — each attempt's channel timeout is
  the remaining whole-call budget, so a hung server cannot consume
  later attempts' time.

Construction goes through :class:`~repro.client.config.ClientConfig` +
:func:`~repro.client.config.build_proxy`; the legacy keyword
constructor still works behind a ``DeprecationWarning``.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Any, Callable

from repro.client.cache import response_cache_key
from repro.client.config import ClientConfig, config_from_legacy
from repro.client.futures import CompletionWatcher, InvocationFuture
from repro.errors import (
    FAULTCODE_SERVER_BUSY,
    FAULTCODE_SERVER_TIMEOUT,
    HttpError,
    InvocationError,
    ReproError,
    SoapFaultError,
    TransportError,
    is_retryable_faultcode,
)
from repro.http.compression import compress
from repro.http.connection import ConnectionPool, HttpConnection
from repro.http.message import Headers, HttpRequest
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    OBS_NS,
    TRACE_HEADER_TAG,
    TRACE_HTTP_HEADER,
    TRACE_ID_ATTR,
    new_trace_id,
)
from repro.resilience.deadline import attach_deadline
from repro.resilience.hedge import HedgeBudget, HedgePolicy, hedge_trigger
from repro.resilience.limiter import (
    OUTCOME_ERROR,
    OUTCOME_OVERLOAD,
    OUTCOME_SUCCESS,
)
from repro.resilience.policy import (
    CallPolicy,
    DEFAULT_POLICY,
    Deadline,
    RetryState,
    execute_with_policy,
)
from repro.soap.constants import FAULT_TAG, SOAP_ACTION_HEADER, SOAP_CONTENT_TYPE
from repro.soap.deserializer import parse_response_document
from repro.soap.envelope import Envelope
from repro.soap.fault import SoapFault
from repro.soap.serializer import build_request_envelope
from repro.wsdl.parser import parse_wsdl
from repro.xmlcore.tree import Element

#: Client-side rollups are keyed under this service prefix so a shared
#: registry (one tracer for client and server) never conflates the
#: client's view of an operation with the server's own per-target row.
CLIENT_ROLLUP_PREFIX = "client:"

#: Wire-level grace on top of the logical attempt budget.  The server
#: enforces the propagated deadline itself and answers AT it (rendering
#: per-entry timeout faults), so the socket timeout must outlive the
#: budget slightly — a wire timeout equal to the budget would cut the
#: connection just as the server's deadline fault is being written.
IO_GRACE_FRACTION = 0.25
IO_GRACE_FLOOR_S = 0.05


def _wire_timeout(budget: float | None) -> float | None:
    """The channel I/O timeout for one attempt with ``budget`` seconds
    of logical deadline left: the budget plus a grace margin."""
    if budget is None:
        return None
    return budget + max(budget * IO_GRACE_FRACTION, IO_GRACE_FLOOR_S)


def _body_is_cacheable(body: bytes) -> bool:
    """Conservative fault screen for the response cache.

    Any body that might carry a SOAP Fault — a 500 single-entry fault,
    or a per-entry fault inside a packed response — must not be stored
    as a known-good answer.  Probing for the substring is deliberately
    over-broad: a payload that merely *mentions* "Fault" costs one
    skipped insertion, never a wrong cache hit.
    """
    return b"Fault" not in body


def _fault_class_of(error: BaseException) -> str | None:
    """The rollup fault class for one failed attempt."""
    if isinstance(error, SoapFaultError):
        local = error.faultcode.rpartition(":")[2]
        if local == FAULTCODE_SERVER_BUSY:
            return "shed"
        if local == FAULTCODE_SERVER_TIMEOUT:
            return "timeout"
        return "retryable" if is_retryable_faultcode(error.faultcode) else "fatal"
    if isinstance(error, HttpError):
        if error.status == 503:
            return "shed"
        if error.status == 504:
            return "timeout"
        return "fatal"
    if isinstance(error, TransportError):
        return "retryable"
    return "fatal"


class ServiceProxy:
    """Callable stub for one remote service.

    ``proxy.call("echo", payload="x")`` or ``proxy.echo(payload="x")``
    issues one SOAP message per invocation — the paper's baseline
    communication model that SPI improves upon.

    Connection policy:

    * ``reuse_connections=False`` (default) opens a fresh connection per
      call, matching the paper's "No Optimization" client and its
      M-TCP-connections cost model;
    * ``reuse_connections=True`` goes through a keep-alive pool.

    Construct with ``ServiceProxy(config=ClientConfig(...))`` (or the
    :func:`~repro.client.config.build_proxy` facade); the legacy
    keyword form maps onto a config via ``config_from_legacy`` behind a
    ``DeprecationWarning``.
    """

    def __init__(
        self,
        transport=None,
        address=None,
        *,
        config: ClientConfig | None = None,
        **legacy: Any,
    ) -> None:
        if config is not None:
            if transport is not None or address is not None or legacy:
                raise InvocationError(
                    "ServiceProxy(config=...) takes no legacy arguments"
                )
        else:
            warnings.warn(
                "repro.client.ServiceProxy(transport, address, ...) is "
                "deprecated; use build_proxy(ClientConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = config_from_legacy(transport, address, legacy)
        self.config = config
        self.transport = config.transport
        self.address = config.address
        self.namespace = config.namespace
        self.service_name = config.service_name
        self.path = config.path or f"/services/{config.service_name}"
        self.reuse_connections = config.reuse_connections
        self.interface = config.interface
        self.extra_headers = list(config.extra_headers or ())
        self.credentials = config.credentials
        self.tracer = config.tracer
        self.policy = config.policy if config.policy is not None else DEFAULT_POLICY
        self.hedge = config.hedge
        self.limiter = config.limiter
        self.response_cache = config.response_cache
        self.accept_encoding = config.accept_encoding
        self.request_compression = config.request_compression
        # the proxy's metric home: the tracer's registry when one is
        # wired (so counters land next to the server's in /metrics),
        # else a private registry that still feeds the hedge rollups
        self.metrics = (
            config.tracer.registry
            if config.tracer is not None and config.tracer.registry is not None
            else MetricsRegistry()
        )
        self.last_trace_id: str | None = None
        self._pool = ConnectionPool(config.transport) if config.reuse_connections else None
        self._hedge_lock = threading.Lock()
        self._hedge_budget: HedgeBudget | None = (
            HedgeBudget.for_policy(config.hedge) if config.hedge is not None else None
        )
        self._limiter_gauge = (
            self.metrics.gauge("client.limiter.limit")
            if config.limiter is not None
            else None
        )
        if self.limiter is not None:
            self._limiter_gauge.set(self.limiter.limit)
        self.calls = 0
        self.connections_opened = 0
        self.retries = 0

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_wsdl(
        cls,
        document: str | bytes,
        transport,
        address,
        **kwargs: Any,
    ) -> "ServiceProxy":
        """Build a proxy whose operations are checked against a WSDL.

        ``kwargs`` are :class:`ClientConfig` fields (``policy``,
        ``hedge``, ``reuse_connections``, ...).
        """
        service = parse_wsdl(document).service
        config = ClientConfig(
            transport=transport,
            address=address,
            namespace=service.namespace,
            service_name=service.name,
            interface=service,
            **kwargs,
        )
        return cls(config=config)

    # -- invocation --------------------------------------------------------------

    def call(self, operation: str, /, **params: Any) -> Any:
        """Invoke ``operation`` synchronously and return its result,
        under the proxy's default :class:`CallPolicy`."""
        return self.call_with_policy(operation, None, **params)

    def call_with_policy(
        self, operation: str, policy: CallPolicy | None, /, **params: Any
    ) -> Any:
        """Like :meth:`call` but under an explicit per-call policy
        (``None`` falls back to the proxy default).  Positional-only so
        operations may legitimately take a ``policy`` parameter."""
        self._check_interface(operation, params)
        cache = self.response_cache
        cache_key = None
        if cache is not None and cache.policy.is_cacheable(operation):
            cache_key = response_cache_key(self.namespace, operation, params)
        envelope = build_request_envelope(
            self.namespace, operation, params, headers=[h.copy() for h in self.extra_headers]
        )
        response_body = self.exchange_raw(
            envelope, operation, policy=policy, cache_key=cache_key
        )
        self.calls += 1
        # Pull-parse the response: skip straight to the body entry
        # without materializing headers this client never reads.
        return parse_response_document(response_body).value

    def exchange(
        self,
        envelope: Envelope,
        action: str = "",
        *,
        policy: CallPolicy | None = None,
        cache_key: tuple | None = None,
        hedgeable: bool = True,
    ) -> Envelope:
        """Send a raw request envelope, return the raw response envelope.

        This is the hook the SPI packed client shares: it builds its own
        Parallel_Method envelope and still reuses the proxy's HTTP path.
        ``cache_key``: callers that know their envelope's semantic
        identity (e.g. the pack assembler) pass it to join the
        response cache; ``None`` bypasses caching.
        ``hedgeable=False`` disarms hedging for envelopes that are not
        safe to send twice (a pack carrying one-way casts).
        """
        return Envelope.parse(
            self.exchange_raw(
                envelope, action, policy=policy, cache_key=cache_key,
                hedgeable=hedgeable,
            ),
            server=True,
        )

    def exchange_raw(
        self,
        envelope: Envelope,
        action: str = "",
        *,
        policy: CallPolicy | None = None,
        cache_key: tuple | None = None,
        hedgeable: bool = True,
    ) -> bytes:
        """Like :meth:`exchange` but returns the undecoded response body.

        When ``cache_key`` is given and the proxy has a response cache,
        the cache is consulted first (single-flight on concurrent
        misses) and fault-free response bodies are stored; the wire
        exchange below — retries included — runs only on a miss.

        All resilience behaviour lives here, so every client entry point
        (``call``, the invokers, the pack path) gets it uniformly:

        * the whole-call deadline is started and, when the policy says
          so, propagated as a ``<res:Deadline>`` SOAP header refreshed
          on every attempt;
        * each attempt's channel I/O timeout is rebased to the remaining
          whole-call budget (min of the per-attempt ``timeout`` and what
          the deadline has left);
        * the AIMD limiter gates the attempt before it touches the wire;
        * once the live rollup has enough samples, a slow first attempt
          is hedged with a speculative second (budget permitting);
        * 503/504 responses are decoded into their retryable
          :class:`~repro.errors.SoapFaultError` and — like transport
          drops — retried with backoff while budget remains.
        """
        cache = self.response_cache
        if cache is not None and cache_key is not None:
            body, _ = cache.get_or_fetch(
                cache_key,
                lambda: self._exchange_uncached(
                    envelope, action, policy, hedgeable=hedgeable
                ),
                validate=_body_is_cacheable,
            )
            return body
        return self._exchange_uncached(envelope, action, policy, hedgeable=hedgeable)

    def _exchange_uncached(
        self,
        envelope: Envelope,
        action: str,
        policy: CallPolicy | None,
        *,
        hedgeable: bool = True,
    ) -> bytes:
        policy = policy if policy is not None else self.policy
        hedge: HedgePolicy | None = None
        if hedgeable:
            hedge = policy.hedge_policy or self.hedge
        rollup = self.metrics.rollup(
            CLIENT_ROLLUP_PREFIX + self.namespace, action or "exchange"
        )
        header_fields = {
            "Content-Type": SOAP_CONTENT_TYPE,
            SOAP_ACTION_HEADER: f'"{self.namespace}#{action}"',
            "Host": self._host_header(),
        }
        if self.accept_encoding:
            header_fields["Accept-Encoding"] = self.accept_encoding
        trace_id = None
        if self.tracer is not None:
            trace_id = new_trace_id()
            self.last_trace_id = trace_id
            header_fields[TRACE_HTTP_HEADER] = trace_id
            # mustUnderstand stays unset (=false): servers without the
            # obs subsystem must keep accepting the message untouched.
            envelope.add_header(
                Element(TRACE_HEADER_TAG, {TRACE_ID_ATTR: trace_id}, nsmap={"obs": OBS_NS})
            )
        if self.credentials is not None:
            from repro.soap.wssecurity import attach_security_header

            attach_security_header(envelope, self.credentials)

        def attempt(deadline: Deadline) -> bytes:
            limiter = self.limiter
            if limiter is not None and not limiter.try_acquire():
                self.metrics.counter("client.limiter.gated").inc()
                self._limiter_gauge.set(limiter.limit)
                # a fast local fault wearing the server's own shed
                # faultcode, so the normal retry machinery backs off
                raise SoapFaultError(
                    FAULTCODE_SERVER_BUSY,
                    "client: adaptive concurrency limiter gated the call "
                    "(local shed before the wire)",
                )
            outcome = OUTCOME_ERROR
            try:
                body = self._attempt_exchange(
                    envelope, header_fields, policy, deadline, hedge, rollup
                )
                outcome = OUTCOME_SUCCESS
                return body
            except BaseException as exc:
                if _fault_class_of(exc) == "shed":
                    outcome = OUTCOME_OVERLOAD
                raise
            finally:
                if limiter is not None:
                    limiter.release(outcome)
                    self._limiter_gauge.set(limiter.limit)

        state = RetryState()

        def run() -> bytes:
            try:
                return execute_with_policy(
                    attempt, policy, on_retry=self._on_retry, state=state
                )
            finally:
                self.retries += state.retries

        if trace_id is not None:
            in_flight = self.tracer.registry.gauge("client.calls.in_flight")
            in_flight.add(1)
            try:
                with self.tracer.span(
                    "client.call", trace_id, detail=action or "exchange"
                ):
                    return run()
            finally:
                in_flight.add(-1)
        return run()

    # -- one physical attempt ------------------------------------------------

    def _attempt_exchange(
        self,
        envelope: Envelope,
        header_fields: dict,
        policy: CallPolicy,
        deadline: Deadline,
        hedge: HedgePolicy | None,
        rollup,
    ) -> bytes:
        budget = policy.attempt_budget(deadline)
        # The wire timeout is armed only by a hard whole-call deadline:
        # ``timeout`` alone is a soft budget the *server* enforces (and
        # may legitimately over-run to finish an in-flight entry), so it
        # must not cut the connection from the client side.
        io_budget = budget if policy.deadline is not None else None
        request = self._build_request(envelope, header_fields, policy, budget)
        trigger = None
        if hedge is not None:
            self._hedge_budget_for(hedge).note_call()
            trigger = hedge_trigger(hedge, rollup, budget)
        if trigger is None:
            return self._measured_send(request, io_budget, rollup)
        return self._hedged_send(
            request, io_budget, trigger, policy, envelope, header_fields,
            deadline, rollup,
        )

    def _build_request(
        self,
        envelope: Envelope,
        header_fields: dict,
        policy: CallPolicy,
        budget: float | None,
    ) -> HttpRequest:
        if budget is not None and policy.propagate_deadline:
            # refreshed per attempt: each retry (and each hedge)
            # re-tells the server how much budget is actually left
            attach_deadline(envelope, budget)
        body = envelope.to_bytes()
        request_headers = Headers(header_fields)
        coding = self.request_compression
        if coding is not None and len(body) >= coding.min_size:
            coded = compress(body, coding.encodings[0], level=coding.level)
            if len(coded) < len(body):
                self.metrics.counter("compress.bytes_saved").inc(
                    len(body) - len(coded)
                )
                body = coded
                request_headers.set("Content-Encoding", coding.encodings[0])
        return HttpRequest("POST", self.path, request_headers, body)

    def _measured_send(
        self,
        request: HttpRequest,
        budget: float | None,
        rollup,
        *,
        register_cancel: Callable[[Callable[[], None]], None] | None = None,
        abandoned: Callable[[], bool] | None = None,
    ) -> bytes:
        """One wire attempt, observed into the client rollup.

        ``abandoned``: hedge losers report True once the race is over —
        their latency (an artifact of abandonment, not the server) is
        not signal and must not poison the hedge trigger.
        """
        started = time.perf_counter()

        def observe(fault_class: str | None) -> None:
            if abandoned is not None and abandoned():
                return
            rollup.observe(time.perf_counter() - started, fault_class)

        try:
            response = self._timed_send(
                request, budget, register_cancel=register_cancel
            )
        except BaseException as exc:
            observe(_fault_class_of(exc))
            raise
        if response.status in (503, 504):
            # shed/timed-out server: surface the fault as its
            # exception so the retry loop can classify it
            error = self._decode_fault(response)
            observe(_fault_class_of(error))
            raise error
        if response.status not in (200, 500):
            # 500 carries a SOAP Fault the caller's parse surfaces
            # properly; anything else is an HTTP-level failure.
            observe("fatal")
            response.raise_for_status()
        observe("fatal" if response.status == 500 else None)
        return response.body

    def _timed_send(
        self,
        request: HttpRequest,
        budget: float | None,
        *,
        register_cancel: Callable[[Callable[[], None]], None] | None = None,
    ):
        """Send ``request`` with channel I/O bounded to ``budget``.

        ``register_cancel`` hands the caller a handle that abandons the
        in-flight exchange (closes its connection) — the hedge race uses
        it to cut losers loose.
        """
        if self._pool is None:
            self.connections_opened += 1
            connection = HttpConnection(self.transport, self.address)
            if register_cancel is not None:
                register_cancel(connection.close)
            with connection:
                connection.set_io_timeout(_wire_timeout(budget))
                return connection.request(request)
        # pooled: retry once if a kept-alive connection turns out dead
        for retry in (0, 1):
            connection = self._pool.acquire(self.address)
            if register_cancel is not None:
                register_cancel(connection.close)
            was_warm = connection.exchanges > 0
            connection.set_io_timeout(_wire_timeout(budget))
            try:
                response = connection.request(request)
            except (HttpError, TransportError):
                connection.close()
                if retry or not was_warm:
                    raise
                continue
            connection.set_io_timeout(None)
            self._pool.release(self.address, connection)
            return response
        raise HttpError("unreachable")  # pragma: no cover

    def _hedged_send(
        self,
        request: HttpRequest,
        io_budget: float | None,
        trigger: float,
        policy: CallPolicy,
        envelope: Envelope,
        header_fields: dict,
        deadline: Deadline,
        rollup,
    ) -> bytes:
        """Race the primary attempt against one speculative hedge.

        The primary runs in a worker thread; if it has not completed
        within ``trigger`` seconds (the rollup quantile) and the hedge
        budget grants a token, a second attempt with a freshly rebased
        deadline joins the race.  First success wins; the loser's
        connection is closed and its late result discarded.
        """
        watcher = CompletionWatcher()
        race_over = threading.Event()
        attempts: list[InvocationFuture] = []
        cancels: list[Callable[[], None]] = []

        def launch(tag: str, req: HttpRequest, attempt_budget: float | None):
            index = len(attempts)
            future = InvocationFuture(tag)
            cancels.append(lambda: None)

            def register_cancel(cancel: Callable[[], None]) -> None:
                cancels[index] = cancel

            def runner() -> None:
                try:
                    future.resolve(
                        self._measured_send(
                            req,
                            attempt_budget,
                            rollup,
                            register_cancel=register_cancel,
                            abandoned=race_over.is_set,
                        )
                    )
                except BaseException as exc:
                    future.fail(exc)

            attempts.append(future)
            watcher.watch(future)
            threading.Thread(
                target=runner, name=f"hedge-{tag}", daemon=True
            ).start()
            return future

        primary = launch("primary", request, io_budget)
        first = watcher.next_completed(trigger)
        if first is None and self._hedge_budget_for(None).try_spend():
            self.metrics.counter("client.hedges").inc()
            # the hedge's deadline header and I/O timeout are rebased to
            # what is left NOW, not what the primary started with
            hedge_budget = policy.attempt_budget(deadline)
            hedge_request = self._build_request(
                envelope, header_fields, policy, hedge_budget
            )
            launch("hedge", hedge_request,
                   hedge_budget if policy.deadline is not None else None)

        winner: InvocationFuture | None = None
        pending = len(attempts)
        future = first
        while True:
            if future is None:
                future = watcher.next_completed(None)
                continue
            pending -= 1
            if future.exception(timeout=0) is None:
                winner = future
                break
            if pending == 0:
                break
            future = watcher.next_completed(None)
        race_over.set()
        for index, attempt_future in enumerate(attempts):
            if attempt_future is not winner:
                try:
                    cancels[index]()
                except Exception:
                    pass  # abandoning a loser is best-effort
        if winner is None:
            raise primary.exception(timeout=0)
        if len(attempts) > 1 and winner is attempts[1]:
            self.metrics.counter("client.hedge_wins").inc()
        return winner.result(timeout=0)

    def _hedge_budget_for(self, hedge: HedgePolicy | None) -> HedgeBudget:
        """The per-proxy hedge token bucket, created on first armed use
        (rates come from the first hedge policy seen)."""
        with self._hedge_lock:
            bucket = self._hedge_budget
            if bucket is None:
                bucket = self._hedge_budget = (
                    HedgeBudget.for_policy(hedge) if hedge is not None else HedgeBudget()
                )
        return bucket

    def _on_retry(self, retry_index: int, error: BaseException, delay: float) -> None:
        self.metrics.counter("client.retries").inc()

    def _decode_fault(self, response) -> Exception:
        """The SoapFaultError carried by a 503/504 body (or an HttpError
        when the body is not a parseable fault envelope)."""
        try:
            envelope = Envelope.parse(response.body, server=True)
            entries = envelope.body_entries
            if entries and entries[0].tag == FAULT_TAG:
                return SoapFault.from_element(entries[0]).to_exception()
        except ReproError:
            pass
        return HttpError(
            f"server returned HTTP {response.status}", status=response.status
        )

    def fetch_wsdl(self) -> str:
        """GET this service's generated WSDL from the server."""
        request = HttpRequest("GET", f"{self.path}?wsdl", Headers({"Host": self._host_header()}))
        with HttpConnection(self.transport, self.address) as connection:
            response = connection.request(request)
        response.raise_for_status()
        return response.body.decode("utf-8")

    def close(self) -> None:
        """Release pooled connections (no-op for fresh-connection mode)."""
        if self._pool is not None:
            self._pool.close()

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)

        def method(**params: Any) -> Any:
            return self.call(name, **params)

        method.__name__ = name
        return method

    # -- internals -----------------------------------------------------------------

    def _check_interface(self, operation: str, params: dict[str, Any]) -> None:
        if self.interface is None:
            return
        try:
            op = self.interface.operation(operation)
        except Exception:
            raise InvocationError(
                f"'{operation}' is not an operation of {self.service_name} "
                f"(WSDL lists: {', '.join(self.interface.operation_names())})"
            ) from None
        expected = set(op.parameter_names())
        got = set(params)
        if expected != got:
            raise InvocationError(
                f"{self.service_name}.{operation} expects parameters "
                f"{sorted(expected)}, got {sorted(got)}"
            )

    def _host_header(self) -> str:
        if isinstance(self.address, (tuple, list)):
            return f"{self.address[0]}:{self.address[1]}"
        return str(self.address)
