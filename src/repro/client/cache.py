"""Client-side parameterized response caching.

The application-aware interface already collapses M calls into one
message; this layer removes the message entirely when the *answer* is
already known.  Devaram & Andresen ("SOAP optimization via
parameterized client-side caching") showed SOAP response caching keyed
by call parameters pays for itself quickly on read-mostly services;
here the idea lands :class:`CallPolicy`-style — a small frozen
:class:`CachePolicy` carried by the proxy, consulted in
``exchange_raw`` *outside* the resilience retry loop, so retries always
go to the wire and can never replay a cached body as a fresh success.

Semantics:

* **Key** — ``(namespace, operation, canonicalized params)`` via
  :func:`response_cache_key`; dict params are order-insensitive.
* **TTL + LRU** — entries expire ``ttl`` seconds after insertion
  (monotonic, injectable clock) and the store is a bounded LRU.
* **Single-flight** — concurrent misses on one key collapse to one
  wire exchange; followers park on an event and re-check.  If the
  leader fails, its exception stays its own: the next waiter promotes
  itself to leader and retries the fetch.
* **Invalidation** — :meth:`ResponseCache.invalidate` drops matching
  entries and bumps a version counter checked at insert time, so a
  fetch that was in flight across the invalidation cannot re-insert a
  stale body.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

DEFAULT_TTL = 30.0
DEFAULT_MAX_ENTRIES = 128


@dataclass(frozen=True, slots=True)
class CachePolicy:
    """What a proxy is allowed to answer from cache.

    ``ttl`` is seconds-until-stale (``None`` = only explicit
    invalidation evicts); ``operations`` restricts caching to the named
    operations (``None`` = all — appropriate only for read-only
    services; anything with side effects must be listed out).
    """

    ttl: float | None = DEFAULT_TTL
    max_entries: int = DEFAULT_MAX_ENTRIES
    operations: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        if self.max_entries < 1:
            raise ValueError("max_entries must be positive")

    def is_cacheable(self, operation: str) -> bool:
        """True when responses of ``operation`` may be cached."""
        return self.operations is None or operation in self.operations


#: Read-mostly default: cache everything for 30 s, 128 entries.
DEFAULT_CACHE_POLICY = CachePolicy()


@dataclass(slots=True)
class ClientCacheStats:
    """Point-in-time counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    expirations: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def response_cache_key(
    namespace: str, operation: str, params: Mapping[str, Any]
) -> tuple:
    """The canonical cache key for one call.

    Parameter containers are canonicalized recursively (dicts sorted by
    key) and every leaf is tagged with its type name, so ``1`` and
    ``True`` — equal and hash-equal in Python — key separately, as they
    serialize differently.
    """
    return (
        namespace,
        operation,
        tuple(sorted((name, _canonical(value)) for name, value in params.items())),
    )


def _canonical(value: Any) -> Any:
    if isinstance(value, Mapping):
        return ("map",) + tuple(
            sorted((key, _canonical(item)) for key, item in value.items())
        )
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(_canonical(item) for item in value)
    if value is None or isinstance(value, (str, bytes, int, float, bool)):
        return (type(value).__name__, value)
    # Unknown leaf: fall back to repr — stable within a process for the
    # value types the serializer accepts.
    return ("repr", repr(value))


class ResponseCache:
    """Bounded TTL+LRU response store with single-flight fetching.

    Thread-safe; share one instance across proxies pointing at the same
    service.  Values are opaque to the cache (the proxy stores raw
    response body bytes, which are immutable — no aliasing hazards).
    """

    __slots__ = ("policy", "_lock", "_entries", "_inflight", "_version",
                 "_clock", "_stats", "_hit_counter", "_miss_counter",
                 "_eviction_counter", "_hit_ratio_gauge")

    def __init__(
        self,
        policy: CachePolicy = DEFAULT_CACHE_POLICY,
        *,
        clock: Callable[[], float] = time.monotonic,
        registry=None,
    ) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        # key -> (expires_at | None, value); OrderedDict gives LRU order
        self._entries: OrderedDict[tuple, tuple[float | None, Any]] = OrderedDict()
        self._inflight: dict[tuple, threading.Event] = {}
        self._version = 0
        self._clock = clock
        self._stats = ClientCacheStats()
        if registry is not None:
            self._hit_counter = registry.counter("cache.client.hit")
            self._miss_counter = registry.counter("cache.client.miss")
            self._eviction_counter = registry.counter("cache.client.evictions")
            self._hit_ratio_gauge = registry.gauge("cache.client.hit_ratio")
        else:
            self._hit_counter = None
            self._miss_counter = None
            self._eviction_counter = None
            self._hit_ratio_gauge = None

    # -- lookup --------------------------------------------------------

    def get_or_fetch(
        self,
        key: tuple,
        fetch: Callable[[], Any],
        *,
        validate: Callable[[Any], bool] | None = None,
    ) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``; on a miss, run ``fetch`` and
        store its result.

        ``validate`` gates insertion only: a value it rejects (e.g. a
        body carrying a SOAP fault) is returned to this caller but
        never stored.  ``fetch`` exceptions propagate uncached.
        """
        while True:
            event = None
            with self._lock:
                found = self._lookup_locked(key)
                if found is not None:
                    if self._hit_counter is not None:
                        self._hit_counter.inc()
                    self._update_ratio_locked()
                    return found[0], True
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    version = self._version
                    break
                self._stats.coalesced += 1
            # Another thread is fetching this key: park, then re-check.
            # If the leader failed we will find no entry and promote
            # ourselves to leader on the next loop.
            event.wait()

        try:
            value = fetch()
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()
        if self._miss_counter is not None:
            self._miss_counter.inc()
        if validate is None or validate(value):
            with self._lock:
                self._stats.misses += 1
                self._update_ratio_locked()
                if self._version == version:
                    self._store_locked(key, value)
        else:
            with self._lock:
                self._stats.misses += 1
                self._update_ratio_locked()
        return value, False

    def _update_ratio_locked(self) -> None:
        if self._hit_ratio_gauge is not None:
            self._hit_ratio_gauge.set(self._stats.hit_rate)

    def _lookup_locked(self, key: tuple) -> tuple[Any] | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        expires_at, value = entry
        if expires_at is not None and self._clock() >= expires_at:
            del self._entries[key]
            self._stats.expirations += 1
            return None
        self._entries.move_to_end(key)
        self._stats.hits += 1
        return (value,)

    def _store_locked(self, key: tuple, value: Any) -> None:
        ttl = self.policy.ttl
        expires_at = None if ttl is None else self._clock() + ttl
        self._entries[key] = (expires_at, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.policy.max_entries:
            self._entries.popitem(last=False)
            self._stats.evictions += 1
            if self._eviction_counter is not None:
                self._eviction_counter.inc()

    # -- maintenance ---------------------------------------------------

    def invalidate(
        self, *, namespace: str | None = None, operation: str | None = None
    ) -> int:
        """Drop entries for a service/operation (or everything) and bar
        in-flight fetches from inserting; returns the count dropped."""
        with self._lock:
            self._version += 1
            self._stats.invalidations += 1
            if namespace is None and operation is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [
                key
                for key in self._entries
                if (namespace is None or key[0] == namespace)
                and (operation is None or key[1] == operation)
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def stats(self) -> ClientCacheStats:
        """A snapshot copy of the counters."""
        with self._lock:
            stats = self._stats
            return ClientCacheStats(
                stats.hits,
                stats.misses,
                stats.coalesced,
                stats.expirations,
                stats.evictions,
                stats.invalidations,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
