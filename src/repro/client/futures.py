"""Client-side invocation futures.

The SPI client dispatcher "extract[s] multiple services response data
from one SOAP message and return[s] them to the corresponding client
methods" — futures are those corresponding client methods' handles.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import InvocationError


class InvocationFuture:
    """Result handle for one service invocation.

    ``result()`` re-raises whatever failure the invocation produced
    (a :class:`~repro.errors.SoapFaultError` for server faults,
    transport/HTTP errors otherwise).
    """

    __slots__ = ("operation", "request_id", "_event", "_value", "_error", "_callbacks", "_lock")

    def __init__(self, operation: str, request_id: str | None = None) -> None:
        self.operation = operation
        self.request_id = request_id
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[["InvocationFuture"], None]] = []
        self._lock = threading.Lock()

    def resolve(self, value: Any) -> None:
        """Complete the invocation with a result value."""
        self._finish(value, None)

    def fail(self, error: BaseException) -> None:
        """Complete the invocation with an error."""
        self._finish(None, error)

    def done(self) -> bool:
        """True once resolved or failed."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The invocation's value; re-raises its failure."""
        if not self._event.wait(timeout):
            raise InvocationError(
                f"invocation of '{self.operation}' did not complete in time"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The failure, or None on success; waits up to ``timeout``."""
        if not self._event.wait(timeout):
            raise InvocationError(
                f"invocation of '{self.operation}' did not complete in time"
            )
        return self._error

    def add_done_callback(self, callback: Callable[["InvocationFuture"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def _finish(self, value: Any, error: BaseException | None) -> None:
        with self._lock:
            if self._event.is_set():
                raise InvocationError(
                    f"future for '{self.operation}' resolved twice"
                )
            self._value = value
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class CompletionWatcher:
    """Hand out racing futures' completions one at a time.

    The hedged-request race in :mod:`repro.client.proxy` needs "whichever
    attempt finishes next, or None after ``timeout``" — exactly the shape
    ``Event.wait`` cannot give across several futures.  Each watched
    future pushes itself onto a Condition-guarded queue via its done
    callback; :meth:`next_completed` pops in completion order.
    """

    __slots__ = ("_cond", "_completed")

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._completed: list[InvocationFuture] = []

    def watch(self, future: InvocationFuture) -> None:
        """Enqueue ``future``'s completion (immediately if already done)."""
        future.add_done_callback(self._on_done)

    def _on_done(self, future: InvocationFuture) -> None:
        with self._cond:
            self._completed.append(future)
            self._cond.notify_all()

    def next_completed(self, timeout: float | None = None) -> InvocationFuture | None:
        """The next future to complete, or None if ``timeout`` elapses."""
        with self._cond:
            if not self._cond.wait_for(lambda: bool(self._completed), timeout):
                return None
            return self._completed.pop(0)


def wait_all(futures: list[InvocationFuture], timeout: float | None = None) -> list[Any]:
    """Results of every future, in order; first failure propagates."""
    return [future.result(timeout) for future in futures]
