"""The paper's first two client strategies (§4.1).

* :class:`SerialInvoker` — "Serial Service Requests in Multiple SOAP
  Messages": M messages issued one after another in one client thread.
  This is the "No Optimization" line in Figures 5–7.
* :class:`ThreadedInvoker` — "Parallel Service Requests in Multiple
  SOAP Messages": the client "start[s] multiple threads to access many
  services simultaneously".  The "Multiple Threads" line.

The third strategy ("Parallel Service Requests in One SOAP Message")
is SPI itself: :class:`repro.core.batch.PackedInvoker`.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.client.futures import InvocationFuture
from repro.client.proxy import ServiceProxy
from repro.resilience.policy import CallPolicy

# Sentinel distinguishing "timeout not passed" from an explicit None.
_UNSET = object()


@dataclass(frozen=True, slots=True)
class Call:
    """One planned service invocation."""

    operation: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def many(cls, operation: str, param_list: list[Mapping[str, Any]]) -> list["Call"]:
        return [cls(operation, params) for params in param_list]


class Invoker:
    """Strategy interface: run a batch of calls, return futures.

    Every strategy consumes one :class:`~repro.resilience.CallPolicy`:
    the ``policy`` argument if given, else the invoker's own (set at
    construction), else the proxy's default.
    """

    name = "invoker"
    policy: CallPolicy | None = None

    def submit_all(
        self, calls: list[Call], policy: CallPolicy | None = None
    ) -> list[InvocationFuture]:
        """Run all calls; returns one future per call, in order."""
        raise NotImplementedError

    def invoke_all(
        self,
        calls: list[Call],
        policy: CallPolicy | None = None,
        *,
        timeout: Any = _UNSET,
    ) -> list[Any]:
        """Run all calls and return their results, in call order.

        ``timeout=`` is the pre-policy spelling; it maps onto
        ``CallPolicy(timeout=...)`` and will go away.
        """
        if timeout is not _UNSET:
            warnings.warn(
                "Invoker.invoke_all(timeout=...) is deprecated; pass "
                "policy=CallPolicy(timeout=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if policy is None and timeout is not None:
                policy = CallPolicy.from_legacy_timeout(timeout)
        effective = policy if policy is not None else self.policy
        # the future wait is the whole-call budget: a retrying policy's
        # per-attempt timeout would undercut its own deadline
        wait = None
        if effective is not None:
            wait = (
                effective.deadline
                if effective.deadline is not None
                else effective.timeout
            )
        return [future.result(wait) for future in self.submit_all(calls, policy)]

    def _effective_policy(self, policy: CallPolicy | None) -> CallPolicy | None:
        return policy if policy is not None else self.policy


class SerialInvoker(Invoker):
    """One thread, M sequential request/response exchanges."""

    name = "serial"

    def __init__(self, proxy: ServiceProxy, *, policy: CallPolicy | None = None) -> None:
        self.proxy = proxy
        self.policy = policy

    def submit_all(
        self, calls: list[Call], policy: CallPolicy | None = None
    ) -> list[InvocationFuture]:
        """One blocking request/response exchange per call."""
        effective = self._effective_policy(policy)
        futures = []
        for call in calls:
            future = InvocationFuture(call.operation)
            try:
                future.resolve(
                    self.proxy.call_with_policy(
                        call.operation, effective, **dict(call.params)
                    )
                )
            except BaseException as exc:
                future.fail(exc)
            futures.append(future)
        return futures


class KeepAliveSerialInvoker(Invoker):
    """Serial requests over ONE persistent connection.

    Not one of the paper's three strategies — an ablation this
    reproduction adds to decompose the packing win: keep-alive removes
    the per-call TCP handshake but still pays M HTTP heads and M SOAP
    envelopes, so the gap between this and :class:`PackedInvoker`
    isolates the message-count (header + parse) savings from the
    connection-count savings.
    """

    name = "serial-keepalive"

    def __init__(self, proxy: ServiceProxy, *, policy: CallPolicy | None = None) -> None:
        from repro.client.config import build_proxy

        self.policy = policy
        if proxy.reuse_connections:
            self.proxy = proxy
            self._owned = False
        else:
            self.proxy = build_proxy(
                proxy.config.replace(reuse_connections=True)
            )
            self._owned = True

    def submit_all(
        self, calls: list[Call], policy: CallPolicy | None = None
    ) -> list[InvocationFuture]:
        """Serial exchanges over one pooled connection."""
        effective = self._effective_policy(policy)
        futures = []
        try:
            for call in calls:
                future = InvocationFuture(call.operation)
                try:
                    future.resolve(
                        self.proxy.call_with_policy(
                            call.operation, effective, **dict(call.params)
                        )
                    )
                except BaseException as exc:
                    future.fail(exc)
                futures.append(future)
        finally:
            if self._owned:
                self.proxy.close()
        return futures


class ThreadedInvoker(Invoker):
    """M client threads, each issuing its own SOAP message.

    As the paper notes (§3.1), this raises concurrency but "cannot
    reduce the number of the SOAP messages": every call still pays a
    connection, an HTTP head and a SOAP envelope.
    """

    name = "threaded"

    def __init__(
        self,
        proxy: ServiceProxy,
        *,
        max_threads: int | None = None,
        policy: CallPolicy | None = None,
    ) -> None:
        self.proxy = proxy
        self.max_threads = max_threads
        self.policy = policy

    def submit_all(
        self, calls: list[Call], policy: CallPolicy | None = None
    ) -> list[InvocationFuture]:
        """One client thread (and connection) per call."""
        effective = self._effective_policy(policy)
        futures = [InvocationFuture(call.operation) for call in calls]
        limit = threading.Semaphore(self.max_threads) if self.max_threads else None

        def worker(call: Call, future: InvocationFuture) -> None:
            try:
                result = self.proxy.call_with_policy(
                    call.operation, effective, **dict(call.params)
                )
            except BaseException as exc:
                future.fail(exc)
            else:
                future.resolve(result)
            finally:
                if limit is not None:
                    limit.release()

        threads = []
        for call, future in zip(calls, futures):
            if limit is not None:
                limit.acquire()
            thread = threading.Thread(target=worker, args=(call, future), daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        return futures
