"""Client side: dynamic proxies, invocation strategies, futures, caching."""

from repro.client.cache import (
    CachePolicy,
    ClientCacheStats,
    ResponseCache,
    response_cache_key,
)
from repro.client.futures import InvocationFuture, wait_all
from repro.client.invoker import (
    Call,
    Invoker,
    KeepAliveSerialInvoker,
    SerialInvoker,
    ThreadedInvoker,
)
from repro.client.proxy import ServiceProxy

__all__ = [
    "CachePolicy",
    "Call",
    "ClientCacheStats",
    "InvocationFuture",
    "Invoker",
    "KeepAliveSerialInvoker",
    "ResponseCache",
    "SerialInvoker",
    "ServiceProxy",
    "ThreadedInvoker",
    "response_cache_key",
    "wait_all",
]
