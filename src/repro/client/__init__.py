"""Client side: dynamic proxies, invocation strategies, futures, caching."""

from repro.client.cache import (
    CachePolicy,
    ClientCacheStats,
    ResponseCache,
    response_cache_key,
)
from repro.client.config import ClientConfig, build_proxy, config_from_legacy
from repro.client.futures import CompletionWatcher, InvocationFuture, wait_all
from repro.client.invoker import (
    Call,
    Invoker,
    KeepAliveSerialInvoker,
    SerialInvoker,
    ThreadedInvoker,
)
from repro.client.proxy import ServiceProxy

__all__ = [
    "CachePolicy",
    "Call",
    "ClientCacheStats",
    "ClientConfig",
    "CompletionWatcher",
    "InvocationFuture",
    "Invoker",
    "KeepAliveSerialInvoker",
    "ResponseCache",
    "SerialInvoker",
    "ServiceProxy",
    "ThreadedInvoker",
    "build_proxy",
    "config_from_legacy",
    "response_cache_key",
    "wait_all",
]
