"""Client side: dynamic proxies, invocation strategies, futures."""

from repro.client.futures import InvocationFuture, wait_all
from repro.client.invoker import (
    Call,
    Invoker,
    KeepAliveSerialInvoker,
    SerialInvoker,
    ThreadedInvoker,
)
from repro.client.proxy import ServiceProxy

__all__ = [
    "Call",
    "InvocationFuture",
    "Invoker",
    "KeepAliveSerialInvoker",
    "SerialInvoker",
    "ServiceProxy",
    "ThreadedInvoker",
    "wait_all",
]
