"""One :class:`ClientConfig` + :func:`build_proxy` for every client.

The client-side mirror of PR-8's :class:`~repro.server.config.ServerConfig`:
before this module, standing up a proxy meant threading thirteen keyword
arguments through :class:`~repro.client.proxy.ServiceProxy` — and the
adaptive-resilience knobs (hedging, AIMD limiting) would have made it
fifteen.  Now every knob lives in one frozen dataclass and one facade
builds the proxy::

    from repro.client import ClientConfig, build_proxy
    from repro.resilience import AdaptiveLimiter, HedgePolicy

    proxy = build_proxy(ClientConfig(
        transport, address,
        namespace="urn:echo",
        reuse_connections=True,
        hedge=HedgePolicy(quantile=0.95),   # tail-at-scale hedging
        limiter=AdaptiveLimiter(),          # AIMD concurrency window
    ))

The old keyword constructor still works but warns with
``DeprecationWarning`` (errors under pytest); see the README migration
table.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.soap.wssecurity import Credentials

from repro.client.cache import ResponseCache
from repro.errors import InvocationError
from repro.http.compression import CompressionPolicy
from repro.obs.trace import Tracer
from repro.resilience.hedge import HedgePolicy
from repro.resilience.limiter import AdaptiveLimiter
from repro.resilience.policy import CallPolicy
from repro.transport.base import Address, Transport
from repro.wsdl.model import WsdlService
from repro.xmlcore.tree import Element


@dataclasses.dataclass(frozen=True)
class ClientConfig:
    """Everything needed to build one service proxy.

    Grouped by layer:

    * **wire** — ``transport``, ``address``, ``path``,
      ``reuse_connections`` (keep-alive pool vs the paper's
      fresh-connection baseline), ``accept_encoding`` /
      ``request_compression``;
    * **service** — ``namespace``, ``service_name``, ``interface``
      (WSDL-checked operations), ``extra_headers``, ``credentials``
      (WS-Security UsernameToken);
    * **resilience** — ``policy`` (timeout/deadline/retries), ``hedge``
      (tail-at-scale speculative attempts), ``limiter`` (AIMD adaptive
      concurrency window);
    * **observability** — ``tracer``, ``response_cache``.
    """

    transport: Transport | None = None
    address: Address = None
    namespace: str = ""
    service_name: str = "Service"
    path: str | None = None
    reuse_connections: bool = False
    interface: WsdlService | None = None
    extra_headers: Sequence[Element] = ()
    credentials: "Credentials | None" = None
    tracer: Tracer | None = None
    policy: CallPolicy | None = None
    hedge: HedgePolicy | None = None
    limiter: AdaptiveLimiter | None = None
    response_cache: ResponseCache | None = None
    accept_encoding: str | None = None
    request_compression: CompressionPolicy | None = None

    def __post_init__(self) -> None:
        if self.transport is None:
            raise InvocationError("ClientConfig.transport is required")
        if not self.namespace:
            raise InvocationError("ClientConfig.namespace is required")
        if self.hedge is not None and not isinstance(self.hedge, HedgePolicy):
            raise InvocationError(
                f"ClientConfig.hedge must be a HedgePolicy, not {self.hedge!r}"
            )
        if self.limiter is not None and not isinstance(self.limiter, AdaptiveLimiter):
            raise InvocationError(
                "ClientConfig.limiter must be an AdaptiveLimiter, "
                f"not {self.limiter!r}"
            )

    def replace(self, **changes: Any) -> "ClientConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)


def build_proxy(config: ClientConfig):
    """The facade: one config in, one ready-to-call proxy out."""
    from repro.client.proxy import ServiceProxy

    return ServiceProxy(config=config)


def config_from_legacy(
    transport: Transport,
    address: Address,
    legacy: dict[str, Any],
) -> ClientConfig:
    """Map an old-style ``ServiceProxy(...)`` call onto a
    :class:`ClientConfig`.

    ``legacy`` keys are exactly the old keyword parameters (plus the new
    ``hedge``/``limiter`` knobs, so a shimmed caller is not locked out
    of them); unknown keys raise ``TypeError`` like any bad keyword
    argument would.
    """
    allowed = {
        "namespace",
        "service_name",
        "path",
        "reuse_connections",
        "interface",
        "extra_headers",
        "credentials",
        "tracer",
        "policy",
        "hedge",
        "limiter",
        "response_cache",
        "accept_encoding",
        "request_compression",
    }
    unknown = set(legacy) - allowed
    if unknown:
        raise TypeError(
            f"unexpected keyword argument(s) for ServiceProxy: {sorted(unknown)}"
        )
    return ClientConfig(transport=transport, address=address, **legacy)
