"""SEDA-style event stages (Welsh et al., SOSP-18 — the paper's [5]).

A :class:`Stage` is a named queue drained by a dedicated thread pool.
The staged architecture of Figure 2 wires two of them together:
*protocol processing* (implicitly: the HTTP connection threads) and
*application processing* (an explicit Stage of worker threads executing
service operations).

Service-time accounting is a :class:`~repro.obs.registry.Histogram`
(the unified metrics primitive) rather than a bespoke sum/max pair;
give the stage a :class:`~repro.obs.registry.MetricsRegistry` and its
latency histogram is created in the registry (name
``stage.<name>.service_time_s``) so it shows up under ``/metrics``.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.errors import PoolSaturatedError
from repro.obs.registry import LATENCY_BOUNDS_S, Histogram, MetricsRegistry
from repro.server.threadpool import TaskFuture, ThreadPool


class StageStats:
    """Per-stage event accounting over a unified latency histogram."""

    __slots__ = ("events", "failures", "max_service_time", "per_kind", "service_time")

    def __init__(self, histogram: Histogram | None = None) -> None:
        self.events = 0
        self.failures = 0
        self.max_service_time = 0.0
        self.per_kind: dict[str, int] = {}
        self.service_time = (
            histogram if histogram is not None else Histogram(LATENCY_BOUNDS_S)
        )

    def record(self, kind: str, elapsed: float, *, failed: bool) -> None:
        """Account one handled event."""
        self.events += 1
        if failed:
            self.failures += 1
        self.service_time.record(elapsed)
        if elapsed > self.max_service_time:
            self.max_service_time = elapsed
        self.per_kind[kind] = self.per_kind.get(kind, 0) + 1

    @property
    def total_service_time(self) -> float:
        return self.service_time.sum

    @property
    def mean_service_time(self) -> float:
        return self.service_time.mean

    def snapshot(self) -> dict[str, Any]:
        """Counters as a plain dict."""
        return {
            "events": self.events,
            "failures": self.failures,
            "mean_service_time_s": self.mean_service_time,
            "max_service_time_s": self.max_service_time,
            "per_kind": dict(self.per_kind),
        }


class Stage:
    """One event-driven stage: submit work, get a TaskFuture back.

    ``max_queue`` bounds the stage's backlog (the SEDA load-shedding
    knob): a submit against a full queue raises
    :class:`~repro.errors.PoolSaturatedError`, counted in the
    ``stage.<name>.rejected`` registry counter so sheds are visible
    under ``/metrics``.
    """

    def __init__(
        self,
        name: str,
        workers: int,
        *,
        registry: MetricsRegistry | None = None,
        max_queue: int | None = None,
    ) -> None:
        self.name = name
        self._pool = ThreadPool(workers, name=f"stage-{name}", max_queue=max_queue)
        histogram = (
            registry.histogram(f"stage.{name}.service_time_s", LATENCY_BOUNDS_S)
            if registry is not None
            else None
        )
        self._rejected_counter = (
            registry.counter(f"stage.{name}.rejected") if registry is not None else None
        )
        self.stats = StageStats(histogram)

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def max_queue(self) -> int | None:
        return self._pool.max_queue

    def queue_depth(self) -> int:
        """Events waiting for a worker right now (approximate)."""
        return self._pool.queue_depth()

    def submit(
        self, handler: Callable[..., Any], /, *args: Any, kind: str = "event", **kwargs: Any
    ) -> TaskFuture:
        """Queue one event; returns its completion future.

        Raises :class:`~repro.errors.PoolSaturatedError` when the stage
        queue is at its bound.
        """
        try:
            return self._pool.submit(self._timed, handler, kind, args, kwargs)
        except PoolSaturatedError:
            if self._rejected_counter is not None:
                self._rejected_counter.inc()
            raise

    def pool_stats(self) -> dict[str, int]:
        """The backing thread pool's counters."""
        return self._pool.stats.snapshot()

    def shutdown(self) -> None:
        """Stop the stage's worker pool."""
        self._pool.shutdown()

    def __enter__(self) -> "Stage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _timed(self, handler: Callable[..., Any], kind: str, args: tuple, kwargs: dict) -> Any:
        start = time.perf_counter()
        try:
            result = handler(*args, **kwargs)
        except BaseException:
            self.stats.record(kind, time.perf_counter() - start, failed=True)
            raise
        self.stats.record(kind, time.perf_counter() - start, failed=False)
        return result
