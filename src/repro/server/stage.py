"""SEDA-style event stages (Welsh et al., SOSP-18 — the paper's [5]).

A :class:`Stage` is a named queue drained by a dedicated thread pool.
The staged architecture of Figure 2 wires two of them together:
*protocol processing* (implicitly: the HTTP connection threads) and
*application processing* (an explicit Stage of worker threads executing
service operations).

Service-time accounting is a
:class:`~repro.obs.sketch.QuantileSketch` (log-bucketed, ~1% relative
error at any magnitude — the fixed ``LATENCY_BOUNDS_S`` histogram
quantized sub-millisecond stages into two buckets); give the stage a
:class:`~repro.obs.registry.MetricsRegistry` and its latency sketch is
created in the registry (name ``stage.<name>.service_time_s``) so it
shows up under ``/metrics``, alongside live ``stage.<name>.queue_depth``
/ ``.in_flight`` / ``.saturation`` gauges.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable

from repro.errors import PoolSaturatedError
from repro.obs.registry import MetricsRegistry
from repro.obs.sketch import QuantileSketch
from repro.server.threadpool import TaskFuture, ThreadPool


class StageStats:
    """Per-stage event accounting over a latency quantile sketch.

    Any instrument speaking ``record``/``sum``/``mean`` works (the
    sketch and the fixed-bucket histogram both do).
    """

    __slots__ = ("events", "failures", "max_service_time", "per_kind", "service_time")

    def __init__(self, instrument: QuantileSketch | None = None) -> None:
        self.events = 0
        self.failures = 0
        self.max_service_time = 0.0
        self.per_kind: dict[str, int] = {}
        self.service_time = (
            instrument
            if instrument is not None
            else QuantileSketch(name="stage.service_time_s")
        )

    def record(self, kind: str, elapsed: float, *, failed: bool) -> None:
        """Account one handled event."""
        self.events += 1
        if failed:
            self.failures += 1
        self.service_time.record(elapsed)
        if elapsed > self.max_service_time:
            self.max_service_time = elapsed
        self.per_kind[kind] = self.per_kind.get(kind, 0) + 1

    @property
    def total_service_time(self) -> float:
        return self.service_time.sum

    @property
    def mean_service_time(self) -> float:
        return self.service_time.mean

    def snapshot(self) -> dict[str, Any]:
        """Counters as a plain dict."""
        return {
            "events": self.events,
            "failures": self.failures,
            "mean_service_time_s": self.mean_service_time,
            "max_service_time_s": self.max_service_time,
            "per_kind": dict(self.per_kind),
        }


class Stage:
    """One event-driven stage: submit work, get a TaskFuture back.

    ``max_queue`` bounds the stage's backlog (the SEDA load-shedding
    knob): a submit against a full queue raises
    :class:`~repro.errors.PoolSaturatedError`, counted in the
    ``stage.<name>.rejected`` registry counter so sheds are visible
    under ``/metrics``.
    """

    def __init__(
        self,
        name: str,
        workers: int,
        *,
        registry: MetricsRegistry | None = None,
        max_queue: int | None = None,
    ) -> None:
        self.name = name
        self._pool = ThreadPool(workers, name=f"stage-{name}", max_queue=max_queue)
        if registry is not None:
            instrument = registry.sketch(f"stage.{name}.service_time_s")
            self._rejected_counter = registry.counter(f"stage.{name}.rejected")
            self._queue_gauge = registry.gauge(f"stage.{name}.queue_depth")
            self._in_flight_gauge = registry.gauge(f"stage.{name}.in_flight")
            self._saturation_gauge = registry.gauge(f"stage.{name}.saturation")
        else:
            instrument = None
            self._rejected_counter = None
            self._queue_gauge = None
            self._in_flight_gauge = None
            self._saturation_gauge = None
        self._observe_tick = itertools.count()
        self.stats = StageStats(instrument)

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def max_queue(self) -> int | None:
        return self._pool.max_queue

    def queue_depth(self) -> int:
        """Events waiting for a worker right now (approximate)."""
        return self._pool.queue_depth()

    def submit(
        self, handler: Callable[..., Any], /, *args: Any, kind: str = "event", **kwargs: Any
    ) -> TaskFuture:
        """Queue one event; returns its completion future.

        Raises :class:`~repro.errors.PoolSaturatedError` when the stage
        queue is at its bound.
        """
        try:
            future = self._pool.submit(self._timed, handler, kind, args, kwargs)
        except PoolSaturatedError:
            if self._rejected_counter is not None:
                self._rejected_counter.inc()
            raise
        self._observe_queue()
        return future

    def pool_stats(self) -> dict[str, int]:
        """The backing thread pool's counters."""
        return self._pool.stats.snapshot()

    def shutdown(self) -> None:
        """Stop the stage's worker pool."""
        self._pool.shutdown()

    def __enter__(self) -> "Stage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _observe_queue(self) -> None:
        """Refresh the live queue-depth and saturation gauges.

        Sampled: every 8th submit.  ``queue_depth()`` takes the queue's
        own mutex — the lock all workers contend on for work — so a
        per-submit poll adds contention exactly where the stage is
        hottest, for gauge freshness nobody can observe.
        """
        if self._queue_gauge is None:
            return
        if next(self._observe_tick) & 0x7:
            return
        depth = self._pool.queue_depth()
        self._queue_gauge.set(depth)
        bound = self._pool.max_queue
        if bound:
            self._saturation_gauge.set(depth / bound)

    def _timed(self, handler: Callable[..., Any], kind: str, args: tuple, kwargs: dict) -> Any:
        # the queue-depth/saturation gauges refresh on submit only:
        # qsize() takes the queue's own mutex — the lock every worker
        # already contends on to pull work — so polling it from worker
        # threads per task doubles traffic on the hottest lock in the
        # stage for no added freshness
        if self._in_flight_gauge is not None:
            self._in_flight_gauge.add(1)
        start = time.perf_counter()
        try:
            result = handler(*args, **kwargs)
        except BaseException:
            self.stats.record(kind, time.perf_counter() - start, failed=True)
            raise
        finally:
            if self._in_flight_gauge is not None:
                self._in_flight_gauge.add(-1)
        self.stats.record(kind, time.perf_counter() - start, failed=False)
        return result
