"""Axis-style handler chain.

The paper deployed SPI "as server handlers" so that "services code need
not be modified" (§3.6).  We reproduce the same extension point: every
message passes through an ordered chain of handlers on the way in
(after SOAP parsing, before dispatch) and on the way out (after
execution, before response serialization).  The SPI pack/unpack logic
in :mod:`repro.core.dispatcher` is exactly such a handler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.resilience.policy import Deadline
from repro.soap.envelope import Envelope
from repro.xmlcore.tree import Element


@dataclass(slots=True)
class MessageContext:
    """Mutable state threaded through the chain for one HTTP exchange.

    ``request_entries`` starts as the envelope's body entries; request
    handlers may rewrite it (the SPI unpack handler replaces one
    ``Parallel_Method`` entry with its M children).  After execution
    ``response_entries`` holds one response element per request entry,
    in order; response handlers may rewrite that list too (the SPI pack
    handler folds M responses back into one ``Parallel_Method``).

    ``deadline`` is the request's propagated execution deadline (from
    the client's ``<res:Deadline>`` header), rebased onto this server's
    clock — None when the client sent no budget.
    """

    request_envelope: Envelope
    request_entries: list[Element] = field(default_factory=list)
    response_entries: list[Element] = field(default_factory=list)
    response_headers: list[Element] = field(default_factory=list)
    understood_headers: set[str] = field(default_factory=set)
    properties: dict[str, Any] = field(default_factory=dict)
    packed: bool = False
    deadline: Deadline | None = None

    @classmethod
    def for_envelope(cls, envelope: Envelope) -> "MessageContext":
        return cls(request_envelope=envelope, request_entries=list(envelope.body_entries))


class Handler:
    """Base handler; override either direction."""

    name = "handler"

    def invoke_request(self, context: MessageContext) -> None:
        """Called after SOAP parsing, before dispatch."""

    def invoke_response(self, context: MessageContext) -> None:
        """Called after execution, before response serialization."""


class HandlerChain:
    """Ordered handlers; requests run first→last, responses last→first."""

    def __init__(self, handlers: list[Handler] | None = None) -> None:
        self._handlers: list[Handler] = list(handlers or [])

    def add(self, handler: Handler) -> "HandlerChain":
        """Append a handler; returns self for chaining."""
        self._handlers.append(handler)
        return self

    def names(self) -> list[str]:
        """The handlers' names, in request order."""
        return [h.name for h in self._handlers]

    def __len__(self) -> int:
        return len(self._handlers)

    def run_request(self, context: MessageContext) -> None:
        """Invoke every handler's request side, first to last."""
        for handler in self._handlers:
            handler.invoke_request(context)

    def run_response(self, context: MessageContext) -> None:
        """Invoke every handler's response side, last to first."""
        for handler in reversed(self._handlers):
            handler.invoke_response(context)


class HeaderEchoHandler(Handler):
    """Diagnostic handler: copies request header entries whose tag is in
    ``tags`` onto the response (correlation ids and the like)."""

    name = "header-echo"

    def __init__(self, tags: set[str]):
        self._tags = tags

    def invoke_request(self, context: MessageContext) -> None:
        for entry in context.request_envelope.header_entries:
            if entry.tag in self._tags:
                context.properties.setdefault("echoed-headers", []).append(entry)
                context.understood_headers.add(entry.tag)

    def invoke_response(self, context: MessageContext) -> None:
        for entry in context.properties.get("echoed-headers", []):
            context.response_headers.append(entry.copy())
