"""Server side: services, pools, stages, handler chain, two architectures.

* :class:`CommonSoapServer` — the paper's Figure 1 baseline: protocol
  and application processing coupled in one thread per connection.
* :class:`StagedSoapServer` — the paper's Figure 2 contribution
  substrate: independent protocol and application thread pools, so one
  SOAP message can drive multiple service operations concurrently.
"""

from repro.server.common_arch import CommonSoapServer
from repro.server.config import ServerConfig, build_server
from repro.server.container import ServiceContainer
from repro.server.endpoint import SoapEndpoint
from repro.server.handlers import Handler, HandlerChain, MessageContext
from repro.server.security_handler import SecurityVerifyHandler
from repro.server.service import (
    ServiceDefinition,
    operation,
    service_from_functions,
    service_from_object,
)
from repro.server.stage import Stage
from repro.server.staged_arch import StagedSoapServer
from repro.server.threadpool import CompletionLatch, TaskFuture, ThreadPool

__all__ = [
    "CommonSoapServer",
    "CompletionLatch",
    "Handler",
    "HandlerChain",
    "MessageContext",
    "SecurityVerifyHandler",
    "ServerConfig",
    "ServiceContainer",
    "ServiceDefinition",
    "SoapEndpoint",
    "Stage",
    "StagedSoapServer",
    "TaskFuture",
    "ThreadPool",
    "build_server",
    "operation",
    "service_from_functions",
    "service_from_object",
]
