"""Service definitions: how application code becomes SOAP operations.

Services are plain Python — a class with :func:`operation`-decorated
methods, or bare callables registered on a :class:`ServiceDefinition`.
Nothing here knows about packing: the paper's claim that SPI "requires
no change to services code" holds because packing happens in handlers
below this layer.
"""

from __future__ import annotations

import inspect
import threading
from typing import Any, Callable, Mapping

from repro.errors import ServiceError
from repro.soap.fault import ClientFaultCause
from repro.soap.xsdtypes import python_type_to_xsd
from repro.wsdl.model import WsdlOperation, WsdlService
from repro.xmlcore.qname import is_ncname

_OPERATION_MARKER = "_repro_operation"


def operation(func: Callable | None = None, *, name: str | None = None):
    """Mark a method as a SOAP operation.

    Usable bare (``@operation``) or with an explicit wire name
    (``@operation(name="GetWeather")``).
    """

    def mark(f: Callable) -> Callable:
        setattr(f, _OPERATION_MARKER, name or f.__name__)
        return f

    return mark(func) if func is not None else mark


class ServiceDefinition:
    """A named, namespaced bundle of operations."""

    def __init__(self, name: str, namespace: str) -> None:
        if not is_ncname(name):
            raise ServiceError(f"'{name}' is not a valid service name")
        if not namespace:
            raise ServiceError("service namespace must be non-empty")
        self.name = name
        self.namespace = namespace
        self._operations: dict[str, Callable[..., Any]] = {}
        self._lock = threading.Lock()
        self.invocations = 0

    # -- registration -----------------------------------------------------

    def register(self, op_name: str, func: Callable[..., Any]) -> None:
        """Bind a callable to a wire operation name."""
        if not is_ncname(op_name):
            raise ServiceError(f"'{op_name}' is not a valid operation name")
        if op_name in self._operations:
            raise ServiceError(f"operation '{op_name}' already registered on {self.name}")
        self._operations[op_name] = func

    def operation_names(self) -> tuple[str, ...]:
        """Registered operation names, in registration order."""
        return tuple(self._operations)

    def get_operation(self, op_name: str) -> Callable[..., Any]:
        """The callable for ``op_name``; Client fault if unknown."""
        try:
            return self._operations[op_name]
        except KeyError:
            raise ClientFaultCause(
                f"service '{self.name}' has no operation '{op_name}'"
            ) from None

    # -- execution -------------------------------------------------------------

    def invoke(self, op_name: str, params: Mapping[str, Any]) -> Any:
        """Execute one operation with keyword parameters.

        Signature mismatches are the caller's fault and surface as
        Client faults; anything raised inside the operation propagates
        for the endpoint to map to a Server fault.
        """
        func = self.get_operation(op_name)
        try:
            inspect.signature(func).bind(**params)
        except TypeError as exc:
            raise ClientFaultCause(
                f"{self.name}.{op_name}: bad parameters: {exc}"
            ) from None
        with self._lock:
            self.invocations += 1
        return func(**params)

    # -- description -------------------------------------------------------------

    def describe(self, location: str = "") -> WsdlService:
        """Introspect operations into a WSDL service model."""
        ops = []
        for op_name, func in self._operations.items():
            signature = inspect.signature(func)
            params = tuple(
                (
                    pname,
                    python_type_to_xsd(
                        p.annotation if p.annotation is not inspect.Parameter.empty else str
                    ),
                )
                for pname, p in signature.parameters.items()
            )
            returns = python_type_to_xsd(
                signature.return_annotation
                if signature.return_annotation is not inspect.Signature.empty
                else str
            )
            ops.append(
                WsdlOperation(op_name, params, returns, inspect.getdoc(func) or "")
            )
        return WsdlService(
            self.name, self.namespace, tuple(ops), location,
            documentation=f"Service {self.name}",
        )


def service_from_object(
    instance: Any, *, name: str | None = None, namespace: str | None = None
) -> ServiceDefinition:
    """Build a ServiceDefinition from an object's @operation methods.

    Defaults: service name is the class name, namespace is
    ``urn:repro:<ClassName>``.
    """
    cls = type(instance)
    service = ServiceDefinition(
        name or cls.__name__, namespace or f"urn:repro:{cls.__name__}"
    )
    found = False
    for attr_name in dir(instance):
        if attr_name.startswith("_"):
            continue
        member = getattr(instance, attr_name)
        wire_name = getattr(member, _OPERATION_MARKER, None)
        if wire_name is not None and callable(member):
            service.register(wire_name, member)
            found = True
    if not found:
        raise ServiceError(
            f"{cls.__name__} defines no @operation methods"
        )
    return service


def service_from_functions(
    name: str, namespace: str, functions: Mapping[str, Callable[..., Any]]
) -> ServiceDefinition:
    """Build a ServiceDefinition from a mapping of bare callables."""
    service = ServiceDefinition(name, namespace)
    for op_name, func in functions.items():
        service.register(op_name, func)
    return service
