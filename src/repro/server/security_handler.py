"""Server-side WS-Security enforcement as a handler-chain plugin.

Deploy a :class:`SecurityVerifyHandler` ahead of the SPI dispatcher to
require a valid signed UsernameToken on every message.  Because the
signature covers the canonicalized Body, one token authenticates an
entire packed batch — which is exactly the amortization the paper's
§4.2 WS-Security argument relies on.
"""

from __future__ import annotations

import threading
from datetime import timedelta
from typing import Callable

from repro.errors import SecurityError
from repro.obs.trace import span as obs_span
from repro.server.handlers import Handler, MessageContext
from repro.soap.wssecurity import DEFAULT_FRESHNESS, SECURITY_TAG, verify_security_header

AUTHENTICATED_USER_PROPERTY = "wss.username"


class SecurityVerifyHandler(Handler):
    """Rejects messages whose wsse:Security header does not verify.

    ``lookup_secret(username) -> bytes | None`` supplies shared secrets.
    Verification failures raise :class:`SecurityError`, which the
    endpoint maps to a Server fault for the whole message (there is no
    per-entry isolation for authentication: an unauthenticated packed
    message must not execute any of its entries).
    """

    name = "wss-verify"

    def __init__(
        self,
        lookup_secret: Callable[[str], bytes | None],
        *,
        freshness: timedelta = DEFAULT_FRESHNESS,
        required: bool = True,
    ) -> None:
        self._lookup_secret = lookup_secret
        self._freshness = freshness
        self._required = required
        self._lock = threading.Lock()
        self.verified = 0
        self.rejected = 0
        self.anonymous = 0

    def invoke_request(self, context: MessageContext) -> None:
        envelope = context.request_envelope
        if envelope.find_header(SECURITY_TAG) is None and not self._required:
            with self._lock:
                self.anonymous += 1
            return
        try:
            with obs_span("security.verify"):
                username = verify_security_header(
                    envelope, self._lookup_secret, freshness=self._freshness
                )
        except SecurityError:
            with self._lock:
                self.rejected += 1
            raise
        context.properties[AUTHENTICATED_USER_PROPERTY] = username
        context.understood_headers.add(SECURITY_TAG)
        with self._lock:
            self.verified += 1

    def snapshot(self) -> dict[str, int]:
        """verified/rejected/anonymous counters."""
        with self._lock:
            return {
                "verified": self.verified,
                "rejected": self.rejected,
                "anonymous": self.anonymous,
            }
