"""SOAP-over-HTTP endpoint shared by both server architectures.

Turns an :class:`HttpRequest` into an :class:`HttpResponse`:

1. parse the envelope (protocol processing);
2. run the request handler chain (where SPI unpacking happens);
3. fault if a mustUnderstand header survived un-understood;
4. hand the request entries to the architecture's executor;
5. run the response handler chain (where SPI re-packing happens);
6. serialize the response envelope.

GET requests with a ``wsdl`` query string serve generated WSDL, as
Axis does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.errors import PoolSaturatedError, ReproError, ServerBusyError
from repro.http.message import Headers, HttpRequest, HttpResponse
from repro.obs.registry import DEFAULT_BOUNDS
from repro.obs.store import FLAG_DEADLINE, FLAG_FAULT, FLAG_SHED
from repro.obs.trace import (
    TRACE_HEADER_TAG,
    TRACE_ID_ATTR,
    Observability,
    activate,
    current_trace_id,
    span as obs_span,
)
from repro.resilience.deadline import DEADLINE_HEADER_TAG, extract_deadline
from repro.soap.constants import (
    FAULT_CLIENT,
    FAULT_MUST_UNDERSTAND,
    FAULT_SERVER_BUSY,
    FAULT_SERVER_TIMEOUT,
    FAULT_TAG,
    SOAP_CONTENT_TYPE,
)
from repro.soap.envelope import Envelope
from repro.soap.fault import SoapFault, fault_code_of
from repro.soap.multiref import has_multirefs, resolve_multirefs
from repro.soap.sercache import ResponseTemplateCache
from repro.server.container import ServiceContainer
from repro.server.handlers import HandlerChain, MessageContext
from repro.wsdl.generator import wsdl_for_service
from repro.xmlcore.tree import Element

# The executor receives the (possibly unpacked) request entries plus the
# message context, whose ``deadline`` it must honour per entry.
Executor = Callable[[list[Element], MessageContext], list[Element]]

# HTTP status for a whole-message fault, by local faultcode.  Busy maps
# to 503 (shed, retry later) and Timeout to 504 (deadline expired);
# everything else keeps the SOAP 1.1 default of 500.
FAULTCODE_HTTP_STATUS = {
    FAULT_SERVER_BUSY: 503,
    FAULT_SERVER_TIMEOUT: 504,
}


@dataclass(slots=True)
class EndpointStats:
    http_requests: int = 0
    soap_messages: int = 0
    envelope_faults: int = 0
    wsdl_requests: int = 0
    parse_time: float = 0.0
    serialize_time: float = 0.0

    def snapshot(self) -> dict:
        """Counters as a plain dict."""
        return {
            "http_requests": self.http_requests,
            "soap_messages": self.soap_messages,
            "envelope_faults": self.envelope_faults,
            "wsdl_requests": self.wsdl_requests,
            "parse_time_s": self.parse_time,
            "serialize_time_s": self.serialize_time,
        }


class SupportsExecute(Protocol):  # pragma: no cover - typing aid
    def __call__(
        self, entries: list[Element], context: MessageContext
    ) -> list[Element]: ...


class SoapEndpoint:
    """HTTP app implementing the SOAP binding over a ServiceContainer."""

    def __init__(
        self,
        container: ServiceContainer,
        executor: Executor,
        *,
        chain: HandlerChain | None = None,
        observability: Observability | None = None,
        serialization_cache: ResponseTemplateCache | None = None,
    ) -> None:
        """``serialization_cache``: when set, response envelopes render
        through the template cache (byte-identical output, markup
        reused across calls).  Fault responses always render fresh."""
        self.container = container
        self.chain = chain if chain is not None else HandlerChain()
        self._executor = executor
        self.stats = EndpointStats()
        self._obs = observability
        self.serialization_cache = serialization_cache

    # -- HTTP entry point ---------------------------------------------------

    def __call__(self, request: HttpRequest) -> HttpResponse:
        self.stats.http_requests += 1
        if request.method == "GET":
            return self._handle_get(request)
        if request.method != "POST":
            return HttpResponse(405, Headers({"Allow": "POST, GET"}), b"")
        return self._handle_soap(request)

    # -- WSDL ------------------------------------------------------------------

    def _handle_get(self, request: HttpRequest) -> HttpResponse:
        path, _, query = request.path.partition("?")
        if path.rstrip("/") in ("", "/services") and not query:
            return self._services_index()
        if query.lower() != "wsdl":
            return HttpResponse(404, body=b"only ?wsdl GETs and /services are served")
        self.stats.wsdl_requests += 1
        wanted = path.rstrip("/").rsplit("/", 1)[-1]
        for service in self.container.services():
            if service.name == wanted:
                try:
                    document = wsdl_for_service(service.describe(location=path))
                except ReproError as exc:
                    # a WSDL generation failure must not escape as an
                    # unclassified 500 (fault-flow-escape invariant)
                    self.stats.envelope_faults += 1
                    return HttpResponse(
                        500, body=f"WSDL generation failed: {exc}".encode()
                    )
                return HttpResponse(
                    200, Headers({"Content-Type": "text/xml"}), document.encode("utf-8")
                )
        return HttpResponse(404, body=f"no service named '{wanted}'".encode())

    def _services_index(self) -> HttpResponse:
        """Axis-style deployed-services listing at GET /services."""
        lines = ["Deployed services:", ""]
        for service in self.container.services():
            lines.append(f"{service.name}  ({service.namespace})")
            lines.append(f"  wsdl: /services/{service.name}?wsdl")
            for op_name in service.operation_names():
                lines.append(f"  - {op_name}")
            lines.append("")
        return HttpResponse(
            200,
            Headers({"Content-Type": "text/plain; charset=utf-8"}),
            "\n".join(lines).encode("utf-8"),
        )

    # -- SOAP --------------------------------------------------------------------

    def _handle_soap(self, request: HttpRequest) -> HttpResponse:
        start = time.perf_counter()
        try:
            # Pull-cursor request parse: header and body entries come
            # straight off the token stream, no scaffold tree (the
            # server-side extension of the PR-1 pull fast path).
            with obs_span("soap.parse", detail=f"{len(request.body)}B"):
                envelope = Envelope.parse(request.body, server=True)
            if has_multirefs(envelope.body_entries):
                # Axis rpc/encoded interop: inline href/multiRef graphs
                # before anything downstream sees the body
                envelope.body_entries = resolve_multirefs(envelope.body_entries)
        except ReproError as exc:
            self.stats.envelope_faults += 1
            fault = SoapFault(FAULT_CLIENT, f"unparseable SOAP message: {exc}")
            return self._fault_response(fault, status=400)
        self.stats.parse_time += time.perf_counter() - start
        self.stats.soap_messages += 1
        if self._obs is not None:
            self._adopt_soap_trace(envelope)

        context = MessageContext.for_envelope(envelope)
        # Deadline propagation: the header is mustUnderstand=false, so
        # understanding it here is an upgrade, not a requirement.
        context.deadline = extract_deadline(envelope)
        context.understood_headers.add(DEADLINE_HEADER_TAG)
        try:
            self.chain.run_request(context)
        except ReproError as exc:
            self.stats.envelope_faults += 1
            return self._fault_response(SoapFault.from_exception(exc), status=500)
        if self._obs is not None:
            self._obs.registry.histogram("soap.pack_degree", DEFAULT_BOUNDS).record(
                len(context.request_entries)
            )

        missed = envelope.unprocessed_must_understand(context.understood_headers)
        if missed:
            self.stats.envelope_faults += 1
            fault = SoapFault(
                FAULT_MUST_UNDERSTAND,
                f"mustUnderstand header <{missed[0].tag}> was not processed",
            )
            return self._fault_response(fault, status=500)

        try:
            context.response_entries = self._executor(context.request_entries, context)
        except (ServerBusyError, PoolSaturatedError) as exc:
            # whole-message shed: the architecture could not take even
            # part of this request (e.g. a saturated application stage)
            self.stats.envelope_faults += 1
            if self._obs is not None:
                self._obs.registry.counter("resilience.shed").inc()
            return self._fault_response(
                SoapFault(FAULT_SERVER_BUSY, str(exc)), status=503
            )
        if self._obs is not None and self._obs.store is not None:
            # Packed responses carry per-entry faults inside an HTTP 200
            # — invisible to the status-based flagging at completion
            # time.  Mark the trace now, while the entries are still
            # unpacked, so tail sampling always retains it.
            self._mark_entry_faults(context.response_entries)
        # Response phase: handler chain and serialization were the last
        # dispatch segment that could leak a ReproError to the HTTP
        # layer as an unclassified 500 (found by fault-flow-escape).
        start = time.perf_counter()
        try:
            self.chain.run_response(context)
            with obs_span("soap.serialize") as serialize_span:
                response_envelope = Envelope()
                response_envelope.header_entries = list(context.response_headers)
                response_envelope.body_entries = list(context.response_entries)
                if self.serialization_cache is not None:
                    body = self.serialization_cache.render_envelope(response_envelope)
                else:
                    body = response_envelope.to_bytes()
                serialize_span.detail = f"{len(body)}B"
        except ReproError as exc:
            self.stats.envelope_faults += 1
            return self._fault_response(SoapFault.from_exception(exc), status=500)
        self.stats.serialize_time += time.perf_counter() - start

        status = 200
        if (
            not context.packed
            and len(context.response_entries) == 1
            and context.response_entries[0].tag == FAULT_TAG
        ):
            code = fault_code_of(context.response_entries[0]) or ""
            status = FAULTCODE_HTTP_STATUS.get(code, 500)
            self.stats.envelope_faults += 1
            if self._obs is not None and status == 503:
                self._obs.registry.counter("resilience.shed").inc()
        return HttpResponse(
            status, Headers({"Content-Type": SOAP_CONTENT_TYPE}), body
        )

    def _adopt_soap_trace(self, envelope: Envelope) -> None:
        """Re-home the ambient trace onto the SOAP-carried trace id.

        The client sends the id twice — HTTP header and a
        mustUnderstand=false SOAP header entry.  If an intermediary
        stripped the HTTP header, the HTTP layer minted a fresh id;
        adopting the envelope's copy here stitches the server spans back
        onto the client's trace.
        """
        header = envelope.find_header(TRACE_HEADER_TAG)
        if header is None:
            return
        carried = header.get(TRACE_ID_ATTR)
        if carried and carried != current_trace_id():
            activate(self._obs.tracer, carried)

    def _mark_entry_faults(self, entries: list[Element]) -> None:
        """Flag the active trace in the span store for each entry fault
        (shed/deadline/fault by faultcode)."""
        trace_id = current_trace_id()
        if trace_id is None:
            return
        store = self._obs.store
        for entry in entries:
            if entry.tag != FAULT_TAG:
                continue
            code = fault_code_of(entry) or ""
            if code == FAULT_SERVER_BUSY:
                flag = FLAG_SHED
            elif code == FAULT_SERVER_TIMEOUT:
                flag = FLAG_DEADLINE
            else:
                flag = FLAG_FAULT
            store.mark(trace_id, flag)

    def _fault_response(self, fault: SoapFault, *, status: int) -> HttpResponse:
        envelope = Envelope()
        envelope.add_body(fault.to_element())
        return HttpResponse(
            status,
            Headers({"Content-Type": SOAP_CONTENT_TYPE}),
            envelope.to_bytes(),
        )
