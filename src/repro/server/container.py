"""Service container: the registry + per-entry execution core.

Shared by both server architectures.  Given one request body entry,
:meth:`ServiceContainer.execute_entry` decodes it (trie-matched), runs
the operation, and returns a response element — or a Fault element for
that entry alone, which matters in packed mode where one bad request
must not poison its siblings.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.obs.registry import MetricsRegistry
from repro.soap.constants import (
    FAULT_SERVER_BUSY,
    FAULT_SERVER_TIMEOUT,
    REQUEST_ID_ATTR,
)
from repro.soap.deserializer import OperationMatcher, parse_rpc_request
from repro.soap.fault import SoapFault
from repro.soap.serializer import serialize_rpc_response
from repro.server.service import ServiceDefinition
from repro.xmlcore.tree import Element


def _fault_class(fault: SoapFault) -> str:
    """Map a fault onto the rollup taxonomy (shed/timeout/retryable/fatal)."""
    if fault.faultcode == FAULT_SERVER_BUSY:
        return "shed"
    if fault.faultcode == FAULT_SERVER_TIMEOUT:
        return "timeout"
    return "retryable" if fault.is_retryable() else "fatal"


def entry_fault(entry: Element, fault: SoapFault) -> Element:
    """``fault`` rendered as the response slot for ``entry``.

    Copies the SPI ``requestID`` so the client dispatcher can correlate
    the per-entry fault — the mechanism behind partial-success packs
    (one bad/late entry faults its own slot, siblings still answer).
    """
    element = fault.to_element()
    request_id = entry.get(REQUEST_ID_ATTR)
    if request_id is not None:
        element.set(REQUEST_ID_ATTR, request_id)
    return element


@dataclass(slots=True)
class ContainerStats:
    entries_executed: int = 0
    faults: int = 0
    total_execute_time: float = 0.0
    by_service: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> dict:
        """Counters as a plain dict."""
        return {
            "entries_executed": self.entries_executed,
            "faults": self.faults,
            "total_execute_time_s": self.total_execute_time,
            "by_service": dict(self.by_service),
        }


class ServiceContainer:
    """All services deployed in one server process.

    The travel-agent evaluation (§4.3) relies on "the airline services
    [being] in one service container" — this is that container.
    """

    def __init__(
        self,
        services: list[ServiceDefinition] | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        """``registry``: when given, every executed entry additionally
        feeds the per-``(namespace, operation)``
        :class:`~repro.obs.rollup.ObsRollup` — latency EWMA, error-rate
        EWMAs by fault class, in-flight gauge — which is what
        ``registry.rollup(ns, op)`` consumers (hedging thresholds, the
        live ``/slo`` gate, the bench reporter) read."""
        self._services: dict[str, ServiceDefinition] = {}
        self._matcher = OperationMatcher()
        self._registry = registry
        # (namespace, operation) -> ObsRollup, written only on first
        # sight of a target.  Reads go through dict.get, which is
        # atomic under the GIL, so the per-entry hot path skips the
        # registry lock entirely once a target is warm.
        self._rollups: dict[tuple[str, str], object] = {}
        self._lock = threading.Lock()
        self.stats = ContainerStats()
        for service in services or []:
            self.deploy(service)

    def deploy(self, service: ServiceDefinition) -> None:
        """Register a service; its namespace must be unused."""
        with self._lock:
            if service.namespace in self._services:
                raise ServiceError(
                    f"a service is already deployed at namespace '{service.namespace}'"
                )
            self._services[service.namespace] = service
            for op_name in service.operation_names():
                self._matcher.register(service.namespace, op_name, service)

    def service_for(self, namespace: str) -> ServiceDefinition:
        """The service deployed at ``namespace``; raises if absent."""
        with self._lock:
            try:
                return self._services[namespace]
            except KeyError:
                raise ServiceError(
                    f"no service deployed at namespace '{namespace}'"
                ) from None

    def services(self) -> list[ServiceDefinition]:
        """Every deployed service, in deployment order."""
        with self._lock:
            return list(self._services.values())

    @property
    def matcher(self) -> OperationMatcher:
        return self._matcher

    def _rollup_for(self, entry: Element):
        """The entry's target rollup, via a lock-free warm-path cache."""
        key = (entry.namespace, entry.local_name)
        rollup = self._rollups.get(key)
        if rollup is None:
            rollup = self._registry.rollup(entry.namespace, entry.local_name)
            self._rollups[key] = rollup
        return rollup

    def execute_entry(self, entry: Element) -> Element:
        """Decode, dispatch and execute one request entry.

        Always returns an element: an ``<opResponse>`` on success, a
        ``<Fault>`` on failure.  The entry's SPI ``requestID`` attribute
        (if present) is copied onto the result so the client dispatcher
        can correlate it.
        """
        request_id = entry.get(REQUEST_ID_ATTR)
        rollup = self._rollup_for(entry) if self._registry is not None else None
        if rollup is not None:
            rollup.begin()
        fault_class: str | None = None
        start = time.perf_counter()
        try:
            service = self._matcher.match(entry)
            request = parse_rpc_request(entry, self._matcher)
            result = service.invoke(request.operation, request.params)
            response = serialize_rpc_response(
                request.namespace, request.operation, result
            )
            failed = False
        except BaseException as exc:
            fault = SoapFault.from_exception(exc)
            response = fault.to_element()
            fault_class = _fault_class(fault)
            failed = True
        elapsed = time.perf_counter() - start
        if rollup is not None:
            rollup.complete(elapsed, fault_class)

        if request_id is not None:
            response.set(REQUEST_ID_ATTR, request_id)
        with self._lock:
            self.stats.entries_executed += 1
            self.stats.total_execute_time += elapsed
            if failed:
                self.stats.faults += 1
            else:
                key = entry.namespace
                self.stats.by_service[key] = self.stats.by_service.get(key, 0) + 1
        return response
