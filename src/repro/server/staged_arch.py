"""Figure 2: the staged independent thread pool architecture.

Two independent pools: the protocol-processing stage (the HTTP
connection threads, which parse HTTP+SOAP) and the application-
processing stage (a :class:`~repro.server.stage.Stage` of workers
executing service operations).

"After parsing the SOAP message, the protocol processing thread goes to
sleep ... some worker threads from the thread pool of the application
processing stage will be assigned to complete the services request.
When the event about the completion of services application execution
happens ... the sleeping thread of protocol processing stage will be
waked up to complete generating the packet."

The executor below is that sentence in code: submit every entry to the
application stage, park the protocol thread on a
:class:`~repro.server.threadpool.CompletionLatch`, wake it when the
last worker finishes, then assemble the response in arrival order.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Any, Iterator

from repro.errors import PoolSaturatedError, ServiceError
from repro.obs import trace as obs_trace
from repro.server.config import ServerConfig, build_http_server, config_from_legacy
from repro.server.container import ServiceContainer, entry_fault
from repro.server.endpoint import SoapEndpoint
from repro.server.service import ServiceDefinition
from repro.server.stage import Stage
from repro.server.threadpool import CompletionLatch
from repro.soap.fault import SoapFault, busy_fault, timeout_fault
from repro.transport.base import Address
from repro.transport.tcp import TcpTransport
from repro.xmlcore.tree import Element

DEFAULT_APP_WORKERS = 16
EXECUTION_TIMEOUT = 120.0


class StagedSoapServer:
    """Protocol and application processing decoupled into two stages."""

    architecture = "staged"

    def __init__(
        self,
        services: list[ServiceDefinition] | None = None,
        *,
        config: ServerConfig | None = None,
        **legacy: Any,
    ) -> None:
        """Build from ``config=``; the old keyword signature still
        works but warns (use :func:`repro.server.build_server`)."""
        if config is not None:
            if services is not None or legacy:
                raise TypeError(
                    "pass either config= or the legacy keyword "
                    "arguments, not both"
                )
        else:
            warnings.warn(
                "repro.server.StagedSoapServer(services, ...) is deprecated; "
                "use repro.server.build_server(ServerConfig("
                "architecture='staged', ...))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = config_from_legacy("staged", services, legacy)
        if config.transport is None:
            config = config.replace(transport=TcpTransport())
        self.config = config
        observability = config.observability
        self.observability = observability
        self.serialization_cache = config.serialization_cache
        self.container = ServiceContainer(
            list(config.services),
            registry=observability.registry if observability is not None else None,
        )
        # app_queue_limit bounds the application stage's backlog: once
        # that many entries wait for a worker, further entries shed with
        # a Server.Busy fault instead of queueing unboundedly.
        self.app_stage = Stage(
            "application",
            config.app_workers,
            registry=observability.registry if observability is not None else None,
            max_queue=config.app_queue_limit,
        )
        self.endpoint = SoapEndpoint(
            self.container,
            self._execute,
            chain=config.chain,
            observability=observability,
            serialization_cache=config.serialization_cache,
        )
        self.transport = config.transport
        self.http = build_http_server(self.endpoint, config)

    def _execute(
        self, entries: list[Element], context: MessageContext
    ) -> list[Element]:
        from repro.core.oneway import accepted_response, is_one_way

        if not entries:
            return []
        deadline = context.deadline
        results: list[Element | None] = [None] * len(entries)
        waited: list[tuple[int, Element]] = []
        # The protocol thread's trace context does not follow work onto
        # the stage workers' threads; capture it here and attach each
        # per-entry execute span explicitly.
        ctx = obs_trace.current()

        # Triage pass: expired entries fault immediately (retryable —
        # the work never ran), one-way entries are acknowledged now and
        # executed fire-and-forget, everything else waits for a worker.
        # Each fault claims only its own slot: siblings still answer
        # (partial-success packs).
        for index, entry in enumerate(entries):
            if deadline is not None and deadline.expired():
                results[index] = entry_fault(
                    entry,
                    timeout_fault(
                        f"deadline expired before '{entry.local_name}' ran"
                    ),
                )
                self._count("resilience.deadline_expired")
                self._observe_skipped(entry, "timeout")
            elif is_one_way(entry):
                results[index] = accepted_response(entry)
                try:
                    self.app_stage.submit(
                        self._execute_traced, ctx, entry, kind="one-way-execution"
                    )
                except (PoolSaturatedError, ServiceError) as exc:
                    # the ack is already committed; record the shed in
                    # place of the silently-dropped execution.  A
                    # ServiceError means the stage is draining for
                    # shutdown — same retryable busy answer, not a
                    # bare 500 (fault-flow-escape invariant).
                    results[index] = entry_fault(entry, busy_fault(str(exc)))
                    self._count("resilience.shed")
                    self._observe_skipped(entry, "shed")
            else:
                waited.append((index, entry))

        if len(waited) == 1:
            # Nothing to overlap: keep a single waited request on the
            # calling thread and spare a context switch (the common
            # fast path).  On the threaded backend that is the HTTP
            # connection thread; on the evented backend it is a bounded
            # http-handler stage worker — never the event loop — so the
            # fast path stays safe under SEDA's "nothing heavy on the
            # loop" rule and the app stage still bounds overlapped
            # packs.
            index, entry = waited[0]
            with obs_trace.span("execute", detail=entry.local_name):
                results[index] = self.container.execute_entry(entry)
        elif waited:
            latch = CompletionLatch(len(waited))

            def run(index: int, entry: Element) -> None:
                try:
                    results[index] = self._execute_traced(ctx, entry)
                except BaseException as exc:  # fault the slot, not the pack
                    results[index] = entry_fault(entry, SoapFault.from_exception(exc))
                finally:
                    latch.count_down()

            for index, entry in waited:
                try:
                    self.app_stage.submit(run, index, entry, kind="service-execution")
                except (PoolSaturatedError, ServiceError) as exc:
                    # stage saturated mid-pack (or draining for
                    # shutdown): shed this entry alone, retryably
                    results[index] = entry_fault(entry, busy_fault(str(exc)))
                    self._count("resilience.shed")
                    self._observe_skipped(entry, "shed")
                    latch.count_down()

            # the protocol thread "goes to sleep" here; its patience is
            # the client's remaining budget, capped by the local bound
            wait_s = EXECUTION_TIMEOUT
            if deadline is not None:
                wait_s = min(wait_s, max(deadline.remaining(), 0.001))
            if not latch.wait(timeout=wait_s):
                # Workers may still be running; answer for them with a
                # retryable timeout fault per unfinished slot rather
                # than failing the entire message.
                for index, entry in waited:
                    if results[index] is None:
                        results[index] = entry_fault(
                            entry,
                            timeout_fault(
                                f"'{entry.local_name}' did not finish "
                                f"within {wait_s:.3f}s"
                            ),
                        )
                        self._count("resilience.deadline_expired")
                        self._observe_skipped(entry, "timeout")
        return [entry for entry in results if entry is not None]

    def _count(self, name: str) -> None:
        if self.observability is not None:
            self.observability.registry.counter(name).inc()

    def _observe_skipped(self, entry: Element, fault_class: str) -> None:
        """Entries faulted before (or instead of) executing — sheds and
        deadline expiries — still count into the target's rollup; the
        container never saw them."""
        if self.observability is not None:
            self.observability.registry.rollup(
                entry.namespace, entry.local_name
            ).observe(0.0, fault_class)

    def _execute_traced(self, ctx, entry: Element) -> Element:
        with obs_trace.span_in(ctx, "execute", detail=entry.local_name):
            return self.container.execute_entry(entry)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Address:
        """Start the HTTP layer; returns the bound address."""
        return self.http.start()

    def stop(self) -> None:
        """Stop the HTTP layer and the application stage."""
        self.http.stop()
        self.app_stage.shutdown()

    @contextlib.contextmanager
    def running(self) -> Iterator[Address]:
        """Context manager: start, yield the bound address, stop."""
        address = self.start()
        try:
            yield address
        finally:
            self.stop()

    @property
    def address(self) -> Address:
        return self.http.address

    def stats(self) -> dict:
        """Endpoint/container/stage/HTTP counters as a dict."""
        return {
            "architecture": self.architecture,
            "endpoint": self.endpoint.stats.snapshot(),
            "container": self.container.stats.snapshot(),
            "app_stage": self.app_stage.stats.snapshot(),
            "app_pool": self.app_stage.pool_stats(),
            "connections_accepted": self.http.connections_accepted,
            "requests_served": self.http.requests_served,
        }
