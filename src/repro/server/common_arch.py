"""Figure 1: the common web-service server architecture.

"The thread created in transport layer will complete the functions from
the HTTP parsing to service operation execution.  HTTP parsing, SOAP
parsing and service execution are coupled tightly in the same thread."

That coupling is expressed by the executor: request entries are run
synchronously in the HTTP connection thread, one after another.
"""

from __future__ import annotations

import contextlib
import warnings
from typing import Any, Iterator

from repro.obs.trace import span as obs_span
from repro.server.config import ServerConfig, build_http_server, config_from_legacy
from repro.server.container import ServiceContainer, entry_fault
from repro.server.endpoint import SoapEndpoint
from repro.server.service import ServiceDefinition
from repro.soap.fault import timeout_fault
from repro.transport.base import Address
from repro.transport.tcp import TcpTransport
from repro.xmlcore.tree import Element


class CommonSoapServer:
    """One thread per connection doing protocol *and* application work."""

    architecture = "common"

    def __init__(
        self,
        services: list[ServiceDefinition] | None = None,
        *,
        config: ServerConfig | None = None,
        **legacy: Any,
    ) -> None:
        """Build from ``config=``; the old keyword signature still
        works but warns (use :func:`repro.server.build_server`)."""
        if config is not None:
            if services is not None or legacy:
                raise TypeError(
                    "pass either config= or the legacy keyword "
                    "arguments, not both"
                )
        else:
            warnings.warn(
                "repro.server.CommonSoapServer(services, ...) is deprecated; "
                "use repro.server.build_server(ServerConfig("
                "architecture='common', ...))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = config_from_legacy("common", services, legacy)
        if config.transport is None:
            config = config.replace(transport=TcpTransport())
        self.config = config
        observability = config.observability
        self.observability = observability
        self.serialization_cache = config.serialization_cache
        self.container = ServiceContainer(
            list(config.services),
            registry=observability.registry if observability is not None else None,
        )
        self.endpoint = SoapEndpoint(
            self.container,
            self._execute,
            chain=config.chain,
            observability=observability,
            serialization_cache=config.serialization_cache,
        )
        self.transport = config.transport
        self.http = build_http_server(self.endpoint, config)

    def _execute(
        self, entries: list[Element], context: MessageContext
    ) -> list[Element]:
        from repro.core.oneway import accepted_response, is_one_way

        # protocol thread == application thread: sequential, in place.
        # One-way entries still execute here (Figure 1 has no other
        # thread to give them to); only their results are discarded.
        deadline = context.deadline
        results = []
        for entry in entries:
            if deadline is not None and deadline.expired():
                # The client's budget is gone; running the entry would
                # only produce an answer nobody is waiting for.  Fault
                # the slot (retryable: the work never ran) and keep any
                # sibling results already computed — partial success.
                results.append(
                    entry_fault(
                        entry,
                        timeout_fault(
                            f"deadline expired before '{entry.local_name}' ran"
                        ),
                    )
                )
                self._count_deadline_expired()
                if self.observability is not None:
                    # never reached the container: account the expiry
                    # into the target's rollup here
                    self.observability.registry.rollup(
                        entry.namespace, entry.local_name
                    ).observe(0.0, "timeout")
                continue
            with obs_span("execute", detail=entry.local_name):
                if is_one_way(entry):
                    self.container.execute_entry(entry)
                    results.append(accepted_response(entry))
                else:
                    results.append(self.container.execute_entry(entry))
        return results

    def _count_deadline_expired(self) -> None:
        if self.observability is not None:
            self.observability.registry.counter("resilience.deadline_expired").inc()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Address:
        """Start the HTTP layer; returns the bound address."""
        return self.http.start()

    def stop(self) -> None:
        """Stop the HTTP layer."""
        self.http.stop()

    @contextlib.contextmanager
    def running(self) -> Iterator[Address]:
        """Context manager: start, yield the bound address, stop."""
        address = self.start()
        try:
            yield address
        finally:
            self.stop()

    @property
    def address(self) -> Address:
        return self.http.address

    def stats(self) -> dict:
        """Endpoint/container/HTTP counters as a dict."""
        return {
            "architecture": self.architecture,
            "endpoint": self.endpoint.stats.snapshot(),
            "container": self.container.stats.snapshot(),
            "connections_accepted": self.http.connections_accepted,
            "requests_served": self.http.requests_served,
        }
