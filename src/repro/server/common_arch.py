"""Figure 1: the common web-service server architecture.

"The thread created in transport layer will complete the functions from
the HTTP parsing to service operation execution.  HTTP parsing, SOAP
parsing and service execution are coupled tightly in the same thread."

That coupling is expressed by the executor: request entries are run
synchronously in the HTTP connection thread, one after another.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.http.compression import CompressionPolicy
from repro.http.server import HttpServer
from repro.obs.trace import Observability, span as obs_span
from repro.soap.sercache import ResponseTemplateCache
from repro.server.container import ServiceContainer, entry_fault
from repro.server.endpoint import SoapEndpoint
from repro.server.handlers import HandlerChain, MessageContext
from repro.server.service import ServiceDefinition
from repro.soap.fault import timeout_fault
from repro.transport.base import Address, Transport
from repro.transport.tcp import TcpTransport
from repro.xmlcore.tree import Element


class CommonSoapServer:
    """One thread per connection doing protocol *and* application work."""

    architecture = "common"

    def __init__(
        self,
        services: list[ServiceDefinition],
        *,
        transport: Transport | None = None,
        address: Address = ("127.0.0.1", 0),
        chain: HandlerChain | None = None,
        chunk_responses_over: int | None = None,
        observability: Observability | None = None,
        serialization_cache: ResponseTemplateCache | None = None,
        compression: CompressionPolicy | None = None,
        slo_config: dict | None = None,
    ) -> None:
        self.observability = observability
        self.serialization_cache = serialization_cache
        self.container = ServiceContainer(
            services,
            registry=observability.registry if observability is not None else None,
        )
        self.endpoint = SoapEndpoint(
            self.container,
            self._execute,
            chain=chain,
            observability=observability,
            serialization_cache=serialization_cache,
        )
        self.transport = transport if transport is not None else TcpTransport()
        self.http = HttpServer(
            self.endpoint,
            transport=self.transport,
            address=address,
            chunk_responses_over=chunk_responses_over,
            observability=observability,
            compression=compression,
            slo_config=slo_config,
        )

    def _execute(
        self, entries: list[Element], context: MessageContext
    ) -> list[Element]:
        from repro.core.oneway import accepted_response, is_one_way

        # protocol thread == application thread: sequential, in place.
        # One-way entries still execute here (Figure 1 has no other
        # thread to give them to); only their results are discarded.
        deadline = context.deadline
        results = []
        for entry in entries:
            if deadline is not None and deadline.expired():
                # The client's budget is gone; running the entry would
                # only produce an answer nobody is waiting for.  Fault
                # the slot (retryable: the work never ran) and keep any
                # sibling results already computed — partial success.
                results.append(
                    entry_fault(
                        entry,
                        timeout_fault(
                            f"deadline expired before '{entry.local_name}' ran"
                        ),
                    )
                )
                self._count_deadline_expired()
                if self.observability is not None:
                    # never reached the container: account the expiry
                    # into the target's rollup here
                    self.observability.registry.rollup(
                        entry.namespace, entry.local_name
                    ).observe(0.0, "timeout")
                continue
            with obs_span("execute", detail=entry.local_name):
                if is_one_way(entry):
                    self.container.execute_entry(entry)
                    results.append(accepted_response(entry))
                else:
                    results.append(self.container.execute_entry(entry))
        return results

    def _count_deadline_expired(self) -> None:
        if self.observability is not None:
            self.observability.registry.counter("resilience.deadline_expired").inc()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> Address:
        """Start the HTTP layer; returns the bound address."""
        return self.http.start()

    def stop(self) -> None:
        """Stop the HTTP layer."""
        self.http.stop()

    @contextlib.contextmanager
    def running(self) -> Iterator[Address]:
        """Context manager: start, yield the bound address, stop."""
        address = self.start()
        try:
            yield address
        finally:
            self.stop()

    @property
    def address(self) -> Address:
        return self.http.address

    def stats(self) -> dict:
        """Endpoint/container/HTTP counters as a dict."""
        return {
            "architecture": self.architecture,
            "endpoint": self.endpoint.stats.snapshot(),
            "container": self.container.stats.snapshot(),
            "connections_accepted": self.http.connections_accepted,
            "requests_served": self.http.requests_served,
        }
