"""One :class:`ServerConfig` + :func:`build_server` for every deployment.

Before this module, standing up a server meant choosing a class
(:class:`~repro.server.common_arch.CommonSoapServer` /
:class:`~repro.server.staged_arch.StagedSoapServer`) and threading a
sprawl of keyword arguments through whichever layers were in between
(``serve.py`` flags, bench testbeds, test fixtures).  Now every knob —
architecture, I/O backend, observability, compression, serialization
cache, SLO budgets, the event-loop's connection/deadline bounds —
lives in one frozen dataclass, and one facade builds the deployment::

    from repro.server import ServerConfig, build_server

    server = build_server(ServerConfig(
        services=[service],
        architecture="staged",   # "common" | "staged"   (paper Fig. 1/2)
        backend="evented",       # "threaded" | "evented" (C10K loop)
        observability=Observability(),
    ))
    with server.running() as address:
        ...

The old constructors still work but warn with ``DeprecationWarning``
(errors under pytest); see the README migration table.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

from repro.http.compression import CompressionPolicy
from repro.http.core import HttpServerCore
from repro.obs.trace import Observability
from repro.soap.sercache import ResponseTemplateCache
from repro.transport.base import Address, Transport

ARCHITECTURES = ("common", "staged")
BACKENDS = ("threaded", "evented")

DEFAULT_APP_WORKERS = 16


@dataclasses.dataclass(frozen=True)
class ServerConfig:
    """Everything needed to build one SOAP server deployment.

    Grouped by layer:

    * **application** — ``services``, ``chain``, ``architecture``,
      ``app_workers`` / ``app_queue_limit`` (the Fig. 2 application
      stage; ignored by the common architecture);
    * **protocol** — ``backend``, ``transport``, ``address``,
      ``max_connections`` (threaded: accept gate; evented: the
      accept-overload shed budget), and the evented-only
      ``protocol_workers`` / ``protocol_queue_limit`` handler stage
      plus ``idle_timeout`` / ``write_timeout`` / ``handler_timeout``
      loop deadlines;
    * **wire** — ``chunk_responses_over`` / ``chunk_size`` (HPDC-11
      chunking), ``compression``;
    * **observability** — ``observability``, ``serialization_cache``,
      ``slo_config``.
    """

    services: Sequence[Any] = ()
    architecture: str = "staged"
    backend: str = "threaded"
    transport: Transport | None = None
    address: Address = ("127.0.0.1", 0)
    chain: Any | None = None
    app_workers: int = DEFAULT_APP_WORKERS
    app_queue_limit: int | None = None
    protocol_workers: int = 8
    protocol_queue_limit: int | None = 1024
    max_connections: int | None = None
    idle_timeout: float | None = 30.0
    write_timeout: float | None = 30.0
    handler_timeout: float | None = 60.0
    chunk_responses_over: int | None = None
    chunk_size: int = 8192
    compression: CompressionPolicy | None = None
    serialization_cache: ResponseTemplateCache | None = None
    observability: Observability | None = None
    slo_config: dict | None = None

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"architecture must be one of {ARCHITECTURES}, "
                f"not {self.architecture!r}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, not {self.backend!r}"
            )

    def replace(self, **changes: Any) -> "ServerConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)


def build_server(config: ServerConfig):
    """The facade: one config in, one ready-to-``start()`` server out."""
    from repro.server.common_arch import CommonSoapServer
    from repro.server.staged_arch import StagedSoapServer

    cls = StagedSoapServer if config.architecture == "staged" else CommonSoapServer
    return cls(config=config)


def build_http_server(app: Callable, config: ServerConfig) -> HttpServerCore:
    """The HTTP layer for ``config`` — shared by both architectures.

    Picks the backend class, and on the evented path installs the SOAP
    ``Server.Busy`` body for accept-overload 503s (the http layer
    cannot import soap, so the fault body is injected from here).
    """
    from repro.transport.tcp import TcpTransport

    transport = config.transport if config.transport is not None else TcpTransport()
    common = dict(
        transport=transport,
        address=config.address,
        chunk_responses_over=config.chunk_responses_over,
        chunk_size=config.chunk_size,
        max_connections=config.max_connections,
        observability=config.observability,
        compression=config.compression,
        slo_config=config.slo_config,
    )
    if config.backend == "evented":
        from repro.http.evented import EventedHttpServer

        server: HttpServerCore = EventedHttpServer(
            app,
            protocol_workers=config.protocol_workers,
            protocol_queue_limit=config.protocol_queue_limit,
            idle_timeout=config.idle_timeout,
            write_timeout=config.write_timeout,
            handler_timeout=config.handler_timeout,
            **common,
        )
    else:
        from repro.http.server import HttpServer

        server = HttpServer(app, **common)
    server.set_busy_body(*_busy_soap_body())
    return server


def _busy_soap_body() -> tuple[str, bytes]:
    """Content type + bytes of a canned ``Server.Busy`` fault envelope.

    Served on shed paths that never reach SOAP processing (accept
    overload, handler-stage saturation) so clients still classify the
    503 as a retryable :class:`~repro.errors.SoapFaultError`.
    """
    from repro.soap.constants import SOAP_CONTENT_TYPE
    from repro.soap.envelope import Envelope
    from repro.soap.fault import busy_fault

    envelope = Envelope()
    envelope.add_body(
        busy_fault("server busy: protocol stage shed the request").to_element()
    )
    return SOAP_CONTENT_TYPE, envelope.to_bytes()


def config_from_legacy(
    architecture: str,
    services: Sequence[Any] | None,
    legacy: dict[str, Any],
) -> ServerConfig:
    """Map an old-style constructor call onto a :class:`ServerConfig`.

    ``legacy`` keys are exactly the old keyword parameters; unknown
    keys raise ``TypeError`` like any bad keyword argument would.
    """
    allowed = {
        "transport",
        "address",
        "chain",
        "chunk_responses_over",
        "observability",
        "serialization_cache",
        "compression",
        "slo_config",
    }
    if architecture == "staged":
        allowed |= {"app_workers", "app_queue_limit"}
    unknown = set(legacy) - allowed
    if unknown:
        raise TypeError(
            f"unexpected keyword argument(s) for {architecture} server: "
            f"{sorted(unknown)}"
        )
    return ServerConfig(
        services=list(services) if services is not None else [],
        architecture=architecture,
        **legacy,
    )
