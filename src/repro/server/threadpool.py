"""Bounded worker thread pool with its own future type.

Both stages of the paper's Figure 2 architecture sit on this pool: the
application-processing stage directly, the protocol stage implicitly
(its threads are the HTTP connection threads).  The pool is built from
primitives rather than ``concurrent.futures`` so the benches can read
scheduling counters the stock executor does not expose.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import CancelledError
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import PoolSaturatedError, ServiceError


class TaskFuture:
    """Completion handle for one submitted task."""

    __slots__ = ("_event", "_result", "_exception", "_callbacks", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["TaskFuture"], None]] = []
        self._lock = threading.Lock()

    def set_result(self, value: Any) -> None:
        """Complete the task with a value."""
        with self._lock:
            self._result = value
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def set_exception(self, exc: BaseException) -> None:
        """Complete the task with an error."""
        with self._lock:
            self._exception = exc
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def done(self) -> bool:
        """True once a result or exception is set."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """The task's value; re-raises its exception."""
        if not self._event.wait(timeout):
            raise TimeoutError("task did not complete in time")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """The task's exception, or None; waits up to ``timeout``."""
        if not self._event.wait(timeout):
            raise TimeoutError("task did not complete in time")
        return self._exception

    def add_done_callback(self, callback: Callable[["TaskFuture"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


@dataclass(slots=True)
class PoolStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    cancelled: int = 0
    max_queue_depth: int = 0
    max_concurrency: int = 0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dict."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "max_queue_depth": self.max_queue_depth,
            "max_concurrency": self.max_concurrency,
        }


_SHUTDOWN = object()


class ThreadPool:
    """Fixed-size worker pool fed by one queue (event-driven model [5]).

    ``max_queue`` bounds the backlog: a submit that would push the
    queue past the bound is rejected with :class:`PoolSaturatedError`
    instead of queueing unboundedly — the SEDA-style explicit shed
    point ("too many concurrent threads will degrade throughput
    rapidly", §3.3, applies just as much to unbounded queues under
    overload).  ``None`` keeps the seed's unbounded behaviour.
    """

    def __init__(
        self, workers: int, *, name: str = "pool", max_queue: int | None = None
    ) -> None:
        if workers < 1:
            raise ServiceError("thread pool needs at least one worker")
        if max_queue is not None and max_queue < 1:
            raise ServiceError("max_queue must be >= 1 (or None for unbounded)")
        self.name = name
        self.max_queue = max_queue
        self._queue: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._shutdown = False
        self._active = 0
        self._lock = threading.Lock()
        self.stats = PoolStats()
        for i in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"{name}-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    @property
    def workers(self) -> int:
        return len(self._threads)

    def queue_depth(self) -> int:
        """Tasks waiting for a worker right now (approximate)."""
        return self._queue.qsize()

    def submit(self, func: Callable[..., Any], /, *args: Any, **kwargs: Any) -> TaskFuture:
        """Queue ``func(*args, **kwargs)``; returns its future.

        Raises :class:`PoolSaturatedError` when the backlog is at
        ``max_queue`` — the caller decides how to shed (the SOAP stack
        maps it to a ``Server.Busy`` fault + HTTP 503).
        """
        with self._lock:
            if self._shutdown:
                raise ServiceError(f"pool '{self.name}' is shut down")
            if (
                self.max_queue is not None
                and self._queue.qsize() >= self.max_queue
            ):
                self.stats.rejected += 1
                raise PoolSaturatedError(
                    f"pool '{self.name}' queue is full "
                    f"({self.max_queue} tasks waiting)"
                )
            self.stats.submitted += 1
        future = TaskFuture()
        self._queue.put((future, func, args, kwargs))
        depth = self._queue.qsize()
        with self._lock:
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
        return future

    def map_wait(self, func: Callable[[Any], Any], items: list[Any],
                 timeout: float | None = None) -> list[Any]:
        """Submit ``func`` for every item and wait for all results."""
        futures = [self.submit(func, item) for item in items]
        return [future.result(timeout) for future in futures]

    def shutdown(self, *, join_timeout: float = 5.0) -> None:
        """Cancel queued tasks, then join every worker; idempotent.

        Tasks that never reached a worker fail their futures with
        :class:`CancelledError` — without this, a ``result()`` caller
        whose task was still queued at shutdown would block forever.
        Tasks already running are allowed to finish.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        # Drain queued-but-unstarted tasks.  Workers may race us for
        # items; whichever side wins, every future completes exactly
        # once (run by a worker, or cancelled here).
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:  # pragma: no cover - concurrent shutdown
                continue
            future = item[0]
            future.set_exception(
                CancelledError(f"pool '{self.name}' shut down before task started")
            )
            with self._lock:
                self.stats.cancelled += 1
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=join_timeout)

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- internals -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            future, func, args, kwargs = item
            with self._lock:
                self._active += 1
                if self._active > self.stats.max_concurrency:
                    self.stats.max_concurrency = self._active
            try:
                result = func(*args, **kwargs)
            except BaseException as exc:
                with self._lock:
                    self._active -= 1
                    self.stats.failed += 1
                future.set_exception(exc)
            else:
                with self._lock:
                    self._active -= 1
                    self.stats.completed += 1
                future.set_result(result)


class CompletionLatch:
    """Count-down latch: the mechanism that lets the sleeping protocol
    thread of Figure 2 be "waked up to complete generating the packet"
    once every application-stage worker has finished."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ServiceError("latch count must be >= 0")
        self._count = count
        self._condition = threading.Condition()

    def count_down(self) -> None:
        """Decrement; at zero, wake every waiter."""
        with self._condition:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._condition.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the count reaches zero; False on timeout."""
        with self._condition:
            if self._count == 0:
                return True
            return self._condition.wait_for(lambda: self._count == 0, timeout)

    @property
    def remaining(self) -> int:
        with self._condition:
            return self._count
