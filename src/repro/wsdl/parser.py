"""WSDL 1.1 document parsing back to the service-interface model."""

from __future__ import annotations

from repro.errors import WsdlError
from repro.soap.constants import WSDL_NS, WSDL_SOAP_NS
from repro.wsdl.model import WsdlDocumentModel, WsdlOperation, WsdlService
from repro.xmlcore import parse
from repro.xmlcore.tree import Element

_W = f"{{{WSDL_NS}}}"
_WS = f"{{{WSDL_SOAP_NS}}}"


def parse_wsdl(document: str | bytes | Element) -> WsdlDocumentModel:
    """Parse a WSDL document (string, bytes or already-parsed tree)."""
    root = document if isinstance(document, Element) else parse(document)
    if root.tag != _W + "definitions":
        raise WsdlError(f"root element is <{root.tag}>, expected wsdl:definitions")

    namespace = root.get("targetNamespace")
    if not namespace:
        raise WsdlError("definitions has no targetNamespace")

    messages = _collect_messages(root)
    operations = _collect_operations(root, messages)
    name, location = _collect_service(root)
    documentation = root.findtext(_W + "documentation", "") or ""

    service = WsdlService(
        name=name,
        namespace=namespace,
        operations=tuple(operations),
        location=location,
        documentation=documentation,
    )
    return WsdlDocumentModel(service)


def _collect_messages(root: Element) -> dict[str, tuple[tuple[str, str], ...]]:
    messages: dict[str, tuple[tuple[str, str], ...]] = {}
    for message in root.findall(_W + "message"):
        name = message.get("name")
        if not name:
            raise WsdlError("message without a name")
        parts = tuple(
            (part.get("name") or "", part.get("type") or "xsd:anyType")
            for part in message.findall(_W + "part")
        )
        messages[name] = parts
    return messages


def _collect_operations(
    root: Element, messages: dict[str, tuple[tuple[str, str], ...]]
) -> list[WsdlOperation]:
    port_types = root.findall(_W + "portType")
    if not port_types:
        raise WsdlError("document has no portType")
    operations: list[WsdlOperation] = []
    for port_type in port_types:
        for operation in port_type.findall(_W + "operation"):
            name = operation.get("name")
            if not name:
                raise WsdlError("operation without a name")
            doc = operation.findtext(_W + "documentation", "") or ""
            input_el = operation.find(_W + "input")
            output_el = operation.find(_W + "output")
            params = _resolve_message(input_el, messages) if input_el is not None else ()
            returns = "xsd:anyType"
            if output_el is not None:
                output_parts = _resolve_message(output_el, messages)
                if output_parts:
                    returns = output_parts[0][1]
            operations.append(WsdlOperation(name, params, returns, doc))
    return operations


def _resolve_message(
    reference: Element, messages: dict[str, tuple[tuple[str, str], ...]]
) -> tuple[tuple[str, str], ...]:
    message_qname = reference.get("message") or ""
    _, _, local = message_qname.rpartition(":")
    if local not in messages:
        raise WsdlError(f"message '{message_qname}' is not defined")
    return messages[local]


def _collect_service(root: Element) -> tuple[str, str]:
    service = root.find(_W + "service")
    if service is None:
        # interface-only documents are legal; fall back to definitions name
        return root.get("name") or "UnnamedService", ""
    name = service.get("name") or root.get("name") or "UnnamedService"
    location = ""
    port = service.find(_W + "port")
    if port is not None:
        address = port.find(_WS + "address")
        if address is not None:
            location = address.get("location") or ""
    return name, location
