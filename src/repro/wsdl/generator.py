"""WSDL 1.1 document generation (rpc/encoded binding, as Axis 1.x)."""

from __future__ import annotations

from repro.soap.constants import SOAP_ENC_NS, WSDL_NS, WSDL_SOAP_NS, XSD_NS
from repro.wsdl.model import WsdlDocumentModel, WsdlService
from repro.xmlcore.tree import Element
from repro.xmlcore.writer import serialize

_W = f"{{{WSDL_NS}}}"
_WS = f"{{{WSDL_SOAP_NS}}}"

SOAP_HTTP_TRANSPORT = "http://schemas.xmlsoap.org/soap/http"


def generate_wsdl(model: WsdlDocumentModel) -> Element:
    """Build the <definitions> tree for one service."""
    service = model.service
    tns = service.namespace
    definitions = Element(
        _W + "definitions",
        {"name": service.name, "targetNamespace": tns},
        nsmap={
            "wsdl": WSDL_NS,
            "soap": WSDL_SOAP_NS,
            "xsd": XSD_NS,
            "tns": tns,
            "SOAP-ENC": SOAP_ENC_NS,
        },
    )
    if service.documentation:
        definitions.subelement(_W + "documentation", text=service.documentation)

    _add_messages(definitions, model)
    _add_port_type(definitions, model)
    _add_binding(definitions, model)
    _add_service(definitions, model)
    return definitions


def generate_wsdl_document(model: WsdlDocumentModel) -> str:
    """The WSDL document as XML text with declaration."""
    return serialize(generate_wsdl(model), declaration=True)


def wsdl_for_service(service: WsdlService) -> str:
    """Convenience wrapper used by the ``?wsdl`` HTTP endpoint."""
    return generate_wsdl_document(WsdlDocumentModel(service))


def _add_messages(definitions: Element, model: WsdlDocumentModel) -> None:
    for op in model.service.operations:
        request = definitions.subelement(_W + "message", {"name": f"{op.name}Request"})
        for pname, ptype in op.parameters:
            request.subelement(_W + "part", {"name": pname, "type": ptype})
        response = definitions.subelement(_W + "message", {"name": f"{op.name}Response"})
        response.subelement(_W + "part", {"name": "return", "type": op.returns})


def _add_port_type(definitions: Element, model: WsdlDocumentModel) -> None:
    port_type = definitions.subelement(_W + "portType", {"name": model.port_type_name})
    for op in model.service.operations:
        operation = port_type.subelement(_W + "operation", {"name": op.name})
        if op.documentation:
            operation.subelement(_W + "documentation", text=op.documentation)
        operation.subelement(_W + "input", {"message": f"tns:{op.name}Request"})
        operation.subelement(_W + "output", {"message": f"tns:{op.name}Response"})


def _add_binding(definitions: Element, model: WsdlDocumentModel) -> None:
    binding = definitions.subelement(
        _W + "binding",
        {"name": model.binding_name, "type": f"tns:{model.port_type_name}"},
    )
    binding.subelement(
        _WS + "binding", {"style": "rpc", "transport": SOAP_HTTP_TRANSPORT}
    )
    for op in model.service.operations:
        operation = binding.subelement(_W + "operation", {"name": op.name})
        operation.subelement(_WS + "operation", {"soapAction": model.soap_action(op.name)})
        for direction in ("input", "output"):
            wrapper = operation.subelement(_W + direction)
            wrapper.subelement(
                _WS + "body",
                {
                    "use": "encoded",
                    "namespace": model.service.namespace,
                    "encodingStyle": SOAP_ENC_NS,
                },
            )


def _add_service(definitions: Element, model: WsdlDocumentModel) -> None:
    service = definitions.subelement(_W + "service", {"name": model.service.name})
    port = service.subelement(
        _W + "port",
        {"name": model.port_name, "binding": f"tns:{model.binding_name}"},
    )
    port.subelement(_WS + "address", {"location": model.service.location or ""})
