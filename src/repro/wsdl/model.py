"""Service-interface model shared by WSDL generation and parsing.

This is the neutral description layer between ``repro.server.service``
(which introspects Python callables) and the WSDL 1.1 document format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WsdlError


@dataclass(frozen=True, slots=True)
class WsdlOperation:
    """One RPC operation: ordered named parameters and one return type.

    Types are prefixed XSD names (``xsd:string``); see
    :func:`repro.soap.xsdtypes.python_type_to_xsd`.
    """

    name: str
    parameters: tuple[tuple[str, str], ...]  # (param name, xsd type)
    returns: str = "xsd:anyType"
    documentation: str = ""

    def parameter_names(self) -> tuple[str, ...]:
        """Parameter names in declaration order."""
        return tuple(name for name, _ in self.parameters)


@dataclass(frozen=True, slots=True)
class WsdlService:
    """A deployable service interface."""

    name: str
    namespace: str
    operations: tuple[WsdlOperation, ...] = ()
    location: str = ""
    documentation: str = ""

    def operation(self, name: str) -> WsdlOperation:
        """The named operation; raises WsdlError if absent."""
        for op in self.operations:
            if op.name == name:
                return op
        raise WsdlError(f"service '{self.name}' has no operation '{name}'")

    def operation_names(self) -> tuple[str, ...]:
        """Operation names in declaration order."""
        return tuple(op.name for op in self.operations)

    def with_location(self, location: str) -> "WsdlService":
        """Copy of this service bound to a concrete endpoint URL."""
        return WsdlService(
            self.name, self.namespace, self.operations, location, self.documentation
        )


@dataclass(slots=True)
class WsdlDocumentModel:
    """Everything a WSDL 1.1 document carries for one service."""

    service: WsdlService
    soap_action_base: str = ""
    extras: dict[str, str] = field(default_factory=dict)

    @property
    def port_type_name(self) -> str:
        return f"{self.service.name}PortType"

    @property
    def binding_name(self) -> str:
        return f"{self.service.name}SoapBinding"

    @property
    def port_name(self) -> str:
        return f"{self.service.name}Port"

    def soap_action(self, operation: str) -> str:
        """The soapAction URI for one operation."""
        base = self.soap_action_base or self.service.namespace
        return f"{base}#{operation}"
