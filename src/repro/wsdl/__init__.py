"""WSDL 1.1 tooling: interface model, generator, parser."""

from repro.wsdl.generator import generate_wsdl, generate_wsdl_document, wsdl_for_service
from repro.wsdl.model import WsdlDocumentModel, WsdlOperation, WsdlService
from repro.wsdl.parser import parse_wsdl

__all__ = [
    "WsdlDocumentModel",
    "WsdlOperation",
    "WsdlService",
    "generate_wsdl",
    "generate_wsdl_document",
    "parse_wsdl",
    "wsdl_for_service",
]
