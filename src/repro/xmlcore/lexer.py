"""Tokenizer for the XML 1.0 subset SOAP toolkits exchange.

Produces a flat token stream (start tags with raw attribute lists, end
tags, character data, CDATA sections, comments, processing instructions
and the XML declaration).  Well-formedness that requires cross-token
state — tag balancing, duplicate attributes after namespace expansion,
single root — is enforced by the tree parser on top.

The lexer works on ``str``; decoding from bytes happens at the HTTP
boundary.

Hot-path design:

* Scanning is bulk, not per character: well-formed start tags are
  consumed by one precompiled regex (``_START_TAG_RE``); text runs,
  comments, CDATA and PIs by ``str.find``.  Anything the fast regex
  does not match falls back to the original character loop, which
  exists only to produce precise error messages.
* Positions are lazy.  Tokens carry their character offset; ``line``
  and ``column`` are computed (and cached) only when someone asks —
  in practice only when an error is being raised.  The old eager
  ``_advance_to`` bookkeeping sliced and counted every token's text.
* Character-legality checking is one regex search
  (:func:`repro.xmlcore.escape.find_illegal_char`), not a Python loop.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import XmlWellFormednessError
from repro.xmlcore.escape import find_illegal_char, unescape

_WHITESPACE = " \t\r\n"

# One match per well-formed start tag: name, a run of quoted attributes
# (whitespace-separated, values free of '<'), optional '/'.  Tags this
# regex rejects are re-lexed by the slow path for exact diagnostics
# (or for legacy tolerance, e.g. attributes not separated by spaces).
_START_TAG_RE = re.compile(
    r"<([^ \t\r\n/>]+)"
    r"((?:[ \t\r\n]+[^ \t\r\n=/>]+[ \t\r\n]*=[ \t\r\n]*(?:\"[^\"<]*\"|'[^'<]*'))*)"
    r"[ \t\r\n]*(/?)>"
)
_ATTR_RE = re.compile(
    r"[ \t\r\n]+([^ \t\r\n=/>]+)[ \t\r\n]*=[ \t\r\n]*(\"[^\"<]*\"|'[^'<]*')"
)
_END_TAG_RE = re.compile(r"</([^ \t\r\n>]+)[ \t\r\n]*>")


class Token:
    """A lexical token anchored at a character offset.

    ``line``/``column`` are derived from the offset on first access so
    the hot path never pays for position bookkeeping.
    """

    __slots__ = ("_src", "offset", "_line", "_column")

    def __init__(self, src: str, offset: int) -> None:
        self._src = src
        self.offset = offset
        self._line = 0
        self._column = 0

    @property
    def line(self) -> int:
        if not self._line:
            self._locate()
        return self._line

    @property
    def column(self) -> int:
        if not self._line:
            self._locate()
        return self._column

    def _locate(self) -> None:
        self._line, self._column = position_at(self._src, self.offset)


def position_at(src: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of ``offset`` in ``src``."""
    line = src.count("\n", 0, offset) + 1
    last_newline = src.rfind("\n", 0, offset)
    return line, offset - last_newline


class XmlDeclToken(Token):
    __slots__ = ("version", "encoding", "standalone")

    def __init__(
        self,
        src: str,
        offset: int,
        version: str = "1.0",
        encoding: str | None = None,
        standalone: str | None = None,
    ) -> None:
        super().__init__(src, offset)
        self.version = version
        self.encoding = encoding
        self.standalone = standalone


class StartTagToken(Token):
    __slots__ = ("name", "attributes", "self_closing")

    def __init__(
        self,
        src: str,
        offset: int,
        name: str = "",
        attributes: list[tuple[str, str]] | None = None,
        self_closing: bool = False,
    ) -> None:
        super().__init__(src, offset)
        self.name = name
        self.attributes = attributes if attributes is not None else []
        self.self_closing = self_closing


class EndTagToken(Token):
    __slots__ = ("name",)

    def __init__(self, src: str, offset: int, name: str = "") -> None:
        super().__init__(src, offset)
        self.name = name


class TextToken(Token):
    __slots__ = ("text",)

    def __init__(self, src: str, offset: int, text: str = "") -> None:
        super().__init__(src, offset)
        self.text = text


class CDataToken(Token):
    __slots__ = ("text",)

    def __init__(self, src: str, offset: int, text: str = "") -> None:
        super().__init__(src, offset)
        self.text = text


class CommentToken(Token):
    __slots__ = ("text",)

    def __init__(self, src: str, offset: int, text: str = "") -> None:
        super().__init__(src, offset)
        self.text = text


class PIToken(Token):
    __slots__ = ("target", "data")

    def __init__(self, src: str, offset: int, target: str = "", data: str = "") -> None:
        super().__init__(src, offset)
        self.target = target
        self.data = data


class Lexer:
    """Single-pass tokenizer over a complete document string."""

    __slots__ = ("_src", "_pos")

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the document is exhausted."""
        src = self._src
        n = len(src)
        first = True
        while self._pos < n:
            if src[self._pos] == "<":
                yield self._lex_markup(allow_decl=first)
            else:
                yield self._lex_text()
            first = False

    # -- markup ----------------------------------------------------------

    def _lex_markup(self, *, allow_decl: bool) -> Token:
        src = self._src
        pos = self._pos
        nxt = src[pos + 1] if pos + 1 < len(src) else ""
        if nxt not in "?!/":
            return self._lex_start_tag()
        if nxt == "/":
            return self._lex_end_tag()
        if src.startswith("<?xml", pos) and pos + 5 < len(src) and src[pos + 5] in _WHITESPACE + "?":
            return self._lex_xml_decl(allow_decl)
        if nxt == "?":
            return self._lex_pi()
        if src.startswith("<!--", pos):
            return self._lex_comment()
        if src.startswith("<![CDATA[", pos):
            return self._lex_cdata()
        if src.startswith("<!DOCTYPE", pos):
            raise self._error("DOCTYPE declarations are rejected (XXE hardening)")
        return self._lex_start_tag()

    def _lex_xml_decl(self, allow_decl: bool) -> XmlDeclToken:
        if not allow_decl:
            raise self._error("XML declaration only allowed at document start")
        offset = self._pos
        end = self._src.find("?>", offset)
        if end == -1:
            raise self._error("unterminated XML declaration")
        body = self._src[offset + 5 : end]
        self._pos = end + 2
        attrs = dict(self._parse_pseudo_attributes(body, offset))
        version = attrs.get("version", "1.0")
        if version not in ("1.0", "1.1"):
            raise self._error(f"unsupported XML version '{version}'", offset)
        return XmlDeclToken(
            self._src, offset, version, attrs.get("encoding"), attrs.get("standalone")
        )

    def _lex_pi(self) -> PIToken:
        offset = self._pos
        end = self._src.find("?>", offset)
        if end == -1:
            raise self._error("unterminated processing instruction")
        body = self._src[offset + 2 : end]
        self._pos = end + 2
        target, _, data = body.partition(" ")
        if not target:
            raise self._error("processing instruction with empty target", offset)
        if target.lower() == "xml":
            raise self._error("PI target 'xml' is reserved", offset)
        return PIToken(self._src, offset, target, data.strip())

    def _lex_comment(self) -> CommentToken:
        offset = self._pos
        end = self._src.find("-->", offset + 4)
        if end == -1:
            raise self._error("unterminated comment")
        text = self._src[offset + 4 : end]
        if "--" in text:
            raise self._error("'--' not allowed inside comment")
        self._pos = end + 3
        return CommentToken(self._src, offset, text)

    def _lex_cdata(self) -> CDataToken:
        offset = self._pos
        end = self._src.find("]]>", offset + 9)
        if end == -1:
            raise self._error("unterminated CDATA section")
        text = self._src[offset + 9 : end]
        self._pos = end + 3
        self._check_chars(text, offset)
        return CDataToken(self._src, offset, text)

    def _lex_end_tag(self) -> EndTagToken:
        offset = self._pos
        src = self._src
        match = _END_TAG_RE.match(src, offset)
        if match is not None:
            self._pos = match.end()
            return EndTagToken(src, offset, match.group(1))
        end = src.find(">", offset)
        if end == -1:
            raise self._error("unterminated end tag")
        name = src[offset + 2 : end].strip(_WHITESPACE)
        if not name or any(c in _WHITESPACE for c in name):
            raise self._error(f"malformed end tag '</{name}>'")
        self._pos = end + 1
        return EndTagToken(src, offset, name)

    def _lex_start_tag(self) -> StartTagToken:
        offset = self._pos
        src = self._src
        match = _START_TAG_RE.match(src, offset)
        if match is None:
            return self._lex_start_tag_slow()
        name, raw_attrs, slash = match.groups()
        self._pos = match.end()
        attributes: list[tuple[str, str]] = []
        if raw_attrs:
            for attr_match in _ATTR_RE.finditer(raw_attrs):
                value = attr_match.group(2)
                attributes.append((attr_match.group(1), unescape(value[1:-1])))
        return StartTagToken(src, offset, name, attributes, slash == "/")

    def _lex_start_tag_slow(self) -> StartTagToken:
        """Character-accurate fallback; emits the precise diagnostics
        (and tolerances) of the original per-character lexer."""
        offset = self._pos
        src = self._src
        pos = offset + 1
        n = len(src)
        start = pos
        while pos < n and src[pos] not in _WHITESPACE + "/>":
            pos += 1
        name = src[start:pos]
        if not name:
            raise self._error("'<' not followed by a tag name")
        attributes: list[tuple[str, str]] = []
        while True:
            while pos < n and src[pos] in _WHITESPACE:
                pos += 1
            if pos >= n:
                raise self._error(f"unterminated start tag <{name}")
            if src[pos] == ">":
                self._pos = pos + 1
                return StartTagToken(src, offset, name, attributes, False)
            if src.startswith("/>", pos):
                self._pos = pos + 2
                return StartTagToken(src, offset, name, attributes, True)
            pos = self._lex_attribute(pos, name, attributes)

    def _lex_attribute(
        self, pos: int, tag: str, attributes: list[tuple[str, str]]
    ) -> int:
        src = self._src
        n = len(src)
        start = pos
        while pos < n and src[pos] not in _WHITESPACE + "=/>":
            pos += 1
        name = src[start:pos]
        if not name:
            raise self._error(f"malformed attribute in <{tag}>")
        while pos < n and src[pos] in _WHITESPACE:
            pos += 1
        if pos >= n or src[pos] != "=":
            raise self._error(f"attribute '{name}' in <{tag}> has no value")
        pos += 1
        while pos < n and src[pos] in _WHITESPACE:
            pos += 1
        if pos >= n or src[pos] not in "\"'":
            raise self._error(f"attribute '{name}' value must be quoted")
        quote = src[pos]
        end = src.find(quote, pos + 1)
        if end == -1:
            raise self._error(f"unterminated value for attribute '{name}'")
        raw = src[pos + 1 : end]
        if "<" in raw:
            raise self._error(f"'<' not allowed in attribute value of '{name}'")
        attributes.append((name, unescape(raw)))
        return end + 1

    # -- character data ----------------------------------------------------

    def _lex_text(self) -> TextToken:
        offset = self._pos
        src = self._src
        end = src.find("<", offset)
        if end == -1:
            end = len(src)
        raw = src[offset:end]
        self._pos = end
        if "]]>" in raw:
            raise self._error("']]>' not allowed in character data", offset)
        self._check_chars(raw, offset)
        if "&" not in raw:
            return TextToken(src, offset, raw)
        return TextToken(src, offset, unescape(raw))

    # -- diagnostics -------------------------------------------------------

    def _error(self, message: str, offset: int | None = None) -> XmlWellFormednessError:
        line, column = position_at(self._src, self._pos if offset is None else offset)
        return XmlWellFormednessError(message, line, column)

    def _check_chars(self, text: str, offset: int) -> None:
        match = find_illegal_char(text)
        if match is not None:
            raise self._error(f"illegal character U+{ord(match.group()):04X}", offset)

    def _parse_pseudo_attributes(self, body: str, offset: int) -> list[tuple[str, str]]:
        out: list[tuple[str, str]] = []
        i = 0
        n = len(body)
        while i < n:
            while i < n and body[i] in _WHITESPACE:
                i += 1
            if i >= n:
                break
            eq = body.find("=", i)
            if eq == -1:
                raise self._error("malformed XML declaration", offset)
            name = body[i:eq].strip(_WHITESPACE)
            j = eq + 1
            while j < n and body[j] in _WHITESPACE:
                j += 1
            if j >= n or body[j] not in "\"'":
                raise self._error("malformed XML declaration", offset)
            quote = body[j]
            end = body.find(quote, j + 1)
            if end == -1:
                raise self._error("malformed XML declaration", offset)
            out.append((name, body[j + 1 : end]))
            i = end + 1
        return out


def tokenize(source: str) -> Iterator[Token]:
    """Tokenize a complete XML document string."""
    return Lexer(source).tokens()
