"""Tokenizer for the XML 1.0 subset SOAP toolkits exchange.

Produces a flat token stream (start tags with raw attribute lists, end
tags, character data, CDATA sections, comments, processing instructions
and the XML declaration).  Well-formedness that requires cross-token
state — tag balancing, duplicate attributes after namespace expansion,
single root — is enforced by the tree parser on top.

The lexer works on ``str``; decoding from bytes happens at the HTTP
boundary.  Positions (line, column) are tracked for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import XmlWellFormednessError
from repro.xmlcore.escape import is_xml_char, unescape

_WHITESPACE = " \t\r\n"


@dataclass(slots=True)
class Token:
    line: int
    column: int


@dataclass(slots=True)
class XmlDeclToken(Token):
    version: str = "1.0"
    encoding: str | None = None
    standalone: str | None = None


@dataclass(slots=True)
class StartTagToken(Token):
    name: str = ""
    attributes: list[tuple[str, str]] = field(default_factory=list)
    self_closing: bool = False


@dataclass(slots=True)
class EndTagToken(Token):
    name: str = ""


@dataclass(slots=True)
class TextToken(Token):
    text: str = ""


@dataclass(slots=True)
class CDataToken(Token):
    text: str = ""


@dataclass(slots=True)
class CommentToken(Token):
    text: str = ""


@dataclass(slots=True)
class PIToken(Token):
    target: str = ""
    data: str = ""


class Lexer:
    """Single-pass tokenizer over a complete document string."""

    def __init__(self, source: str) -> None:
        self._src = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until the document is exhausted."""
        src = self._src
        n = len(src)
        first = True
        while self._pos < n:
            line, col = self._line, self._col
            if src.startswith("<", self._pos):
                token = self._lex_markup(line, col, allow_decl=first)
                if token is not None:
                    yield token
            else:
                yield self._lex_text(line, col)
            first = False

    # -- markup ----------------------------------------------------------

    def _lex_markup(self, line: int, col: int, *, allow_decl: bool) -> Token | None:
        src = self._src
        pos = self._pos
        if src.startswith("<?xml", pos) and pos + 5 < len(src) and src[pos + 5] in _WHITESPACE + "?":
            return self._lex_xml_decl(line, col, allow_decl)
        if src.startswith("<?", pos):
            return self._lex_pi(line, col)
        if src.startswith("<!--", pos):
            return self._lex_comment(line, col)
        if src.startswith("<![CDATA[", pos):
            return self._lex_cdata(line, col)
        if src.startswith("<!DOCTYPE", pos):
            raise XmlWellFormednessError("DOCTYPE declarations are rejected (XXE hardening)", line, col)
        if src.startswith("</", pos):
            return self._lex_end_tag(line, col)
        return self._lex_start_tag(line, col)

    def _lex_xml_decl(self, line: int, col: int, allow_decl: bool) -> XmlDeclToken:
        if not allow_decl:
            raise XmlWellFormednessError("XML declaration only allowed at document start", line, col)
        end = self._src.find("?>", self._pos)
        if end == -1:
            raise XmlWellFormednessError("unterminated XML declaration", line, col)
        body = self._src[self._pos + 5 : end]
        self._advance_to(end + 2)
        attrs = dict(_parse_pseudo_attributes(body, line, col))
        version = attrs.get("version", "1.0")
        if version not in ("1.0", "1.1"):
            raise XmlWellFormednessError(f"unsupported XML version '{version}'", line, col)
        return XmlDeclToken(line, col, version, attrs.get("encoding"), attrs.get("standalone"))

    def _lex_pi(self, line: int, col: int) -> PIToken:
        end = self._src.find("?>", self._pos)
        if end == -1:
            raise XmlWellFormednessError("unterminated processing instruction", line, col)
        body = self._src[self._pos + 2 : end]
        self._advance_to(end + 2)
        target, _, data = body.partition(" ")
        if not target:
            raise XmlWellFormednessError("processing instruction with empty target", line, col)
        if target.lower() == "xml":
            raise XmlWellFormednessError("PI target 'xml' is reserved", line, col)
        return PIToken(line, col, target, data.strip())

    def _lex_comment(self, line: int, col: int) -> CommentToken:
        end = self._src.find("-->", self._pos + 4)
        if end == -1:
            raise XmlWellFormednessError("unterminated comment", line, col)
        text = self._src[self._pos + 4 : end]
        if "--" in text:
            raise XmlWellFormednessError("'--' not allowed inside comment", line, col)
        self._advance_to(end + 3)
        return CommentToken(line, col, text)

    def _lex_cdata(self, line: int, col: int) -> CDataToken:
        end = self._src.find("]]>", self._pos + 9)
        if end == -1:
            raise XmlWellFormednessError("unterminated CDATA section", line, col)
        text = self._src[self._pos + 9 : end]
        self._advance_to(end + 3)
        _check_chars(text, line, col)
        return CDataToken(line, col, text)

    def _lex_end_tag(self, line: int, col: int) -> EndTagToken:
        end = self._src.find(">", self._pos)
        if end == -1:
            raise XmlWellFormednessError("unterminated end tag", line, col)
        name = self._src[self._pos + 2 : end].strip(_WHITESPACE)
        if not name or any(c in _WHITESPACE for c in name):
            raise XmlWellFormednessError(f"malformed end tag '</{name}>'", line, col)
        self._advance_to(end + 1)
        return EndTagToken(line, col, name)

    def _lex_start_tag(self, line: int, col: int) -> StartTagToken:
        src = self._src
        pos = self._pos + 1
        n = len(src)
        start = pos
        while pos < n and src[pos] not in _WHITESPACE + "/>":
            pos += 1
        name = src[start:pos]
        if not name:
            raise XmlWellFormednessError("'<' not followed by a tag name", line, col)
        attributes: list[tuple[str, str]] = []
        while True:
            while pos < n and src[pos] in _WHITESPACE:
                pos += 1
            if pos >= n:
                raise XmlWellFormednessError(f"unterminated start tag <{name}", line, col)
            if src[pos] == ">":
                self._advance_to(pos + 1)
                return StartTagToken(line, col, name, attributes, False)
            if src.startswith("/>", pos):
                self._advance_to(pos + 2)
                return StartTagToken(line, col, name, attributes, True)
            pos = self._lex_attribute(pos, name, attributes, line, col)

    def _lex_attribute(
        self, pos: int, tag: str, attributes: list[tuple[str, str]], line: int, col: int
    ) -> int:
        src = self._src
        n = len(src)
        start = pos
        while pos < n and src[pos] not in _WHITESPACE + "=/>":
            pos += 1
        name = src[start:pos]
        if not name:
            raise XmlWellFormednessError(f"malformed attribute in <{tag}>", line, col)
        while pos < n and src[pos] in _WHITESPACE:
            pos += 1
        if pos >= n or src[pos] != "=":
            raise XmlWellFormednessError(f"attribute '{name}' in <{tag}> has no value", line, col)
        pos += 1
        while pos < n and src[pos] in _WHITESPACE:
            pos += 1
        if pos >= n or src[pos] not in "\"'":
            raise XmlWellFormednessError(f"attribute '{name}' value must be quoted", line, col)
        quote = src[pos]
        end = src.find(quote, pos + 1)
        if end == -1:
            raise XmlWellFormednessError(f"unterminated value for attribute '{name}'", line, col)
        raw = src[pos + 1 : end]
        if "<" in raw:
            raise XmlWellFormednessError(f"'<' not allowed in attribute value of '{name}'", line, col)
        attributes.append((name, unescape(raw)))
        return end + 1

    # -- character data ----------------------------------------------------

    def _lex_text(self, line: int, col: int) -> TextToken:
        end = self._src.find("<", self._pos)
        if end == -1:
            end = len(self._src)
        raw = self._src[self._pos : end]
        self._advance_to(end)
        if "]]>" in raw:
            raise XmlWellFormednessError("']]>' not allowed in character data", line, col)
        _check_chars(raw, line, col)
        return TextToken(line, col, unescape(raw))

    # -- bookkeeping ---------------------------------------------------------

    def _advance_to(self, new_pos: int) -> None:
        segment = self._src[self._pos : new_pos]
        newlines = segment.count("\n")
        if newlines:
            self._line += newlines
            self._col = len(segment) - segment.rfind("\n")
        else:
            self._col += len(segment)
        self._pos = new_pos


def _check_chars(text: str, line: int, col: int) -> None:
    for ch in text:
        if not is_xml_char(ord(ch)):
            raise XmlWellFormednessError(f"illegal character U+{ord(ch):04X}", line, col)


def _parse_pseudo_attributes(body: str, line: int, col: int) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    i = 0
    n = len(body)
    while i < n:
        while i < n and body[i] in _WHITESPACE:
            i += 1
        if i >= n:
            break
        eq = body.find("=", i)
        if eq == -1:
            raise XmlWellFormednessError("malformed XML declaration", line, col)
        name = body[i:eq].strip(_WHITESPACE)
        j = eq + 1
        while j < n and body[j] in _WHITESPACE:
            j += 1
        if j >= n or body[j] not in "\"'":
            raise XmlWellFormednessError("malformed XML declaration", line, col)
        quote = body[j]
        end = body.find(quote, j + 1)
        if end == -1:
            raise XmlWellFormednessError("malformed XML declaration", line, col)
        out.append((name, body[j + 1 : end]))
        i = end + 1
    return out


def tokenize(source: str) -> Iterator[Token]:
    """Tokenize a complete XML document string."""
    return Lexer(source).tokens()
