"""Deprecated token-stream tree parser (now an alias layer).

The tree build moved to :mod:`repro.xmlcore.treebuilder`, which fuses
lexing and parsing into one pass; the unified entry point is
:func:`repro.xmlcore.parse`.  This module keeps the old ``parse`` name
alive as a thin deprecated alias and still hosts
:func:`_expand_start_tag` for the token-pull :mod:`repro.xmlcore.cursor`.
"""

from __future__ import annotations

import warnings

from repro.errors import XmlWellFormednessError
from repro.xmlcore import lexer as lx
from repro.xmlcore.qname import NamespaceScope
from repro.xmlcore.tree import Element
from repro.xmlcore.treebuilder import build_tree, decode_document

__all__ = ["parse", "decode_document"]


def parse(source: str | bytes) -> Element:
    """Deprecated alias for :func:`repro.xmlcore.parse`."""
    warnings.warn(
        "repro.xmlcore.parser.parse is deprecated; use repro.xmlcore.parse",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_tree(source)


def _expand_start_tag(token: lx.StartTagToken, scope: NamespaceScope) -> Element:
    declarations: dict[str, str] = {}
    plain: list[tuple[str, str]] = []
    for name, value in token.attributes:
        if name == "xmlns":
            declarations[""] = value
        elif name.startswith("xmlns:"):
            declarations[name[6:]] = value
        else:
            plain.append((name, value))

    try:
        scope.push(declarations)
        qname = scope.resolve_name(token.name)
        attributes: dict[str, str] = {}
        for name, value in plain:
            attr_qname = scope.resolve_name(name, is_attribute=True)
            key = str(attr_qname)
            if key in attributes:
                raise XmlWellFormednessError(
                    f"duplicate attribute '{name}' on <{token.name}>",
                    token.line,
                    token.column,
                )
            attributes[key] = value
    except XmlWellFormednessError:
        raise
    except Exception as exc:
        raise type(exc)(f"{exc} (line {token.line}, column {token.column})") from None

    return Element(qname, attributes, nsmap=declarations)
