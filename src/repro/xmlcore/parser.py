"""Namespace-aware tree parser built on the lexer.

``parse(text)`` returns the root :class:`~repro.xmlcore.tree.Element`
with all names expanded to Clark notation.  Enforces the cross-token
well-formedness rules the lexer cannot: balanced tags, a single root,
no duplicate (expanded) attributes, declared prefixes, content only
inside the root.
"""

from __future__ import annotations

from repro.errors import XmlWellFormednessError
from repro.xmlcore import lexer as lx
from repro.xmlcore.qname import NamespaceScope, QName, split_prefixed
from repro.xmlcore.tree import Element


def parse(source: str | bytes) -> Element:
    """Parse a complete XML document and return its root element."""
    if isinstance(source, bytes):
        source = decode_document(source)
    root: Element | None = None
    stack: list[Element] = []
    scope = NamespaceScope()

    for token in lx.tokenize(source):
        if isinstance(token, (lx.XmlDeclToken, lx.CommentToken, lx.PIToken)):
            continue
        if isinstance(token, lx.StartTagToken):
            element = _expand_start_tag(token, scope)
            if stack:
                stack[-1].children.append(element)
            elif root is None:
                root = element
            else:
                raise XmlWellFormednessError(
                    "document has more than one root element", token.line, token.column
                )
            if token.self_closing:
                scope.pop()
            else:
                stack.append(element)
        elif isinstance(token, lx.EndTagToken):
            if not stack:
                raise XmlWellFormednessError(
                    f"unexpected end tag </{token.name}>", token.line, token.column
                )
            expected = stack[-1]
            closing = scope.resolve_name(token.name)
            if str(closing) != expected.tag:
                raise XmlWellFormednessError(
                    f"mismatched end tag: expected </...{expected.local_name}>, got </{token.name}>",
                    token.line,
                    token.column,
                )
            stack.pop()
            scope.pop()
        elif isinstance(token, (lx.TextToken, lx.CDataToken)):
            if stack:
                if token.text:
                    stack[-1].children.append(token.text)
            elif token.text.strip():
                raise XmlWellFormednessError(
                    "character data outside the root element", token.line, token.column
                )

    if root is None:
        raise XmlWellFormednessError("document contains no element")
    if stack:
        raise XmlWellFormednessError(f"unclosed element <{stack[-1].tag}>")
    return root


def decode_document(data: bytes) -> str:
    """Decode document bytes, honouring a BOM or declared encoding.

    SOAP 1.1 over HTTP is overwhelmingly UTF-8; UTF-16 BOMs and an
    explicit ``encoding=`` pseudo-attribute are also honoured.  Codec
    failures (bogus declared encodings, malformed byte sequences) are
    reported as well-formedness errors, never as raw codec exceptions.
    """
    try:
        if data.startswith(b"\xef\xbb\xbf"):
            return data[3:].decode("utf-8")
        if data.startswith(b"\xff\xfe"):
            return data.decode("utf-16-le")[1:]
        if data.startswith(b"\xfe\xff"):
            return data.decode("utf-16-be")[1:]
        head = data[:256]
        if head.startswith(b"<?xml"):
            end = head.find(b"?>")
            if end != -1:
                decl = head[:end].decode("ascii", "replace")
                marker = 'encoding="'
                alt = "encoding='"
                for m in (marker, alt):
                    idx = decl.find(m)
                    if idx != -1:
                        rest = decl[idx + len(m) :]
                        enc = rest[: rest.find(m[-1])]
                        return data.decode(enc)
        return data.decode("utf-8")
    except (UnicodeError, LookupError) as exc:
        raise XmlWellFormednessError(f"undecodable document: {exc}") from None


def _expand_start_tag(token: lx.StartTagToken, scope: NamespaceScope) -> Element:
    declarations: dict[str, str] = {}
    plain: list[tuple[str, str]] = []
    for name, value in token.attributes:
        if name == "xmlns":
            declarations[""] = value
        elif name.startswith("xmlns:"):
            declarations[name[6:]] = value
        else:
            plain.append((name, value))

    try:
        scope.push(declarations)
        qname = scope.resolve_name(token.name)
        attributes: dict[str, str] = {}
        for name, value in plain:
            attr_qname = scope.resolve_name(name, is_attribute=True)
            key = str(attr_qname)
            if key in attributes:
                raise XmlWellFormednessError(
                    f"duplicate attribute '{name}' on <{token.name}>",
                    token.line,
                    token.column,
                )
            attributes[key] = value
    except XmlWellFormednessError:
        raise
    except Exception as exc:
        raise type(exc)(f"{exc} (line {token.line}, column {token.column})") from None

    return Element(qname, attributes, nsmap=declarations)
