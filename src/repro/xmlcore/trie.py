"""Tag-matching trie, reproducing the optimization of Chiu et al. (HPDC-11).

"Investigating the Limits of SOAP Performance for Scientific Computing"
reduces the number of string comparisons during deserialization by
matching incoming XML tags against the *expected* tag set with a trie
instead of repeated ``strcmp`` calls.  The SOAP deserializer uses
:class:`TagTrie` to map element names to handler ids; the ablation
bench compares it against a linear scan.
"""

from __future__ import annotations

from typing import Any, Iterator


class _Node:
    __slots__ = ("children", "value", "terminal")

    def __init__(self) -> None:
        self.children: dict[str, "_Node"] = {}
        self.value: Any = None
        self.terminal = False


class TagTrie:
    """Map strings (tag names) to arbitrary values via character trie."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def insert(self, key: str, value: Any) -> None:
        """Insert or replace ``key``."""
        node = self._root
        for ch in key:
            nxt = node.children.get(ch)
            if nxt is None:
                nxt = _Node()
                node.children[ch] = nxt
            node = nxt
        if not node.terminal:
            self._size += 1
        node.terminal = True
        node.value = value

    def lookup(self, key: str) -> Any:
        """Return the value for ``key`` or None when absent."""
        node = self._find(key)
        return node.value if node is not None and node.terminal else None

    def __contains__(self, key: str) -> bool:
        node = self._find(key)
        return node is not None and node.terminal

    def __len__(self) -> int:
        return self._size

    def longest_prefix(self, text: str) -> tuple[str, Any] | None:
        """Longest inserted key that prefixes ``text`` (used for
        namespace-URI bucketing)."""
        node = self._root
        best: tuple[str, Any] | None = ("", node.value) if node.terminal else None
        for i, ch in enumerate(text):
            node = node.children.get(ch)
            if node is None:
                break
            if node.terminal:
                best = (text[: i + 1], node.value)
        return best

    def keys(self) -> Iterator[str]:
        """Inserted keys in sorted order."""
        yield from self._iter(self._root, "")

    def _iter(self, node: _Node, prefix: str) -> Iterator[str]:
        if node.terminal:
            yield prefix
        for ch in sorted(node.children):
            yield from self._iter(node.children[ch], prefix + ch)

    def _find(self, key: str) -> _Node | None:
        node = self._root
        for ch in key:
            node = node.children.get(ch)
            if node is None:
                return None
        return node


class LinearTagMatcher:
    """Baseline matcher doing one string comparison per candidate.

    Exists purely so the ablation bench can quantify the trie's benefit
    the way Chiu et al. did.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[str, Any]] = []

    def insert(self, key: str, value: Any) -> None:
        """Insert or replace ``key``."""
        for i, (existing, _) in enumerate(self._entries):
            if existing == key:
                self._entries[i] = (key, value)
                return
        self._entries.append((key, value))

    def lookup(self, key: str) -> Any:
        """Value for ``key`` via linear scan, or None."""
        for existing, value in self._entries:
            if existing == key:
                return value
        return None

    def __contains__(self, key: str) -> bool:
        return any(existing == key for existing, _ in self._entries)

    def __len__(self) -> int:
        return len(self._entries)
