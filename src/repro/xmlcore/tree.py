"""In-memory XML element tree (the library's DOM-like substrate).

The model is deliberately small: an :class:`Element` has a tag (Clark
notation or plain local name), an ordered attribute list, and a list of
children where each child is either another ``Element`` or a ``str``
text node.  Mixed content therefore round-trips exactly, which matters
for differential serialization and WS-Security digests.

Attribute storage is a tuple of ``(name, value)`` pairs behind accessor
methods (:meth:`Element.get` / :meth:`Element.set` /
:meth:`Element.items`), not a dict: SOAP elements carry zero to three
attributes, so a pair tuple is cheaper to build than a dict on the
parse hot path and a linear scan beats hashing on lookup.  The old
``element.attributes`` mapping survives as a deprecated live view for
one transition release.
"""

from __future__ import annotations

import warnings
from collections.abc import MutableMapping
from typing import Iterable, Iterator, Union

from repro.errors import XmlError
from repro.xmlcore.qname import QName

Child = Union["Element", str]

AttrItems = tuple[tuple[str, str], ...]


class Element:
    """A single XML element node.

    Parameters
    ----------
    tag:
        Element name, either ``local``, ``{uri}local`` Clark notation,
        or a :class:`QName`.
    attributes:
        Attribute names (same conventions as ``tag``) with values:
        a mapping, or an iterable of ``(name, value)`` pairs.
    nsmap:
        Preferred prefix→URI declarations to emit on this element when
        serialized.  Purely cosmetic; resolution uses Clark names.
    """

    __slots__ = ("tag", "_attrs", "children", "nsmap")

    def __init__(
        self,
        tag: str | QName,
        attributes: "dict[str, str] | Iterable[tuple[str, str]] | None" = None,
        *,
        nsmap: dict[str, str] | None = None,
    ) -> None:
        self.tag = tag if type(tag) is str else str(tag)
        if attributes:
            if type(attributes) is tuple:
                self._attrs = attributes
            elif hasattr(attributes, "items"):
                self._attrs = tuple(attributes.items())
            else:
                self._attrs = tuple(attributes)
        else:
            self._attrs = ()
        self.children: list[Child] = []
        self.nsmap: dict[str, str] = dict(nsmap) if nsmap else {}

    # -- construction -------------------------------------------------

    def append(self, child: Child) -> Child:
        """Append an element or text node and return it."""
        if not isinstance(child, (Element, str)):
            raise XmlError(f"cannot append {type(child).__name__} to an Element")
        self.children.append(child)
        return child

    def extend(self, children: Iterable[Child]) -> None:
        """Append several children."""
        for child in children:
            self.append(child)

    def subelement(
        self,
        tag: str | QName,
        attributes: "dict[str, str] | Iterable[tuple[str, str]] | None" = None,
        *,
        text: str | None = None,
        nsmap: dict[str, str] | None = None,
    ) -> "Element":
        """Create, append and return a child element (optionally with text)."""
        child = Element(tag, attributes, nsmap=nsmap)
        if text is not None:
            child.append(text)
        self.children.append(child)
        return child

    # -- attributes ----------------------------------------------------

    def set(self, name: str | QName, value: str) -> None:
        """Set an attribute (name in Clark or local form)."""
        name = name if type(name) is str else str(name)
        attrs = self._attrs
        for index, (key, _) in enumerate(attrs):
            if key == name:
                self._attrs = attrs[:index] + ((name, value),) + attrs[index + 1 :]
                return
        self._attrs = attrs + ((name, value),)

    def get(self, name: str | QName, default: str | None = None) -> str | None:
        """Attribute value, or ``default`` when absent."""
        name = name if type(name) is str else str(name)
        for key, value in self._attrs:
            if key == name:
                return value
        return default

    def items(self) -> AttrItems:
        """The attributes as an ordered tuple of ``(name, value)`` pairs."""
        return self._attrs

    def pop_attribute(
        self, name: str | QName, default: str | None = None
    ) -> str | None:
        """Remove an attribute, returning its value (or ``default``)."""
        name = name if type(name) is str else str(name)
        attrs = self._attrs
        for index, (key, value) in enumerate(attrs):
            if key == name:
                self._attrs = attrs[:index] + attrs[index + 1 :]
                return value
        return default

    def replace_attributes(
        self, attributes: "dict[str, str] | Iterable[tuple[str, str]]"
    ) -> None:
        """Replace the whole attribute list in one step."""
        if hasattr(attributes, "items"):
            self._attrs = tuple(attributes.items())
        else:
            self._attrs = tuple(attributes)

    @property
    def attributes(self) -> "_AttributesView":
        """Deprecated dict-style live view of the attributes.

        Use :meth:`get` / :meth:`set` / :meth:`items` /
        :meth:`pop_attribute` instead; this view exists so pre-redesign
        callers keep working for one release.
        """
        warnings.warn(
            "Element.attributes is deprecated; use Element.get/set/items",
            DeprecationWarning,
            stacklevel=2,
        )
        return _AttributesView(self)

    @attributes.setter
    def attributes(self, value: "dict[str, str] | Iterable[tuple[str, str]]") -> None:
        warnings.warn(
            "assigning Element.attributes is deprecated; use Element.replace_attributes",
            DeprecationWarning,
            stacklevel=2,
        )
        self.replace_attributes(value)

    # -- inspection ----------------------------------------------------

    @property
    def qname(self) -> QName:
        return QName.parse(self.tag)

    @property
    def local_name(self) -> str:
        return self.qname.local

    @property
    def namespace(self) -> str:
        return self.qname.uri

    @property
    def text(self) -> str:
        """Concatenation of all *direct* text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def full_text(self) -> str:
        """Concatenation of all text in the subtree, document order."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.full_text())
        return "".join(parts)

    def element_children(self) -> list["Element"]:
        """Direct child elements (text nodes skipped)."""
        return [c for c in self.children if isinstance(c, Element)]

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over the element subtree."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find(self, tag: str | QName) -> "Element | None":
        """First direct child element whose tag matches.

        A plain local name matches regardless of namespace; Clark
        notation matches exactly.
        """
        for child in self.element_children():
            if _tag_matches(child, str(tag)):
                return child
        return None

    def findall(self, tag: str | QName) -> list["Element"]:
        """Every direct child element whose tag matches."""
        return [c for c in self.element_children() if _tag_matches(c, str(tag))]

    def findtext(self, tag: str | QName, default: str | None = None) -> str | None:
        """Text of the first matching child, or ``default``."""
        found = self.find(tag)
        return found.text if found is not None else default

    def require(self, tag: str | QName) -> "Element":
        """Like :meth:`find` but raises when the child is absent."""
        found = self.find(tag)
        if found is None:
            raise XmlError(f"element <{self.tag}> has no <{tag}> child")
        return found

    # -- comparison ----------------------------------------------------

    def structurally_equal(self, other: "Element") -> bool:
        """Deep equality on tag, attributes and (normalized) children.

        Attribute order is ignored (as dict equality did before the
        tuple storage) and adjacent text nodes are merged before
        comparison, so two trees that serialize identically compare
        equal.
        """
        if self.tag != other.tag:
            return False
        if self._attrs != other._attrs and dict(self._attrs) != dict(other._attrs):
            return False
        mine = _normalized_children(self)
        theirs = _normalized_children(other)
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if isinstance(a, str) or isinstance(b, str):
                if a != b:
                    return False
            elif not a.structurally_equal(b):
                return False
        return True

    def copy(self) -> "Element":
        """Deep copy of the subtree."""
        clone = Element(self.tag, self._attrs, nsmap=self.nsmap)
        for child in self.children:
            clone.children.append(child if isinstance(child, str) else child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={len(self._attrs)} children={len(self.children)}>"


class _AttributesView(MutableMapping):
    """Mutable dict-style view over an Element's attribute tuple.

    Backs the deprecated ``Element.attributes`` property; every read
    and write goes straight through to the element, so pre-redesign
    code observes exactly the old semantics (insertion order, in-place
    ``del``/``pop``, dict equality).
    """

    __slots__ = ("_element",)

    def __init__(self, element: Element) -> None:
        self._element = element

    def __getitem__(self, key: str) -> str:
        value = self._element.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value  # type: ignore[return-value]

    def __setitem__(self, key: str, value: str) -> None:
        self._element.set(key, value)

    def __delitem__(self, key: str) -> None:
        if self._element.pop_attribute(key, _MISSING) is _MISSING:
            raise KeyError(key)

    def __iter__(self) -> Iterator[str]:
        return iter([name for name, _ in self._element._attrs])

    def __len__(self) -> int:
        return len(self._element._attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self._element._attrs))


_MISSING = object()


def _tag_matches(element: Element, pattern: str) -> bool:
    if pattern.startswith("{"):
        return element.tag == pattern
    return element.local_name == pattern


def _normalized_children(element: Element) -> list[Child]:
    merged: list[Child] = []
    for child in element.children:
        if isinstance(child, str):
            if not child:
                continue
            if merged and isinstance(merged[-1], str):
                merged[-1] = merged[-1] + child
            else:
                merged.append(child)
        else:
            merged.append(child)
    return merged
