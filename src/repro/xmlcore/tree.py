"""In-memory XML element tree (the library's DOM-like substrate).

The model is deliberately small: an :class:`Element` has a tag (Clark
notation or plain local name), an ordered attribute map, and a list of
children where each child is either another ``Element`` or a ``str``
text node.  Mixed content therefore round-trips exactly, which matters
for differential serialization and WS-Security digests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.errors import XmlError
from repro.xmlcore.qname import QName

Child = Union["Element", str]


class Element:
    """A single XML element node.

    Parameters
    ----------
    tag:
        Element name, either ``local``, ``{uri}local`` Clark notation,
        or a :class:`QName`.
    attributes:
        Mapping of attribute name (same conventions as ``tag``) to value.
    nsmap:
        Preferred prefix→URI declarations to emit on this element when
        serialized.  Purely cosmetic; resolution uses Clark names.
    """

    __slots__ = ("tag", "attributes", "children", "nsmap")

    def __init__(
        self,
        tag: str | QName,
        attributes: dict[str, str] | None = None,
        *,
        nsmap: dict[str, str] | None = None,
    ) -> None:
        self.tag = str(tag)
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Child] = []
        self.nsmap: dict[str, str] = dict(nsmap or {})

    # -- construction -------------------------------------------------

    def append(self, child: Child) -> Child:
        """Append an element or text node and return it."""
        if not isinstance(child, (Element, str)):
            raise XmlError(f"cannot append {type(child).__name__} to an Element")
        self.children.append(child)
        return child

    def extend(self, children: Iterable[Child]) -> None:
        """Append several children."""
        for child in children:
            self.append(child)

    def subelement(
        self,
        tag: str | QName,
        attributes: dict[str, str] | None = None,
        *,
        text: str | None = None,
        nsmap: dict[str, str] | None = None,
    ) -> "Element":
        """Create, append and return a child element (optionally with text)."""
        child = Element(tag, attributes, nsmap=nsmap)
        if text is not None:
            child.append(text)
        self.children.append(child)
        return child

    def set(self, name: str | QName, value: str) -> None:
        """Set an attribute (name in Clark or local form)."""
        self.attributes[str(name)] = value

    # -- inspection ----------------------------------------------------

    @property
    def qname(self) -> QName:
        return QName.parse(self.tag)

    @property
    def local_name(self) -> str:
        return self.qname.local

    @property
    def namespace(self) -> str:
        return self.qname.uri

    def get(self, name: str | QName, default: str | None = None) -> str | None:
        """Attribute value, or ``default`` when absent."""
        return self.attributes.get(str(name), default)

    @property
    def text(self) -> str:
        """Concatenation of all *direct* text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def full_text(self) -> str:
        """Concatenation of all text in the subtree, document order."""
        parts: list[str] = []
        for child in self.children:
            if isinstance(child, str):
                parts.append(child)
            else:
                parts.append(child.full_text())
        return "".join(parts)

    def element_children(self) -> list["Element"]:
        """Direct child elements (text nodes skipped)."""
        return [c for c in self.children if isinstance(c, Element)]

    def iter(self) -> Iterator["Element"]:
        """Depth-first pre-order iteration over the element subtree."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def find(self, tag: str | QName) -> "Element | None":
        """First direct child element whose tag matches.

        A plain local name matches regardless of namespace; Clark
        notation matches exactly.
        """
        for child in self.element_children():
            if _tag_matches(child, str(tag)):
                return child
        return None

    def findall(self, tag: str | QName) -> list["Element"]:
        """Every direct child element whose tag matches."""
        return [c for c in self.element_children() if _tag_matches(c, str(tag))]

    def findtext(self, tag: str | QName, default: str | None = None) -> str | None:
        """Text of the first matching child, or ``default``."""
        found = self.find(tag)
        return found.text if found is not None else default

    def require(self, tag: str | QName) -> "Element":
        """Like :meth:`find` but raises when the child is absent."""
        found = self.find(tag)
        if found is None:
            raise XmlError(f"element <{self.tag}> has no <{tag}> child")
        return found

    # -- comparison ----------------------------------------------------

    def structurally_equal(self, other: "Element") -> bool:
        """Deep equality on tag, attributes and (normalized) children.

        Adjacent text nodes are merged before comparison so two trees
        that serialize identically compare equal.
        """
        if self.tag != other.tag or self.attributes != other.attributes:
            return False
        mine = _normalized_children(self)
        theirs = _normalized_children(other)
        if len(mine) != len(theirs):
            return False
        for a, b in zip(mine, theirs):
            if isinstance(a, str) or isinstance(b, str):
                if a != b:
                    return False
            elif not a.structurally_equal(b):
                return False
        return True

    def copy(self) -> "Element":
        """Deep copy of the subtree."""
        clone = Element(self.tag, self.attributes, nsmap=self.nsmap)
        for child in self.children:
            clone.children.append(child if isinstance(child, str) else child.copy())
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={len(self.attributes)} children={len(self.children)}>"


def _tag_matches(element: Element, pattern: str) -> bool:
    if pattern.startswith("{"):
        return element.tag == pattern
    return element.local_name == pattern


def _normalized_children(element: Element) -> list[Child]:
    merged: list[Child] = []
    for child in element.children:
        if isinstance(child, str):
            if not child:
                continue
            if merged and isinstance(merged[-1], str):
                merged[-1] = merged[-1] + child
            else:
                merged.append(child)
        else:
            merged.append(child)
    return merged
