"""SAX-style push parsing, the event API the paper's dispatcher uses.

The CLUSTER'06 paper's server dispatcher "analyzes the request data,
which is parsed by parsers, such as SAX and DOM".  This module is the
SAX side: a :class:`ContentHandler` receives start/characters/end
events with names already expanded to :class:`QName`.

Two drivers are provided:

* :func:`sax_parse` — run a handler over a complete document.
* :class:`PullParser` — iterator of events, convenient for scanners
  that want to stop early (e.g. peeking whether a body is packed
  without building the whole tree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import XmlWellFormednessError
from repro.xmlcore import lexer as lx
from repro.xmlcore.treebuilder import decode_document
from repro.xmlcore.qname import NamespaceScope, QName


class ContentHandler:
    """Subclass and override the callbacks you need."""

    def start_document(self) -> None:
        """Called once before any other event."""

    def end_document(self) -> None:
        """Called once after the last event."""

    def start_element(self, name: QName, attributes: dict[str, str]) -> None:
        """An element opened, with expanded name and attributes."""

    def end_element(self, name: QName) -> None:
        """An element closed."""

    def characters(self, text: str) -> None:
        """Character data inside the current element."""

    def processing_instruction(self, target: str, data: str) -> None:
        """A processing instruction was seen."""


@dataclass(slots=True)
class StartEvent:
    name: QName
    attributes: dict[str, str]
    depth: int


@dataclass(slots=True)
class EndEvent:
    name: QName
    depth: int


@dataclass(slots=True)
class TextEvent:
    text: str
    depth: int


@dataclass(slots=True)
class PIEvent:
    target: str
    data: str
    depth: int


Event = StartEvent | EndEvent | TextEvent | PIEvent


def iterate_events(source: str | bytes) -> Iterator[Event]:
    """Yield namespace-expanded events for a complete document."""
    if isinstance(source, bytes):
        source = decode_document(source)
    scope = NamespaceScope()
    stack: list[QName] = []
    seen_root = False

    for token in lx.tokenize(source):
        if isinstance(token, lx.StartTagToken):
            if not stack and seen_root:
                raise XmlWellFormednessError(
                    "document has more than one root element", token.line, token.column
                )
            seen_root = True
            name, attributes = _expand(token, scope)
            yield StartEvent(name, attributes, len(stack))
            if token.self_closing:
                yield EndEvent(name, len(stack))
                scope.pop()
            else:
                stack.append(name)
        elif isinstance(token, lx.EndTagToken):
            if not stack:
                raise XmlWellFormednessError(
                    f"unexpected end tag </{token.name}>", token.line, token.column
                )
            name = scope.resolve_name(token.name)
            if name != stack[-1]:
                raise XmlWellFormednessError(
                    f"mismatched end tag </{token.name}>", token.line, token.column
                )
            stack.pop()
            yield EndEvent(name, len(stack))
            scope.pop()
        elif isinstance(token, (lx.TextToken, lx.CDataToken)):
            if stack:
                if token.text:
                    yield TextEvent(token.text, len(stack))
            elif token.text.strip():
                raise XmlWellFormednessError(
                    "character data outside root", token.line, token.column
                )
        elif isinstance(token, lx.PIToken):
            yield PIEvent(token.target, token.data, len(stack))

    if stack:
        raise XmlWellFormednessError(f"unclosed element <{stack[-1]}>")
    if not seen_root:
        raise XmlWellFormednessError("document contains no element")


def sax_parse(source: str | bytes, handler: ContentHandler) -> None:
    """Drive ``handler`` over the whole document."""
    handler.start_document()
    for event in iterate_events(source):
        if isinstance(event, StartEvent):
            handler.start_element(event.name, event.attributes)
        elif isinstance(event, EndEvent):
            handler.end_element(event.name)
        elif isinstance(event, PIEvent):
            handler.processing_instruction(event.target, event.data)
        else:
            handler.characters(event.text)
    handler.end_document()


class PullParser:
    """Lazily pull events; supports skipping the current subtree."""

    def __init__(self, source: str | bytes) -> None:
        self._events = iterate_events(source)
        self._pushed: list[Event] = []

    def __iter__(self) -> "PullParser":
        return self

    def __next__(self) -> Event:
        if self._pushed:
            return self._pushed.pop()
        return next(self._events)

    def push_back(self, event: Event) -> None:
        """Return an event to the front of the stream."""
        self._pushed.append(event)

    def skip_subtree(self, start: StartEvent) -> None:
        """Consume events until the element opened by ``start`` closes."""
        depth = 1
        for event in self:
            if isinstance(event, StartEvent):
                depth += 1
            elif isinstance(event, EndEvent):
                depth -= 1
                if depth == 0:
                    return
        raise XmlWellFormednessError(f"unclosed element <{start.name}>")


def _expand(token: lx.StartTagToken, scope: NamespaceScope) -> tuple[QName, dict[str, str]]:
    declarations: dict[str, str] = {}
    plain: list[tuple[str, str]] = []
    for name, value in token.attributes:
        if name == "xmlns":
            declarations[""] = value
        elif name.startswith("xmlns:"):
            declarations[name[6:]] = value
        else:
            plain.append((name, value))
    scope.push(declarations)
    qname = scope.resolve_name(token.name)
    attributes: dict[str, str] = {}
    for name, value in plain:
        key = str(scope.resolve_name(name, is_attribute=True))
        if key in attributes:
            raise XmlWellFormednessError(
                f"duplicate attribute '{name}'", token.line, token.column
            )
        attributes[key] = value
    return qname, attributes
