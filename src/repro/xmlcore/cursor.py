"""Cursor-style pull reading with selective materialization.

The tree parser expands every name and builds every node it sees.  For
SOAP that is wasteful: the server only needs the Body's entries (and
the paper's pack interface only needs the ``Parallel_Method`` children)
— headers it does not understand, comments, and the envelope scaffolding
can be skipped at the *token* level, without namespace expansion or
Element construction.

:class:`XmlCursor` walks the token stream one element at a time:

* :meth:`root` positions on the document root's start tag;
* :meth:`enter` expands one start tag (opening its namespace scope)
  so its children become reachable;
* :meth:`next_child` steps between an entered element's child start
  tags, consuming intervening text;
* :meth:`skip` discards a subtree by counting tags — its internal
  namespace declarations never touch the scope;
* :meth:`read_element` materializes one subtree into an
  :class:`~repro.xmlcore.tree.Element`, equivalent to what
  :func:`repro.xmlcore.parser.parse` would have produced for it.

``soap.envelope.iter_body_entries`` builds envelope scanning on top.
"""

from __future__ import annotations

from repro.errors import XmlWellFormednessError
from repro.xmlcore import lexer as lx
from repro.xmlcore.parser import _expand_start_tag
from repro.xmlcore.treebuilder import decode_document
from repro.xmlcore.qname import NamespaceScope
from repro.xmlcore.tree import Element


class XmlCursor:
    """Pull-reader over one document; see the module docstring."""

    __slots__ = ("_tokens", "_scope", "_entered")

    def __init__(self, source: str | bytes) -> None:
        if isinstance(source, bytes):
            source = decode_document(source)
        self._tokens = lx.Lexer(source).tokens()
        self._scope = NamespaceScope()
        # raw names + self-closing flags of elements we entered
        self._entered: list[tuple[str, bool]] = []

    # -- navigation ------------------------------------------------------

    def root(self) -> lx.StartTagToken:
        """Consume the prolog and return the root element's start tag."""
        for token in self._tokens:
            if isinstance(token, lx.StartTagToken):
                return token
            if isinstance(token, (lx.XmlDeclToken, lx.CommentToken, lx.PIToken)):
                continue
            if isinstance(token, (lx.TextToken, lx.CDataToken)):
                if token.text.strip():
                    raise XmlWellFormednessError(
                        "character data outside the root element",
                        token.line,
                        token.column,
                    )
                continue
            raise XmlWellFormednessError(
                f"unexpected end tag </{token.name}>", token.line, token.column
            )
        raise XmlWellFormednessError("document contains no element")

    def enter(self, token: lx.StartTagToken) -> Element:
        """Expand ``token`` into a childless Element and open its scope.

        After entering, :meth:`next_child` iterates the element's child
        start tags; once it returns None the scope has been popped.
        """
        element = _expand_start_tag(token, self._scope)
        self._entered.append((token.name, token.self_closing))
        return element

    def next_child(self) -> lx.StartTagToken | None:
        """The next child start tag of the innermost entered element, or
        None when that element closes (its scope is popped)."""
        if not self._entered:
            raise XmlWellFormednessError("next_child() with no entered element")
        name, self_closing = self._entered[-1]
        if self_closing:
            self._leave()
            return None
        for token in self._tokens:
            if isinstance(token, lx.StartTagToken):
                return token
            if isinstance(token, lx.EndTagToken):
                if token.name != name:
                    raise XmlWellFormednessError(
                        f"mismatched end tag: expected </{name}>, got </{token.name}>",
                        token.line,
                        token.column,
                    )
                self._leave()
                return None
            # Text, CDATA, comments and PIs between children are legal;
            # the cursor's callers care about element structure only.
        raise XmlWellFormednessError(f"unclosed element <{name}>")

    def skip(self, token: lx.StartTagToken) -> None:
        """Discard the subtree opened by ``token`` without expanding it."""
        if token.self_closing:
            return
        depth = 1
        for tok in self._tokens:
            if isinstance(tok, lx.StartTagToken):
                if not tok.self_closing:
                    depth += 1
            elif isinstance(tok, lx.EndTagToken):
                depth -= 1
                if depth == 0:
                    return
        raise XmlWellFormednessError(
            f"unclosed element <{token.name}>", token.line, token.column
        )

    def read_element(self, token: lx.StartTagToken) -> Element:
        """Materialize the subtree opened by ``token`` as an Element."""
        scope = self._scope
        root = _expand_start_tag(token, scope)
        if token.self_closing:
            scope.pop()
            return root
        stack: list[Element] = [root]
        names: list[str] = [token.name]
        for tok in self._tokens:
            if isinstance(tok, lx.StartTagToken):
                element = _expand_start_tag(tok, scope)
                stack[-1].children.append(element)
                if tok.self_closing:
                    scope.pop()
                else:
                    stack.append(element)
                    names.append(tok.name)
            elif isinstance(tok, lx.EndTagToken):
                if tok.name != names[-1]:
                    raise XmlWellFormednessError(
                        f"mismatched end tag: expected </{names[-1]}>, got </{tok.name}>",
                        tok.line,
                        tok.column,
                    )
                names.pop()
                stack.pop()
                scope.pop()
                if not stack:
                    return root
            elif isinstance(tok, (lx.TextToken, lx.CDataToken)):
                if tok.text:
                    stack[-1].children.append(tok.text)
        raise XmlWellFormednessError(f"unclosed element <{names[-1]}>")

    def finish(self) -> None:
        """Drain the stream, checking nothing but epilog remains."""
        while self._entered:
            token = self.next_child()
            if token is not None:
                self.skip(token)
        for token in self._tokens:
            if isinstance(token, lx.StartTagToken):
                raise XmlWellFormednessError(
                    "document has more than one root element",
                    token.line,
                    token.column,
                )
            if isinstance(token, (lx.TextToken, lx.CDataToken)) and token.text.strip():
                raise XmlWellFormednessError(
                    "character data outside the root element",
                    token.line,
                    token.column,
                )

    # -- internals -------------------------------------------------------

    def _leave(self) -> None:
        self._entered.pop()
        self._scope.pop()
